#include "dtr/scheduler.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "dtr/durability.hpp"
#include "dtr/mofka_plugins.hpp"
#include "wire/codec.hpp"

namespace recup::dtr {

Scheduler::Scheduler(sim::Engine& engine, platform::Network& network,
                     SchedulerConfig config, RngStream rng,
                     LogCollector& logs)
    : engine_(engine),
      network_(network),
      config_(config),
      rng_(rng),
      logs_(logs) {}

void Scheduler::add_worker(Worker* worker) {
  workers_.push_back(worker);
  worker_alive_.push_back(true);
  in_flight_.push_back(0);
  last_heartbeat_.push_back(engine_.now());
  worker->set_completion_callback(
      [this](const TaskKey& key, const TaskRecord& record, bool failed) {
        on_task_finished(key, record, failed);
      });
  worker->set_heartbeat_callback([this](WorkerId id) { heartbeat(id); });
  worker->set_missing_dep_callback(
      [this](const TaskKey& key, WorkerId requester, WorkerId failed_holder) {
        on_missing_dep(key, requester, failed_holder);
      });
  worker->set_replica_callback([this](const TaskKey& key, WorkerId id) {
    const auto it = tasks_.find(key);
    if (it != tasks_.end()) it->second.who_has.insert(id);
  });
  logs_.log(LogLevel::kInfo, "scheduler",
            "Register worker " + worker->address());
  for (auto* plugin : plugins_) {
    plugin->on_worker_added(worker->id(), worker->address(), engine_.now());
  }
}

void Scheduler::transition(TaskInfo& info, SchedulerTaskState to,
                           const std::string& stimulus) {
  TransitionRecord record;
  record.key = info.spec.key;
  record.graph = info.graph;
  record.from_state = to_string(info.state);
  record.to_state = to_string(to);
  record.stimulus = stimulus;
  record.location = "scheduler";
  record.time = engine_.now();
  info.state = to;
  transitions_.push_back(record);
  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "transition";
    o["r"] = to_json(record);
    journal_append(json::Value(std::move(o)));
  }
  for (auto* plugin : plugins_) plugin->on_transition(record);
}

void Scheduler::submit_graph(const TaskGraph& graph, GraphDoneFn on_done) {
  if (graphs_.count(graph.name()) != 0) {
    throw std::invalid_argument("graph name already submitted: " +
                                graph.name());
  }
  GraphInfo& graph_info = graphs_[graph.name()];
  graph_info.name = graph.name();
  graph_info.remaining = graph.size();
  graph_info.on_done = std::move(on_done);

  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "graph";
    o["name"] = graph.name();
    o["size"] = graph.size();
    journal_append(json::Value(std::move(o)));
  }

  logs_.log(LogLevel::kInfo, "scheduler",
            "Receive graph " + graph.name() + " with " +
                std::to_string(graph.size()) + " tasks");
  for (auto* plugin : plugins_) {
    plugin->on_graph_received(graph.name(), graph.size(), engine_.now());
  }

  // Materialize TaskInfo for every task, wiring dependency counts against
  // both in-graph tasks and results of earlier graphs already in memory.
  std::vector<TaskKey> runnable;
  for (const auto& [key, spec] : graph.tasks()) {
    auto [it, inserted] = tasks_.emplace(key, TaskInfo{});
    if (!inserted) {
      throw std::invalid_argument("task key resubmitted: " + key.to_string());
    }
    TaskInfo& info = it->second;
    info.spec = spec;
    info.graph = graph.name();
    spec_order_.push_back(key);
    if (journal_ && !recovering_) {
      json::Object o;
      o["t"] = "spec";
      o["graph"] = graph.name();
      o["spec"] = to_json(spec);
      journal_append(json::Value(std::move(o)));
    }
  }
  for (const auto& [key, spec] : graph.tasks()) {
    TaskInfo& info = tasks_.at(key);
    for (const auto& dep : spec.dependencies) {
      const auto dep_it = tasks_.find(dep);
      if (dep_it == tasks_.end()) {
        throw std::invalid_argument("dependency never submitted: " +
                                    dep.to_string());
      }
      TaskInfo& dep_info = dep_it->second;
      if (dep_info.state == SchedulerTaskState::kForgotten) {
        throw std::invalid_argument(
            "dependency was already released (mark it non-releasable): " +
            dep.to_string());
      }
      dep_info.dependents.push_back(key);
      ++dep_info.remaining_dependents;
      if (dep_info.state == SchedulerTaskState::kMemory) {
        if (!dep_info.who_has.empty()) continue;
        // The result survived in name only: every replica died with its
        // worker before this graph arrived (and with no dependents yet, the
        // failure handler had no reason to recompute it then). Rebuild it
        // now that someone needs it.
        recompute_lost(dep_info);
      }
      ++info.waiting_on;
    }
    transition(info, SchedulerTaskState::kWaiting, "update-graph");
    if (info.waiting_on == 0) runnable.push_back(key);
  }
  // Dispatch runnable tasks in priority order (dask.order analog): lower
  // priority value first, key order as tie-break.
  std::stable_sort(runnable.begin(), runnable.end(),
                   [this](const TaskKey& a, const TaskKey& b) {
                     return tasks_.at(a).spec.priority <
                            tasks_.at(b).spec.priority;
                   });
  for (const auto& key : runnable) {
    dispatch(tasks_.at(key), "update-graph");
  }
}

Duration Scheduler::transfer_cost_estimate(const TaskInfo& info,
                                           const Worker& worker) const {
  Duration cost = 0.0;
  for (const auto& dep : info.spec.dependencies) {
    const auto it = tasks_.find(dep);
    if (it == tasks_.end()) continue;
    const TaskInfo& dep_info = it->second;
    if (dep_info.who_has.count(worker.id()) != 0) continue;
    if (dep_info.who_has.empty()) continue;
    // Nearest replica.
    Duration best = std::numeric_limits<double>::infinity();
    for (const WorkerId holder : dep_info.who_has) {
      const Worker* held = workers_.at(holder);
      best = std::min(best, network_.estimate(held->node(), worker.node(),
                                              dep_info.spec.work.output_bytes));
    }
    cost += best;
  }
  return cost;
}

Duration Scheduler::compute_estimate(const TaskInfo& info) const {
  const auto it = prefix_durations_.find(info.spec.key.prefix());
  if (it == prefix_durations_.end() || it->second.second == 0) {
    return config_.default_task_duration;
  }
  return it->second.first / static_cast<double>(it->second.second);
}

Worker* Scheduler::decide_worker(const TaskInfo& info) {
  // Score = expected dep-transfer cost + occupancy penalty. The occupancy
  // penalty uses the observed mean duration of each worker's queue depth,
  // matching Dask's occupancy-based tie-breaking.
  Worker* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  const std::size_t offset = rr_counter_++;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::size_t index = (i + offset) % workers_.size();
    if (!worker_alive_[index]) continue;
    Worker* worker = workers_[index];
    const double occupancy = static_cast<double>(in_flight_[index]) /
                             static_cast<double>(worker->nthreads());
    const double score =
        transfer_cost_estimate(info, *worker) * config_.locality_bias +
        occupancy * compute_estimate(info);
    if (score < best_score) {
      best_score = score;
      best = worker;
    }
  }
  return best;
}

void Scheduler::dispatch(TaskInfo& info, const std::string& stimulus) {
  Worker* worker = workers_.empty() ? nullptr : decide_worker(info);
  if (worker == nullptr) {
    transition(info, SchedulerTaskState::kNoWorker, stimulus);
    return;
  }
  const double saturation_limit =
      static_cast<double>(worker->nthreads()) * config_.saturation_factor;
  if (static_cast<double>(in_flight_[worker->id()]) >= saturation_limit) {
    transition(info, SchedulerTaskState::kQueued, stimulus);
    queued_.push_back(info.spec.key);
    return;
  }
  send_to_worker(info, worker, stimulus, /*stolen=*/false);
}

void Scheduler::send_to_worker(TaskInfo& info, Worker* worker,
                               const std::string& stimulus, bool stolen) {
  transition(info, SchedulerTaskState::kProcessing, stimulus);
  // A steal re-sends a task already counted in flight on the victim; it is
  // removed there and re-assigned here.
  if (stolen && info.assigned != nullptr) {
    --in_flight_[info.assigned->id()];
  }
  ++in_flight_[worker->id()];
  info.assigned = worker;
  info.stolen = stolen;

  // Locations of dependencies the worker must gather from peers.
  std::vector<DepLocation> deps;
  for (const auto& dep : info.spec.dependencies) {
    const auto it = tasks_.find(dep);
    if (it == tasks_.end()) continue;
    const TaskInfo& dep_info = it->second;
    if (dep_info.who_has.count(worker->id()) != 0) continue;
    if (dep_info.who_has.empty()) {
      throw std::logic_error("dispatching task with unmet dependency " +
                             dep.to_string() + " [stimulus=" + stimulus +
                             " stolen=" + (stolen ? "1" : "0") + "]");
    }
    // Nearest replica serves the transfer.
    WorkerId holder = *dep_info.who_has.begin();
    Duration best = std::numeric_limits<double>::infinity();
    for (const WorkerId candidate : dep_info.who_has) {
      const Duration est =
          network_.estimate(workers_.at(candidate)->node(), worker->node(),
                            dep_info.spec.work.output_bytes);
      if (est < best) {
        best = est;
        holder = candidate;
      }
    }
    DepLocation loc{dep, holder, workers_.at(holder)->node(),
                    dep_info.spec.work.output_bytes, /*oob=*/false, {}};
    // Results published to the datastore travel by reference: the worker
    // gets a proxy and pulls the payload from the holder's shard directly.
    if (datastore_ != nullptr) {
      if (const auto proxy = datastore_->proxy_for(dep.to_string())) {
        loc.oob = true;
        loc.proxy = *proxy;
      }
    }
    deps.push_back(loc);
  }

  const TaskSpec spec = info.spec;
  const std::string graph = info.graph;
  engine_.schedule_after(config_.control_latency,
                         [worker, spec, graph, deps, stolen] {
                           worker->assign_task(spec, graph, deps, stolen);
                         });
}

void Scheduler::on_task_finished(const TaskKey& key, const TaskRecord& record,
                                 bool failed) {
  auto it = tasks_.find(key);
  if (it == tasks_.end()) return;
  TaskInfo& info = it->second;
  // Stale completion from a worker that lost the assignment (failure
  // recovery re-dispatched the task elsewhere).
  if (info.assigned != nullptr && info.assigned->id() != record.worker) {
    return;
  }
  if (info.state != SchedulerTaskState::kProcessing) return;
  if (info.assigned != nullptr) {
    --in_flight_[info.assigned->id()];
    info.assigned = nullptr;
  }

  if (failed) {
    transition(info, SchedulerTaskState::kErred, "task-erred");
    if (info.retries < config_.max_retries) {
      ++info.retries;
      transition(info, SchedulerTaskState::kWaiting, "retry");
      dispatch(info, "retry");
    } else {
      dead_letter(info, "erred after " + std::to_string(info.retries) +
                            " retries");
    }
    return;
  }

  TaskRecord completed = record;
  completed.retries = info.retries;
  info.who_has.insert(record.worker);
  task_records_.push_back(completed);
  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "task";
    o["r"] = to_json(completed);
    journal_append(json::Value(std::move(o)));
  }
  transition(info, SchedulerTaskState::kMemory, "task-finished");

  // Update per-prefix duration statistics.
  auto& [sum, count] = prefix_durations_[key.prefix()];
  sum += record.end_time - record.start_time;
  ++count;

  // Workers parked on a failed proxy fetch for this key (every replica had
  // died) can now pull the recomputed result from the new holder.
  const auto waiters = pending_fetch_waiters_.find(key);
  if (waiters != pending_fetch_waiters_.end()) {
    for (const WorkerId waiter : waiters->second) {
      if (waiter >= workers_.size() || !worker_alive_[waiter]) continue;
      schedule_refetch(key, record.worker, workers_.at(waiter));
    }
    pending_fetch_waiters_.erase(waiters);
  }

  // Unblock dependents.
  for (const auto& dependent_key : info.dependents) {
    TaskInfo& dependent = tasks_.at(dependent_key);
    if (dependent.waiting_on == 0) continue;  // already released (retry path)
    if (--dependent.waiting_on == 0) {
      dispatch(dependent, "task-finished");
    }
  }

  // Reference-counted release of this task's own dependencies.
  for (const auto& dep_key : info.spec.dependencies) {
    const auto dep_it = tasks_.find(dep_key);
    if (dep_it == tasks_.end()) continue;
    TaskInfo& dep_info = dep_it->second;
    if (dep_info.remaining_dependents > 0) {
      --dep_info.remaining_dependents;
    }
    maybe_release(dep_info);
  }

  // Workers freed capacity: reconsider the scheduler queue.
  drain_queue();

  auto& graph = graphs_.at(info.graph);
  if (--graph.remaining == 0) graph_completed(graph);
}

void Scheduler::graph_completed(GraphInfo& graph) {
  logs_.log(LogLevel::kInfo, "scheduler", "Graph " + graph.name + " done");
  graph.done_fired = true;
  if (graph.on_done) {
    // Fire once: recovery recomputation may re-count completions later.
    GraphDoneFn on_done = std::move(graph.on_done);
    graph.on_done = nullptr;
    on_done(graph.name);
  }
  // A graph boundary is the natural quiescent point: snapshot the control
  // state so a restart replays at most one graph's worth of journal.
  if (journal_ && !recovering_) checkpoint();
  // Process-crash fault site. The crash is deferred one event so the
  // current call stack (possibly deep inside on_task_finished) unwinds over
  // valid state; at a graph boundary no other event precedes it.
  if (injector_ != nullptr && journal_ != nullptr && !recovering_) {
    const auto fault = injector_->decide(chaos::sites::kSchedulerProcess);
    if (fault.action == chaos::FaultAction::kProcessCrashRestart) {
      engine_.schedule_after(0.0, [this] {
        if (!stopped_) crash_and_recover();
      });
    }
  }
}

void Scheduler::maybe_release(TaskInfo& info) {
  if (!info.spec.work.releasable) return;
  if (info.state != SchedulerTaskState::kMemory) return;
  if (info.dependents.empty() || info.remaining_dependents > 0) return;
  // memory -> released -> forgotten, then drop every replica.
  transition(info, SchedulerTaskState::kReleased, "release-key");
  transition(info, SchedulerTaskState::kForgotten, "forget-key");
  const TaskKey key = info.spec.key;
  for (const WorkerId holder : info.who_has) {
    Worker* worker = workers_.at(holder);
    engine_.schedule_after(config_.control_latency,
                           [worker, key] { worker->drop_data(key); });
  }
  info.who_has.clear();
  // Unpin and drop the out-of-band copies alongside the worker replicas.
  if (datastore_ != nullptr) datastore_->release(key.to_string());
}

bool Scheduler::requeue_if_deps_lost(TaskInfo& info) {
  bool lost = false;
  for (const auto& dep : info.spec.dependencies) {
    const auto dep_it = tasks_.find(dep);
    if (dep_it == tasks_.end()) continue;
    const TaskInfo& dep_info = dep_it->second;
    if (dep_info.state == SchedulerTaskState::kMemory &&
        !dep_info.who_has.empty()) {
      continue;
    }
    lost = true;
    break;
  }
  if (!lost) return false;
  // A worker failure wiped the only replica of a dependency while this task
  // sat in the queue; dispatching it now would reference missing data. Send
  // it back to waiting and recover the lost inputs, mirroring
  // requeue_after_failure (but without charging a resubmission: the task
  // never reached a worker).
  transition(info, SchedulerTaskState::kWaiting, "lost-dependency");
  info.waiting_on = 0;
  for (const auto& dep : info.spec.dependencies) {
    const auto dep_it = tasks_.find(dep);
    if (dep_it == tasks_.end()) continue;
    TaskInfo& dep_info = dep_it->second;
    if (dep_info.state == SchedulerTaskState::kMemory) {
      if (!dep_info.who_has.empty()) continue;
      recompute_lost(dep_info);
    }
    if (dep_info.state == SchedulerTaskState::kMemory &&
        !dep_info.who_has.empty()) {
      continue;
    }
    ++info.waiting_on;
  }
  if (info.waiting_on == 0) {
    dispatch(info, "lost-dependency");
  }
  return true;
}

void Scheduler::drain_queue() {
  std::size_t remaining = queued_.size();
  while (remaining-- > 0 && !queued_.empty()) {
    const TaskKey key = queued_.front();
    queued_.pop_front();
    TaskInfo& info = tasks_.at(key);
    if (info.state != SchedulerTaskState::kQueued) continue;
    if (requeue_if_deps_lost(info)) continue;
    Worker* worker = decide_worker(info);
    if (worker == nullptr) {
      queued_.push_back(key);
      continue;
    }
    const double saturation_limit =
        static_cast<double>(worker->nthreads()) * config_.saturation_factor;
    if (static_cast<double>(in_flight_[worker->id()]) < saturation_limit) {
      send_to_worker(info, worker, "queue-pop", /*stolen=*/false);
    } else {
      queued_.push_back(key);
    }
  }
}

void Scheduler::schedule_refetch(const TaskKey& key, WorkerId holder,
                                 Worker* requester) {
  const auto it = tasks_.find(key);
  if (it == tasks_.end()) return;
  DepLocation loc{key, holder, workers_.at(holder)->node(),
                  it->second.spec.work.output_bytes, /*oob=*/false, {}};
  if (datastore_ != nullptr) {
    if (const auto proxy = datastore_->proxy_for(key.to_string())) {
      loc.oob = true;
      loc.proxy = *proxy;
    }
  }
  engine_.schedule_after(config_.control_latency,
                         [requester, loc] { requester->refetch_dep(loc); });
}

void Scheduler::on_missing_dep(const TaskKey& key, WorkerId requester,
                               WorkerId failed_holder) {
  const auto it = tasks_.find(key);
  if (it == tasks_.end()) return;
  TaskInfo& info = it->second;
  // The failed holder's copy is unusable (evicted, lost, or its worker
  // died): stop routing fetches at it.
  info.who_has.erase(failed_holder);
  if (datastore_ != nullptr) {
    datastore_->drop_replica(key.to_string(), failed_holder);
  }
  logs_.log(LogLevel::kError, "scheduler",
            "missing dep " + key.to_string() + ": " +
                workers_.at(requester)->address() + " could not fetch from " +
                workers_.at(failed_holder)->address());
  if (requester >= workers_.size() || !worker_alive_[requester]) return;
  Worker* req = workers_.at(requester);

  // Redirect to the nearest surviving replica, if any.
  WorkerId fallback = 0;
  Duration best = std::numeric_limits<double>::infinity();
  bool found = false;
  for (const WorkerId candidate : info.who_has) {
    if (!worker_alive_[candidate]) continue;
    const Duration est =
        network_.estimate(workers_.at(candidate)->node(), req->node(),
                          info.spec.work.output_bytes);
    if (est < best) {
      best = est;
      fallback = candidate;
      found = true;
    }
  }
  if (found) {
    schedule_refetch(key, fallback, req);
    return;
  }
  // No replica survives: park the requester until the result is
  // recomputed, and push the key through the normal lost-key path.
  pending_fetch_waiters_[key].insert(requester);
  if (info.state == SchedulerTaskState::kMemory) {
    info.who_has.clear();
    recompute_lost(info);
  }
}

void Scheduler::start_stealing_loop() {
  if (!config_.work_stealing || stopped_) return;
  engine_.schedule_after(config_.work_stealing_interval, [this] {
    if (stopped_) return;
    stealing_round();
    start_stealing_loop();
  });
}

void Scheduler::stealing_round() {
  // Idle thieves pull ready tasks from saturated victims when the task's
  // estimated compute dominates the data movement it would cause.
  for (Worker* thief : workers_) {
    if (!worker_alive_[thief->id()]) continue;
    if (in_flight_[thief->id()] >= thief->nthreads()) continue;
    Worker* victim = nullptr;
    std::size_t victim_backlog = 0;
    for (Worker* candidate : workers_) {
      if (candidate == thief) continue;
      if (!worker_alive_[candidate->id()]) continue;
      const std::size_t backlog = candidate->ready_count();
      if (backlog > candidate->nthreads() && backlog > victim_backlog) {
        victim = candidate;
        victim_backlog = backlog;
      }
    }
    if (victim == nullptr) continue;
    const auto stealable = victim->stealable_tasks();
    if (stealable.empty()) continue;
    // Steal from the back: newest, least likely to start next.
    const TaskKey key = stealable.back();
    TaskInfo& info = tasks_.at(key);
    const Duration transfer = transfer_cost_estimate(info, *thief);
    const Duration compute = compute_estimate(info);
    if (compute < config_.steal_cost_ratio * transfer) continue;
    if (!victim->try_release_ready_task(key)) continue;

    StealRecord steal;
    steal.key = key;
    steal.victim = victim->id();
    steal.thief = thief->id();
    steal.time = engine_.now();
    steal.estimated_transfer_cost = transfer;
    steal.estimated_compute_cost = compute;
    steals_.push_back(steal);
    if (journal_ && !recovering_) {
      json::Object o;
      o["t"] = "steal";
      o["r"] = to_json(steal);
      journal_append(json::Value(std::move(o)));
    }
    for (auto* plugin : plugins_) plugin->on_steal(steal);
    logs_.log(LogLevel::kInfo, "scheduler",
              "steal " + key.to_string() + " from " + victim->address() +
                  " to " + thief->address());

    // Re-send through the normal path (records the processing->processing
    // transition with the "steal" stimulus and the new assignment).
    send_to_worker(info, thief, "steal", /*stolen=*/true);
  }
}

void Scheduler::heartbeat(WorkerId worker) {
  if (worker < last_heartbeat_.size()) {
    last_heartbeat_[worker] = engine_.now();
  }
}

void Scheduler::start_lease_loop() {
  if (!config_.lease_liveness || stopped_) return;
  engine_.schedule_after(config_.heartbeat_interval, [this] {
    if (stopped_) return;
    lease_round();
    start_lease_loop();
  });
}

void Scheduler::lease_round() {
  // Lease expiry catches workers that stopped making progress without ever
  // emitting a death notification (hung event loop, network partition). The
  // reclaim path is the same idempotent handler SSG death detection feeds,
  // so double detection is harmless.
  const Duration expiry = config_.heartbeat_interval * config_.lease_misses;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!worker_alive_[i]) continue;
    if (engine_.now() - last_heartbeat_[i] <= expiry) continue;
    ++lease_expirations_;
    logs_.log(LogLevel::kError, "scheduler",
              "lease expired for " + workers_[i]->address() + " (no heartbeat for " +
                  std::to_string(engine_.now() - last_heartbeat_[i]) + "s)");
    on_worker_failed(static_cast<WorkerId>(i));
  }
}

void Scheduler::recompute_lost(TaskInfo& info) {
  if (info.state != SchedulerTaskState::kMemory) return;
  transition(info, SchedulerTaskState::kReleased, "lost-data");
  transition(info, SchedulerTaskState::kWaiting, "recompute");
  graphs_.at(info.graph).remaining += 1;
  info.waiting_on = 0;
  for (const auto& dep : info.spec.dependencies) {
    const auto dep_it = tasks_.find(dep);
    if (dep_it == tasks_.end()) continue;
    TaskInfo& dep_info = dep_it->second;
    if (dep_info.state == SchedulerTaskState::kMemory) {
      if (!dep_info.who_has.empty()) continue;
      recompute_lost(dep_info);  // transitively lost
    }
    if (dep_info.state == SchedulerTaskState::kForgotten) {
      // A released dependency cannot be rebuilt: terminal error.
      transition(info, SchedulerTaskState::kErred, "unrecoverable");
      ++erred_;
      logs_.log(LogLevel::kError, "scheduler",
                "cannot recompute " + info.spec.key.to_string() +
                    ": dependency " + dep.to_string() + " was released");
      return;
    }
    ++info.waiting_on;
  }
  if (info.waiting_on == 0) {
    dispatch(info, "recompute");
  }
}

void Scheduler::dead_letter(TaskInfo& info, const std::string& reason) {
  if (info.state != SchedulerTaskState::kErred) {
    transition(info, SchedulerTaskState::kErred, "dead-letter");
  }
  ++erred_;
  WarningRecord warning;
  warning.kind = "dead_letter";
  warning.location = "scheduler";
  warning.time = engine_.now();
  warning.message = "task " + info.spec.key.to_string() + ": " + reason;
  warnings_.push_back(warning);
  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "warning";
    o["r"] = to_json(warning);
    journal_append(json::Value(std::move(o)));
  }
  for (auto* plugin : plugins_) plugin->on_warning(warning);
  logs_.log(LogLevel::kError, "scheduler", "dead-letter " + warning.message);
  // Terminal failure still counts towards graph completion so runs finish;
  // dependents remain blocked forever by design.
  auto& graph = graphs_.at(info.graph);
  if (--graph.remaining == 0) graph_completed(graph);
}

void Scheduler::requeue_after_failure(TaskInfo& info) {
  if (++info.resubmissions > config_.max_resubmissions) {
    dead_letter(info, "resubmission cap (" +
                          std::to_string(config_.max_resubmissions) +
                          ") exhausted after repeated worker failures");
    return;
  }
  transition(info, SchedulerTaskState::kWaiting, "worker-failed");
  info.waiting_on = 0;
  for (const auto& dep : info.spec.dependencies) {
    const auto dep_it = tasks_.find(dep);
    if (dep_it == tasks_.end()) continue;
    TaskInfo& dep_info = dep_it->second;
    if (dep_info.state == SchedulerTaskState::kMemory) {
      if (!dep_info.who_has.empty()) continue;
      recompute_lost(dep_info);
    }
    if (dep_info.state == SchedulerTaskState::kMemory &&
        !dep_info.who_has.empty()) {
      continue;
    }
    ++info.waiting_on;
  }
  if (info.waiting_on == 0) {
    dispatch(info, "worker-failed");
  }
}

void Scheduler::on_worker_failed(WorkerId worker) {
  if (worker >= workers_.size() || !worker_alive_[worker]) return;
  worker_alive_[worker] = false;
  Worker* dead = workers_[worker];
  in_flight_[worker] = 0;
  // Ownership transfer on worker death: entries owned by the dead shard
  // re-pin to a surviving replica; entries with no survivor are dropped
  // from the store and recomputed below like any other lost result.
  // Idempotent with Worker::kill()'s own kill_shard call — lease expiry
  // reaches here without the worker ever being told it died.
  if (datastore_ != nullptr) datastore_->kill_shard(worker);
  logs_.log(LogLevel::kError, "scheduler",
            "Remove worker " + dead->address() + " (failed)");
  for (auto* plugin : plugins_) {
    plugin->on_worker_removed(worker, dead->address(), engine_.now());
  }

  // Purge the dead worker's replicas everywhere.
  for (auto& [key, info] : tasks_) {
    info.who_has.erase(worker);
  }
  // Re-dispatch its in-flight tasks, then recompute results whose only
  // copies died with it (only those some dependent still needs).
  for (auto& [key, info] : tasks_) {
    if (info.state == SchedulerTaskState::kProcessing &&
        info.assigned == dead) {
      info.assigned = nullptr;
      requeue_after_failure(info);
    }
  }
  for (auto& [key, info] : tasks_) {
    if (info.state == SchedulerTaskState::kMemory && info.who_has.empty() &&
        info.remaining_dependents > 0) {
      recompute_lost(info);
    }
  }
  drain_queue();
}

void Scheduler::enable_durability(SchedulerDurability durability) {
  journal_ = std::make_unique<wal::WalWriter>(durability.dir, durability.wal);
  // Resume-aware: the journal may already hold records from a previous
  // process (checkpoint positions index into the full journal, so the count
  // must be total, not per-session).
  const wal::ReplayStats stats =
      wal::WalWriter::replay(durability.dir, [](std::string_view) {});
  journal_records_ = stats.compacted_records + stats.records;
  durability_ = std::move(durability);
}

void Scheduler::journal_append(const json::Value& record) {
  journal_->append(wire::encode_value(record));
  ++journal_records_;
  if (durability_->checkpoint_every > 0 && !recovering_ &&
      journal_records_ % durability_->checkpoint_every == 0) {
    checkpoint();
  }
}

void Scheduler::checkpoint() {
  if (!durability_) return;
  // The checkpoint's journal position must never exceed what is readable
  // from disk, or recovery would replay pre-checkpoint records twice.
  journal_->flush();

  json::Object o;
  o["journal_records"] = journal_records_;
  o["rr_counter"] = rr_counter_;
  o["erred"] = erred_;
  json::Array prefixes;
  for (const auto& [prefix, stat] : prefix_durations_) {
    json::Object p;
    p["prefix"] = prefix;
    p["sum"] = stat.first;
    p["count"] = stat.second;
    prefixes.push_back(json::Value(std::move(p)));
  }
  o["prefix_durations"] = std::move(prefixes);
  json::Array graphs;
  for (const auto& [name, graph] : graphs_) {
    json::Object g;
    g["name"] = name;
    g["remaining"] = graph.remaining;
    g["done_fired"] = graph.done_fired;
    graphs.push_back(json::Value(std::move(g)));
  }
  o["graphs"] = std::move(graphs);
  json::Array tasks;
  for (const auto& [key, info] : tasks_) {
    json::Object t;
    t["key"] = to_json(key);
    t["graph"] = info.graph;
    t["state"] = to_string(info.state);
    t["retries"] = static_cast<std::int64_t>(info.retries);
    t["resubmissions"] = static_cast<std::int64_t>(info.resubmissions);
    t["remaining_dependents"] = info.remaining_dependents;
    json::Array who;
    for (const WorkerId holder : info.who_has) {
      who.push_back(json::Value(static_cast<std::int64_t>(holder)));
    }
    t["who_has"] = std::move(who);
    tasks.push_back(json::Value(std::move(t)));
  }
  o["tasks"] = std::move(tasks);
  json::Array queued;
  for (const TaskKey& key : queued_) queued.push_back(to_json(key));
  o["queued"] = std::move(queued);
  if (durability_->compact_on_checkpoint) {
    // Compaction deletes the journal prefix holding the spec records, so a
    // compacting checkpoint must carry every spec itself (in submission
    // order: dependent registration at recovery relies on it).
    json::Array specs;
    for (const TaskKey& key : spec_order_) {
      const auto it = tasks_.find(key);
      if (it == tasks_.end()) continue;
      json::Object s;
      s["graph"] = it->second.graph;
      s["spec"] = to_json(it->second.spec);
      specs.push_back(json::Value(std::move(s)));
    }
    o["specs"] = std::move(specs);
  }

  // Atomic replace: a crash mid-checkpoint leaves the previous snapshot.
  const auto dir = std::filesystem::path(durability_->dir);
  const auto tmp = dir / "checkpoint.tmp";
  const auto final_path = dir / "checkpoint.json";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << json::Value(std::move(o)).dump();
  }
  std::filesystem::rename(tmp, final_path);

  // Journal compaction bounded by checkpoint age: every record the snapshot
  // covers is redundant for recovery, so whole leading segments below that
  // watermark can go. Runs after the atomic rename — a crash in between
  // still has the old checkpoint and the uncompacted journal.
  if (durability_->compact_on_checkpoint) {
    journal_->compact(journal_records_);
  }
}

void Scheduler::recover() {
  if (!durability_) {
    throw std::logic_error("Scheduler::recover without durability enabled");
  }
  recovering_ = true;

  // Checkpoint, if one exists, grounds the control state; the journal
  // suffix past it is replayed on top.
  json::Value cp;
  bool have_cp = false;
  const auto cp_path =
      std::filesystem::path(durability_->dir) / "checkpoint.json";
  if (std::filesystem::exists(cp_path)) {
    std::ifstream in(cp_path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    cp = json::parse(text);
    have_cp = true;
  }
  const std::size_t cp_records =
      have_cp ? static_cast<std::size_t>(cp.get_int("journal_records", 0)) : 0;

  std::vector<json::Value> records;
  // Journals written before the binary codec hold JSON text; the first
  // byte tells them apart, so old journals keep replaying.
  const wal::ReplayStats replay_stats = wal::WalWriter::replay(
      durability_->dir, [&records](std::string_view payload) {
        records.push_back(wire::looks_binary(payload)
                              ? wire::decode_value(payload)
                              : json::parse(payload));
      });
  // Checkpoint positions index the *full* journal; a compacted prefix
  // shifts every surviving record down by `compacted` local slots.
  const std::size_t compacted =
      static_cast<std::size_t>(replay_stats.compacted_records);
  journal_records_ = compacted + records.size();
  if (cp_records > journal_records_) {
    throw wal::WalError("scheduler checkpoint is ahead of the journal (" +
                        std::to_string(cp_records) + " > " +
                        std::to_string(journal_records_) + " records)");
  }
  if (cp_records < compacted) {
    throw wal::WalError(
        "journal compacted past the checkpoint (" + std::to_string(compacted) +
        " > " + std::to_string(cp_records) +
        " records): specs before the snapshot are unrecoverable");
  }

  // Pass 1 (surviving journal): record vectors are full-history provenance,
  // and task specs / dependents are structural, so both rebuild from the
  // oldest surviving record. A compacting checkpoint carries the specs its
  // compacted prefix used to hold — load those first (they precede every
  // surviving journal spec in submission order).
  std::vector<TaskKey> spec_order;
  if (have_cp && cp.contains("specs")) {
    for (const json::Value& s : cp.at("specs").as_array()) {
      TaskSpec spec = spec_from_json(s.at("spec"));
      const TaskKey key = spec.key;
      TaskInfo& info = tasks_[key];
      info.spec = std::move(spec);
      info.graph = s.get_string("graph", "");
      spec_order.push_back(key);
    }
  }
  for (const json::Value& rec : records) {
    const std::string type = rec.get_string("t", "");
    if (type == "graph") {
      const std::string name = rec.get_string("name", "");
      GraphInfo& graph = graphs_[name];
      graph.name = name;
    } else if (type == "spec") {
      TaskSpec spec = spec_from_json(rec.at("spec"));
      const TaskKey key = spec.key;
      if (tasks_.count(key) != 0) continue;  // already in checkpoint specs
      TaskInfo& info = tasks_[key];
      info.spec = std::move(spec);
      info.graph = rec.get_string("graph", "");
      spec_order.push_back(key);
    } else if (type == "transition") {
      transitions_.push_back(transition_from_json(rec.at("r")));
    } else if (type == "task") {
      task_records_.push_back(task_from_json(rec.at("r")));
    } else if (type == "steal") {
      steals_.push_back(steal_from_json(rec.at("r")));
    } else if (type == "warning") {
      warnings_.push_back(warning_from_json(rec.at("r")));
    }
  }
  // Dependent registration follows journal order, which is submission
  // order, so release refcount replay below sees the original ordering.
  for (const TaskKey& key : spec_order) {
    TaskInfo& info = tasks_.at(key);
    for (const TaskKey& dep : info.spec.dependencies) {
      tasks_.at(dep).dependents.push_back(key);
    }
  }
  spec_order_ = std::move(spec_order);

  // Apply the checkpointed control state.
  std::vector<TaskKey> queued_cp;
  if (have_cp) {
    rr_counter_ = static_cast<std::size_t>(cp.get_int("rr_counter", 0));
    erred_ = static_cast<std::uint64_t>(cp.get_int("erred", 0));
    if (cp.contains("prefix_durations")) {
      for (const json::Value& p : cp.at("prefix_durations").as_array()) {
        prefix_durations_[p.get_string("prefix", "")] = {
            p.get_double("sum", 0.0),
            static_cast<std::uint64_t>(p.get_int("count", 0))};
      }
    }
    if (cp.contains("graphs")) {
      for (const json::Value& g : cp.at("graphs").as_array()) {
        GraphInfo& graph = graphs_[g.get_string("name", "")];
        graph.name = g.get_string("name", "");
        graph.remaining = static_cast<std::size_t>(g.get_int("remaining", 0));
        graph.done_fired = g.get_bool("done_fired", false);
      }
    }
    if (cp.contains("tasks")) {
      for (const json::Value& t : cp.at("tasks").as_array()) {
        const TaskKey key = key_from_json(t.at("key"));
        const auto it = tasks_.find(key);
        if (it == tasks_.end()) continue;
        TaskInfo& info = it->second;
        info.state = scheduler_state_from_string(
            t.get_string("state", "released"));
        info.retries = static_cast<std::uint32_t>(t.get_int("retries", 0));
        info.resubmissions =
            static_cast<std::uint32_t>(t.get_int("resubmissions", 0));
        info.remaining_dependents =
            static_cast<std::size_t>(t.get_int("remaining_dependents", 0));
      }
    }
    if (cp.contains("queued")) {
      for (const json::Value& q : cp.at("queued").as_array()) {
        queued_cp.push_back(key_from_json(q));
      }
    }
  }

  // Pass 2 (journal suffix past the checkpoint): replay control-state
  // deltas — states from transitions, counters from their stimuli,
  // release refcounts from spec registration and task completion.
  // cp_records indexes the full log; `records` starts `compacted` in.
  std::vector<TaskKey> queued_post;
  for (std::size_t i = cp_records - compacted; i < records.size(); ++i) {
    const json::Value& rec = records[i];
    const std::string type = rec.get_string("t", "");
    if (type == "transition") {
      const TransitionRecord tr = transition_from_json(rec.at("r"));
      const auto it = tasks_.find(tr.key);
      if (it == tasks_.end()) continue;
      TaskInfo& info = it->second;
      info.state = scheduler_state_from_string(tr.to_state);
      if (tr.stimulus == "retry") ++info.retries;
      if (tr.stimulus == "worker-failed") ++info.resubmissions;
      if (tr.stimulus == "unrecoverable") ++erred_;
      if (info.state == SchedulerTaskState::kQueued) {
        queued_post.push_back(tr.key);
      }
      if (info.state == SchedulerTaskState::kMemory &&
          tr.stimulus == "task-finished") {
        for (const TaskKey& dep : info.spec.dependencies) {
          const auto dep_it = tasks_.find(dep);
          if (dep_it != tasks_.end() &&
              dep_it->second.remaining_dependents > 0) {
            --dep_it->second.remaining_dependents;
          }
        }
      }
    } else if (type == "spec") {
      const TaskKey key = key_from_json(rec.at("spec").at("key"));
      for (const TaskKey& dep : tasks_.at(key).spec.dependencies) {
        const auto dep_it = tasks_.find(dep);
        if (dep_it != tasks_.end()) ++dep_it->second.remaining_dependents;
      }
    } else if (type == "task") {
      const TaskRecord tr = task_from_json(rec.at("r"));
      auto& [sum, count] = prefix_durations_[tr.key.prefix()];
      sum += tr.end_time - tr.start_time;
      ++count;
    } else if (type == "warning") {
      if (rec.at("r").get_string("kind", "") == "dead_letter") ++erred_;
    }
  }

  // Reconcile against the workers that survived the crash: they are the
  // ground truth for replica placement and still-executing tasks.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    worker_alive_[i] = workers_[i]->alive();
    in_flight_[i] = 0;
    last_heartbeat_[i] = engine_.now();  // fresh leases after restart
  }
  std::vector<TaskKey> orphaned;
  for (auto& [key, info] : tasks_) {
    info.assigned = nullptr;
    info.who_has.clear();
    if (info.state == SchedulerTaskState::kMemory) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (worker_alive_[i] && workers_[i]->has_data(key)) {
          info.who_has.insert(static_cast<WorkerId>(i));
        }
      }
    } else if (info.state == SchedulerTaskState::kProcessing) {
      // Re-adopt the task if a surviving worker is still executing it;
      // otherwise it died with its worker (or the assignment was lost with
      // our process) and must be re-dispatched.
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (worker_alive_[i] && workers_[i]->has_task(key)) {
          info.assigned = workers_[i];
          ++in_flight_[i];
          break;
        }
      }
      if (info.assigned == nullptr) orphaned.push_back(key);
    }
  }
  for (auto& [key, info] : tasks_) {
    if (info.state != SchedulerTaskState::kWaiting) continue;
    info.waiting_on = 0;
    for (const TaskKey& dep : info.spec.dependencies) {
      const auto dep_it = tasks_.find(dep);
      if (dep_it == tasks_.end()) continue;
      const TaskInfo& dep_info = dep_it->second;
      if (dep_info.state == SchedulerTaskState::kMemory &&
          !dep_info.who_has.empty()) {
        continue;
      }
      ++info.waiting_on;
    }
  }
  // Queue order: checkpointed order first, then post-checkpoint arrivals,
  // keeping only tasks still queued (and each at most once).
  queued_.clear();
  std::set<TaskKey> enqueued;
  const auto enqueue_if_current = [this, &enqueued](const TaskKey& key) {
    const auto it = tasks_.find(key);
    if (it == tasks_.end()) return;
    if (it->second.state != SchedulerTaskState::kQueued) return;
    if (!enqueued.insert(key).second) return;
    queued_.push_back(key);
  };
  for (const TaskKey& key : queued_cp) enqueue_if_current(key);
  for (const TaskKey& key : queued_post) enqueue_if_current(key);
  // Graph accounting from first principles: every task not terminal counts.
  for (auto& [name, graph] : graphs_) graph.remaining = 0;
  for (const auto& [key, info] : tasks_) {
    if (info.state != SchedulerTaskState::kMemory &&
        info.state != SchedulerTaskState::kErred &&
        info.state != SchedulerTaskState::kReleased &&
        info.state != SchedulerTaskState::kForgotten) {
      ++graphs_.at(info.graph).remaining;
    }
  }
  for (auto& [name, graph] : graphs_) {
    // A drained graph completed before the crash; its on_done already fired
    // in the previous process, so never re-fire it here.
    if (graph.remaining == 0) graph.done_fired = true;
  }

  recovering_ = false;
  ++recoveries_;
  logs_.log(LogLevel::kInfo, "scheduler",
            "recovered from " + durability_->dir + ": " +
                std::to_string(records.size()) + " journal records (" +
                std::to_string(cp_records) + " checkpointed), " +
                std::to_string(tasks_.size()) + " tasks, " +
                std::to_string(orphaned.size()) + " orphaned");

  // Post-recovery fixups run through the normal (journaled, plugin-visible)
  // paths: these are new decisions of the restarted scheduler, not replay.
  for (const TaskKey& key : orphaned) {
    TaskInfo& info = tasks_.at(key);
    if (info.state != SchedulerTaskState::kProcessing) continue;
    transition(info, SchedulerTaskState::kWaiting, "scheduler-restart");
    info.waiting_on = 0;
    for (const TaskKey& dep : info.spec.dependencies) {
      const auto dep_it = tasks_.find(dep);
      if (dep_it == tasks_.end()) continue;
      TaskInfo& dep_info = dep_it->second;
      if (dep_info.state == SchedulerTaskState::kMemory) {
        if (!dep_info.who_has.empty()) continue;
        recompute_lost(dep_info);
      }
      if (dep_info.state == SchedulerTaskState::kMemory &&
          !dep_info.who_has.empty()) {
        continue;
      }
      ++info.waiting_on;
    }
    if (info.waiting_on == 0) dispatch(info, "scheduler-restart");
  }
  for (auto& [key, info] : tasks_) {
    if (info.state == SchedulerTaskState::kMemory && info.who_has.empty() &&
        info.remaining_dependents > 0) {
      recompute_lost(info);
    }
  }
  // Proxy fetches whose requester was parked as a waiter died with our
  // process's waiter table. Re-register every stalled fetch whose data is
  // not available; fetches with an alive replica are left alone — their
  // transfer events survived the scheduler restart and will complete.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!worker_alive_[i]) continue;
    for (const TaskKey& key : workers_[i]->pending_fetch_keys()) {
      const auto it = tasks_.find(key);
      if (it == tasks_.end()) continue;
      TaskInfo& info = it->second;
      if (info.state == SchedulerTaskState::kMemory && !info.who_has.empty()) {
        continue;
      }
      pending_fetch_waiters_[key].insert(static_cast<WorkerId>(i));
      if (info.state == SchedulerTaskState::kMemory) recompute_lost(info);
    }
  }
  for (auto& [key, info] : tasks_) {
    if (info.state == SchedulerTaskState::kWaiting && info.waiting_on == 0) {
      dispatch(info, "scheduler-restart");
    }
  }
  drain_queue();
  checkpoint();
}

void Scheduler::crash_and_recover() {
  if (!journal_) {
    throw std::logic_error("Scheduler::crash_and_recover requires durability");
  }
  logs_.log(LogLevel::kError, "scheduler",
            "simulated process crash (restarting from " + durability_->dir +
                ")");
  // What a real crash would leave on disk: whatever the journal had pushed
  // to the OS. flush() models the page cache surviving the process.
  journal_->flush();
  tasks_.clear();
  graphs_.clear();
  queued_.clear();
  transitions_.clear();
  task_records_.clear();
  steals_.clear();
  warnings_.clear();
  prefix_durations_.clear();
  erred_ = 0;
  rr_counter_ = 0;
  journal_records_ = 0;
  spec_order_.clear();
  pending_fetch_waiters_.clear();
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
  recover();
}

void Scheduler::set_graph_done(const std::string& graph, GraphDoneFn on_done) {
  const auto it = graphs_.find(graph);
  if (it == graphs_.end()) {
    throw std::invalid_argument("set_graph_done: unknown graph " + graph);
  }
  if (it->second.done_fired) {
    if (on_done) on_done(graph);
    return;
  }
  it->second.on_done = std::move(on_done);
}

bool Scheduler::in_memory(const TaskKey& key) const {
  const auto it = tasks_.find(key);
  return it != tasks_.end() && it->second.state == SchedulerTaskState::kMemory;
}

std::size_t Scheduler::tasks_in_memory() const {
  std::size_t count = 0;
  for (const auto& [key, info] : tasks_) {
    if (info.state == SchedulerTaskState::kMemory) ++count;
  }
  return count;
}

}  // namespace recup::dtr
