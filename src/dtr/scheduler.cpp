#include "dtr/scheduler.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "dtr/durability.hpp"
#include "dtr/foreman.hpp"
#include "dtr/mofka_plugins.hpp"
#include "wire/codec.hpp"

namespace recup::dtr {

Scheduler::Scheduler(sim::Engine& engine, platform::Network& network,
                     SchedulerConfig config, RngStream rng,
                     LogCollector& logs)
    : engine_(engine),
      network_(network),
      config_(config),
      rng_(rng),
      logs_(logs),
      tasks_(config.shards) {}

Scheduler::~Scheduler() = default;

void Scheduler::add_worker(Worker* worker) {
  workers_.push_back(worker);
  worker_alive_.push_back(true);
  in_flight_.push_back(0);
  last_heartbeat_.push_back(engine_.now());
  foreman_of_.push_back(nullptr);
  wire_worker_direct(worker);
  logs_.log(LogLevel::kInfo, "scheduler",
            "Register worker " + worker->address());
  for (auto* plugin : plugins_) {
    plugin->on_worker_added(worker->id(), worker->address(), engine_.now());
  }
}

void Scheduler::wire_worker_direct(Worker* worker) {
  worker->set_ack_tracking(false);
  if (config_.legacy_intake) {
    // Compatibility path: reports invoke the handlers directly, exactly the
    // pre-batching call graph.
    worker->set_completion_callback(
        [this](const TaskKey& key, const TaskRecord& record, bool failed) {
          on_task_finished(key, record, failed);
        });
    worker->set_heartbeat_callback([this](WorkerId id) { heartbeat(id); });
    worker->set_missing_dep_callback(
        [this](const TaskKey& key, WorkerId requester,
               WorkerId failed_holder) {
          on_missing_dep(key, requester, failed_holder);
        });
    worker->set_replica_callback([this](const TaskKey& key, WorkerId id) {
      TaskInfo* info = tasks_.find(key);
      if (info != nullptr) info->who_has.insert(id);
    });
    return;
  }
  // Batched path: reports land in the intake queue; the pump applies them
  // at the same virtual instant (the queue is drained before the engine
  // advances), so scheduling decisions and provenance are unchanged.
  worker->set_completion_callback(
      [this](const TaskKey& key, const TaskRecord& record, bool failed) {
        IntakeEvent event;
        event.kind = IntakeKind::kCompletion;
        event.key = key;
        event.record = record;
        event.failed = failed;
        event.worker = record.worker;
        enqueue_event(std::move(event));
        pump_intake();
      });
  worker->set_heartbeat_callback([this](WorkerId id) {
    IntakeEvent event;
    event.kind = IntakeKind::kHeartbeat;
    event.worker = id;
    enqueue_event(std::move(event));
    pump_intake();
  });
  worker->set_missing_dep_callback(
      [this](const TaskKey& key, WorkerId requester, WorkerId failed_holder) {
        IntakeEvent event;
        event.kind = IntakeKind::kMissingDep;
        event.key = key;
        event.worker = requester;
        event.failed_holder = failed_holder;
        enqueue_event(std::move(event));
        pump_intake();
      });
  worker->set_replica_callback([this](const TaskKey& key, WorkerId id) {
    IntakeEvent event;
    event.kind = IntakeKind::kReplicaAdded;
    event.key = key;
    event.worker = id;
    enqueue_event(std::move(event));
    pump_intake();
  });
}

void Scheduler::finalize_topology() {
  if (topology_finalized_) return;
  topology_finalized_ = true;
  if (config_.foremen == 0 || config_.legacy_intake || workers_.empty()) {
    return;
  }
  const std::size_t count =
      std::min<std::size_t>(config_.foremen, workers_.size());
  // Contiguous pools: worker order across pools equals global worker order,
  // so per-pool sweeps visit workers in the same order flat sweeps do.
  const std::size_t pool_size = (workers_.size() + count - 1) / count;
  last_foreman_beat_.assign(count, engine_.now());
  foreman_failed_.assign(count, false);
  for (std::size_t f = 0; f < count; ++f) {
    foremen_.push_back(std::make_unique<Foreman>(
        engine_, *this, static_cast<std::uint32_t>(f), config_.foreman_window,
        config_.control_latency, config_.heartbeat_interval,
        config_.lease_expiry(), logs_));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Foreman* foreman = foremen_[i / pool_size].get();
    foreman_of_[i] = foreman;
    foreman->adopt_worker(workers_[i]);
  }
  logs_.log(LogLevel::kInfo, "scheduler",
            "hierarchical tier: " + std::to_string(count) + " foremen over " +
                std::to_string(workers_.size()) + " workers");
}

void Scheduler::enqueue_event(IntakeEvent event) {
  intake_.push(std::move(event));
}

void Scheduler::pump_intake() {
  if (pumping_) return;  // reentrant: the running pump drains what we queued
  pumping_ = true;
  std::vector<IntakeEvent> batch;
  while (true) {
    batch.clear();
    if (intake_.drain(config_.intake_batch_max, batch) == 0) break;
    for (auto* plugin : plugins_) plugin->on_batch_begin(batch.size());
    begin_journal_group();
    for (const IntakeEvent& event : batch) apply_event(event);
    end_journal_group();
    for (auto* plugin : plugins_) plugin->on_batch_end();
  }
  pumping_ = false;
}

void Scheduler::apply_event(const IntakeEvent& event) {
  switch (event.kind) {
    case IntakeKind::kCompletion:
      on_task_finished(event.key, event.record, event.failed);
      break;
    case IntakeKind::kHeartbeat:
      heartbeat(event.worker);
      break;
    case IntakeKind::kReplicaAdded: {
      TaskInfo* info = tasks_.find(event.key);
      if (info != nullptr) info->who_has.insert(event.worker);
      break;
    }
    case IntakeKind::kMissingDep:
      on_missing_dep(event.key, event.worker, event.failed_holder);
      break;
    case IntakeKind::kWorkerLeaseExpired: {
      // A foreman swept its pool and found this worker silent; the root
      // runs the same reclaim path its own lease loop uses.
      if (event.worker >= workers_.size() || !worker_alive_[event.worker]) {
        break;
      }
      ++lease_expirations_;
      logs_.log(LogLevel::kError, "scheduler",
                "lease expired for " + workers_[event.worker]->address() +
                    " (reported by its foreman)");
      on_worker_failed(event.worker);
      break;
    }
    case IntakeKind::kForemanBeat:
      if (event.worker < last_foreman_beat_.size()) {
        last_foreman_beat_[event.worker] = engine_.now();
      }
      break;
  }
}

void Scheduler::transition(TaskInfo& info, SchedulerTaskState to,
                           const std::string& stimulus) {
  TransitionRecord record;
  record.key = info.spec.key;
  record.graph = info.graph;
  record.from_state = to_string(info.state);
  record.to_state = to_string(to);
  record.stimulus = stimulus;
  record.location = "scheduler";
  record.time = engine_.now();
  info.state = to;
  transitions_.push_back(record);
  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "transition";
    o["r"] = to_json(record);
    journal_append(json::Value(std::move(o)));
  }
  for (auto* plugin : plugins_) plugin->on_transition(record);
}

void Scheduler::submit_graph(const TaskGraph& graph, GraphDoneFn on_done) {
  finalize_topology();
  if (graphs_.count(graph.name()) != 0) {
    throw std::invalid_argument("graph name already submitted: " +
                                graph.name());
  }
  // The whole submission journals as one batch group; the scope balances
  // the group across the validation throws below.
  struct JournalGroupScope {
    Scheduler& scheduler;
    explicit JournalGroupScope(Scheduler& s) : scheduler(s) {
      scheduler.begin_journal_group();
    }
    ~JournalGroupScope() { scheduler.end_journal_group(); }
  };
  JournalGroupScope group(*this);

  GraphInfo& graph_info = graphs_[graph.name()];
  graph_info.name = graph.name();
  graph_info.remaining = graph.size();
  graph_info.on_done = std::move(on_done);

  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "graph";
    o["name"] = graph.name();
    o["size"] = graph.size();
    journal_append(json::Value(std::move(o)));
  }

  logs_.log(LogLevel::kInfo, "scheduler",
            "Receive graph " + graph.name() + " with " +
                std::to_string(graph.size()) + " tasks");
  for (auto* plugin : plugins_) {
    plugin->on_graph_received(graph.name(), graph.size(), engine_.now());
  }

  // Materialize TaskInfo for every task, wiring dependency counts against
  // both in-graph tasks and results of earlier graphs already in memory.
  std::vector<TaskKey> runnable;
  for (const auto& [key, spec] : graph.tasks()) {
    auto [info, inserted] = tasks_.try_emplace(key);
    if (!inserted) {
      throw std::invalid_argument("task key resubmitted: " + key.to_string());
    }
    info->spec = spec;
    info->graph = graph.name();
    spec_order_.push_back(key);
    if (journal_ && !recovering_) {
      json::Object o;
      o["t"] = "spec";
      o["graph"] = graph.name();
      o["spec"] = to_json(spec);
      journal_append(json::Value(std::move(o)));
    }
  }
  for (const auto& [key, spec] : graph.tasks()) {
    TaskInfo& info = tasks_.at(key);
    for (const auto& dep : spec.dependencies) {
      TaskInfo* dep_info = tasks_.find(dep);
      if (dep_info == nullptr) {
        throw std::invalid_argument("dependency never submitted: " +
                                    dep.to_string());
      }
      if (dep_info->state == SchedulerTaskState::kForgotten) {
        throw std::invalid_argument(
            "dependency was already released (mark it non-releasable): " +
            dep.to_string());
      }
      dep_info->dependents.push_back(key);
      ++dep_info->remaining_dependents;
      if (dep_info->state == SchedulerTaskState::kMemory) {
        if (!dep_info->who_has.empty()) continue;
        // The result survived in name only: every replica died with its
        // worker before this graph arrived (and with no dependents yet, the
        // failure handler had no reason to recompute it then). Rebuild it
        // now that someone needs it.
        recompute_lost(*dep_info);
      }
      ++info.waiting_on;
    }
    transition(info, SchedulerTaskState::kWaiting, "update-graph");
    if (info.waiting_on == 0) runnable.push_back(key);
  }
  // Dispatch runnable tasks in priority order (dask.order analog): lower
  // priority value first, key order as tie-break.
  std::stable_sort(runnable.begin(), runnable.end(),
                   [this](const TaskKey& a, const TaskKey& b) {
                     return tasks_.at(a).spec.priority <
                            tasks_.at(b).spec.priority;
                   });
  for (const auto& key : runnable) {
    dispatch(tasks_.at(key), "update-graph");
  }
}

Duration Scheduler::transfer_cost_estimate(const TaskInfo& info,
                                           const Worker& worker) const {
  Duration cost = 0.0;
  for (const auto& dep : info.spec.dependencies) {
    const TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr) continue;
    if (dep_info->who_has.count(worker.id()) != 0) continue;
    if (dep_info->who_has.empty()) continue;
    // Nearest replica.
    Duration best = std::numeric_limits<double>::infinity();
    for (const WorkerId holder : dep_info->who_has) {
      const Worker* held = workers_.at(holder);
      best = std::min(best,
                      network_.estimate(held->node(), worker.node(),
                                        dep_info->spec.work.output_bytes));
    }
    cost += best;
  }
  return cost;
}

Duration Scheduler::compute_estimate(const TaskInfo& info) const {
  const auto it = prefix_durations_.find(info.spec.key.prefix());
  if (it == prefix_durations_.end() || it->second.second == 0) {
    return config_.default_task_duration;
  }
  return it->second.first / static_cast<double>(it->second.second);
}

Worker* Scheduler::decide_worker(const TaskInfo& info) {
  // Score = expected dep-transfer cost + occupancy penalty. The occupancy
  // penalty uses the observed mean duration of each worker's queue depth,
  // matching Dask's occupancy-based tie-breaking.
  //
  // Per-dependency replica sets are hoisted out of the per-worker scan, and
  // the compute estimate (pure during the scan) is evaluated once. The
  // floating-point evaluation order inside the scan is unchanged, so the
  // hoisted form picks the identical worker.
  struct DepTransfer {
    const std::set<WorkerId>* who_has;
    std::uint64_t bytes;
  };
  std::vector<DepTransfer> dep_transfers;
  dep_transfers.reserve(info.spec.dependencies.size());
  for (const auto& dep : info.spec.dependencies) {
    const TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr || dep_info->who_has.empty()) continue;
    dep_transfers.push_back(
        {&dep_info->who_has, dep_info->spec.work.output_bytes});
  }
  const double est = compute_estimate(info);
  Worker* best = nullptr;
  double best_score = std::numeric_limits<double>::infinity();
  const std::size_t offset = rr_counter_++;
  if (dep_transfers.empty()) {
    // No remote-replica dependencies: the transfer term is identically zero
    // for every worker (0.0 * bias + occ * est == occ * est), so the scan
    // reduces to pure occupancy.
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::size_t index = (i + offset) % workers_.size();
      if (!worker_alive_[index]) continue;
      Worker* worker = workers_[index];
      const double occupancy = static_cast<double>(in_flight_[index]) /
                               static_cast<double>(worker->nthreads());
      const double score = occupancy * est;
      if (score < best_score) {
        best_score = score;
        best = worker;
      }
    }
    return best;
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::size_t index = (i + offset) % workers_.size();
    if (!worker_alive_[index]) continue;
    Worker* worker = workers_[index];
    Duration cost = 0.0;
    for (const DepTransfer& dep : dep_transfers) {
      if (dep.who_has->count(worker->id()) != 0) continue;
      Duration dep_best = std::numeric_limits<double>::infinity();
      for (const WorkerId holder : *dep.who_has) {
        const Worker* held = workers_.at(holder);
        dep_best = std::min(
            dep_best, network_.estimate(held->node(), worker->node(),
                                        dep.bytes));
      }
      cost += dep_best;
    }
    const double occupancy = static_cast<double>(in_flight_[index]) /
                             static_cast<double>(worker->nthreads());
    const double score = cost * config_.locality_bias + occupancy * est;
    if (score < best_score) {
      best_score = score;
      best = worker;
    }
  }
  return best;
}

void Scheduler::dispatch(TaskInfo& info, const std::string& stimulus) {
  Worker* worker = workers_.empty() ? nullptr : decide_worker(info);
  if (worker == nullptr) {
    transition(info, SchedulerTaskState::kNoWorker, stimulus);
    return;
  }
  const double saturation_limit =
      static_cast<double>(worker->nthreads()) * config_.saturation_factor;
  if (static_cast<double>(in_flight_[worker->id()]) >= saturation_limit) {
    transition(info, SchedulerTaskState::kQueued, stimulus);
    queued_.push_back(info.spec.key);
    return;
  }
  send_to_worker(info, worker, stimulus, /*stolen=*/false);
}

void Scheduler::send_to_worker(TaskInfo& info, Worker* worker,
                               const std::string& stimulus, bool stolen) {
  transition(info, SchedulerTaskState::kProcessing, stimulus);
  // A steal re-sends a task already counted in flight on the victim; it is
  // removed there and re-assigned here.
  if (stolen && info.assigned != nullptr) {
    --in_flight_[info.assigned->id()];
  }
  ++in_flight_[worker->id()];
  info.assigned = worker;
  info.stolen = stolen;

  // Locations of dependencies the worker must gather from peers.
  std::vector<DepLocation> deps;
  for (const auto& dep : info.spec.dependencies) {
    const TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr) continue;
    if (dep_info->who_has.count(worker->id()) != 0) continue;
    if (dep_info->who_has.empty()) {
      throw std::logic_error("dispatching task with unmet dependency " +
                             dep.to_string() + " [stimulus=" + stimulus +
                             " stolen=" + (stolen ? "1" : "0") + "]");
    }
    // Nearest replica serves the transfer.
    WorkerId holder = *dep_info->who_has.begin();
    Duration best = std::numeric_limits<double>::infinity();
    for (const WorkerId candidate : dep_info->who_has) {
      const Duration est =
          network_.estimate(workers_.at(candidate)->node(), worker->node(),
                            dep_info->spec.work.output_bytes);
      if (est < best) {
        best = est;
        holder = candidate;
      }
    }
    DepLocation loc{dep, holder, workers_.at(holder)->node(),
                    dep_info->spec.work.output_bytes, /*oob=*/false, {}};
    // Results published to the datastore travel by reference: the worker
    // gets a proxy and pulls the payload from the holder's shard directly.
    if (datastore_ != nullptr) {
      if (const auto proxy = datastore_->proxy_for(dep.to_string())) {
        loc.oob = true;
        loc.proxy = *proxy;
      }
    }
    deps.push_back(loc);
  }

  const TaskSpec spec = info.spec;
  const std::string graph = info.graph;
  // Route through the worker's foreman when the tier exists. The foreman
  // applies the same control-latency hop; a foreman that died with the
  // message queued drops it, and the root's foreman-lease reclaim
  // re-dispatches the task.
  Foreman* via = worker->id() < foreman_of_.size() ? foreman_of_[worker->id()]
                                                   : nullptr;
  if (via != nullptr) {
    via->deliver(worker, spec, graph, deps, stolen);
    return;
  }
  engine_.schedule_after(config_.control_latency,
                         [worker, spec, graph, deps, stolen] {
                           worker->assign_task(spec, graph, deps, stolen);
                         });
}

void Scheduler::on_task_finished(const TaskKey& key, const TaskRecord& record,
                                 bool failed) {
  TaskInfo* found = tasks_.find(key);
  if (found == nullptr) return;
  TaskInfo& info = *found;
  // Stale completion from a worker that lost the assignment (failure
  // recovery re-dispatched the task elsewhere).
  if (info.assigned != nullptr && info.assigned->id() != record.worker) {
    return;
  }
  if (info.state != SchedulerTaskState::kProcessing) return;
  if (info.assigned != nullptr) {
    --in_flight_[info.assigned->id()];
    info.assigned = nullptr;
  }

  if (failed) {
    transition(info, SchedulerTaskState::kErred, "task-erred");
    if (info.retries < config_.max_retries) {
      ++info.retries;
      transition(info, SchedulerTaskState::kWaiting, "retry");
      dispatch(info, "retry");
    } else {
      dead_letter(info, "erred after " + std::to_string(info.retries) +
                            " retries");
    }
    return;
  }

  TaskRecord completed = record;
  completed.retries = info.retries;
  info.who_has.insert(record.worker);
  task_records_.push_back(completed);
  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "task";
    o["r"] = to_json(completed);
    journal_append(json::Value(std::move(o)));
  }
  transition(info, SchedulerTaskState::kMemory, "task-finished");

  // Update per-prefix duration statistics.
  auto& [sum, count] = prefix_durations_[key.prefix()];
  sum += record.end_time - record.start_time;
  ++count;

  // Workers parked on a failed proxy fetch for this key (every replica had
  // died) can now pull the recomputed result from the new holder.
  const auto waiters = pending_fetch_waiters_.find(key);
  if (waiters != pending_fetch_waiters_.end()) {
    for (const WorkerId waiter : waiters->second) {
      if (waiter >= workers_.size() || !worker_alive_[waiter]) continue;
      schedule_refetch(key, record.worker, workers_.at(waiter));
    }
    pending_fetch_waiters_.erase(waiters);
  }

  // Unblock dependents. The incremental waiting_on counter can drift low:
  // recompute_lost pulls an already-counted-done dependency back out of
  // memory without reaching into waiting dependents' counters. Dispatch
  // therefore recounts from ground truth — a zero counter is a trigger to
  // check, not proof of readiness.
  for (const auto& dependent_key : info.dependents) {
    TaskInfo& dependent = tasks_.at(dependent_key);
    if (dependent.waiting_on == 0) continue;  // already released (retry path)
    if (--dependent.waiting_on == 0) {
      const std::size_t unmet = unmet_dependencies(dependent);
      if (unmet == 0) {
        dispatch(dependent, "task-finished");
      } else {
        dependent.waiting_on = unmet;
      }
    }
  }

  // Reference-counted release of this task's own dependencies.
  for (const auto& dep_key : info.spec.dependencies) {
    TaskInfo* dep_info = tasks_.find(dep_key);
    if (dep_info == nullptr) continue;
    if (dep_info->remaining_dependents > 0) {
      --dep_info->remaining_dependents;
    }
    maybe_release(*dep_info);
  }

  // Workers freed capacity: reconsider the scheduler queue.
  drain_queue();

  auto& graph = graphs_.at(info.graph);
  if (--graph.remaining == 0) graph_completed(graph);
}

void Scheduler::graph_completed(GraphInfo& graph) {
  logs_.log(LogLevel::kInfo, "scheduler", "Graph " + graph.name + " done");
  graph.done_fired = true;
  if (graph.on_done) {
    // Fire once: recovery recomputation may re-count completions later.
    GraphDoneFn on_done = std::move(graph.on_done);
    graph.on_done = nullptr;
    on_done(graph.name);
  }
  // A graph boundary is the natural quiescent point: snapshot the control
  // state so a restart replays at most one graph's worth of journal.
  if (journal_ && !recovering_) checkpoint();
  // Process-crash fault site. The crash is deferred one event so the
  // current call stack (possibly deep inside on_task_finished) unwinds over
  // valid state; at a graph boundary no other event precedes it.
  if (injector_ != nullptr && journal_ != nullptr && !recovering_) {
    const auto fault = injector_->decide(chaos::sites::kSchedulerProcess);
    if (fault.action == chaos::FaultAction::kProcessCrashRestart) {
      engine_.schedule_after(0.0, [this] {
        if (!stopped_) crash_and_recover();
      });
    }
  }
}

std::size_t Scheduler::unmet_dependencies(const TaskInfo& info) const {
  std::size_t unmet = 0;
  for (const auto& dep : info.spec.dependencies) {
    const TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr) continue;  // external (validated in memory)
    if (dep_info->state == SchedulerTaskState::kMemory &&
        !dep_info->who_has.empty()) {
      continue;
    }
    ++unmet;
  }
  return unmet;
}

void Scheduler::maybe_release(TaskInfo& info) {
  if (!info.spec.work.releasable) return;
  if (info.state != SchedulerTaskState::kMemory) return;
  if (info.dependents.empty() || info.remaining_dependents > 0) return;
  // memory -> released -> forgotten, then drop every replica.
  transition(info, SchedulerTaskState::kReleased, "release-key");
  transition(info, SchedulerTaskState::kForgotten, "forget-key");
  const TaskKey key = info.spec.key;
  for (const WorkerId holder : info.who_has) {
    Worker* worker = workers_.at(holder);
    engine_.schedule_after(config_.control_latency,
                           [worker, key] { worker->drop_data(key); });
  }
  info.who_has.clear();
  // Unpin and drop the out-of-band copies alongside the worker replicas.
  if (datastore_ != nullptr) datastore_->release(key.to_string());
}

bool Scheduler::requeue_if_deps_lost(TaskInfo& info) {
  bool lost = false;
  for (const auto& dep : info.spec.dependencies) {
    const TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr) continue;
    if (dep_info->state == SchedulerTaskState::kMemory &&
        !dep_info->who_has.empty()) {
      continue;
    }
    lost = true;
    break;
  }
  if (!lost) return false;
  // A worker failure wiped the only replica of a dependency while this task
  // sat in the queue; dispatching it now would reference missing data. Send
  // it back to waiting and recover the lost inputs, mirroring
  // requeue_after_failure (but without charging a resubmission: the task
  // never reached a worker).
  transition(info, SchedulerTaskState::kWaiting, "lost-dependency");
  info.waiting_on = 0;
  for (const auto& dep : info.spec.dependencies) {
    TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr) continue;
    if (dep_info->state == SchedulerTaskState::kMemory) {
      if (!dep_info->who_has.empty()) continue;
      recompute_lost(*dep_info);
    }
    if (dep_info->state == SchedulerTaskState::kMemory &&
        !dep_info->who_has.empty()) {
      continue;
    }
    ++info.waiting_on;
  }
  if (info.waiting_on == 0) {
    dispatch(info, "lost-dependency");
  }
  return true;
}

void Scheduler::drain_queue() {
  std::size_t remaining = queued_.size();
  while (remaining-- > 0 && !queued_.empty()) {
    const TaskKey key = queued_.front();
    queued_.pop_front();
    TaskInfo& info = tasks_.at(key);
    if (info.state != SchedulerTaskState::kQueued) continue;
    if (requeue_if_deps_lost(info)) continue;
    Worker* worker = decide_worker(info);
    if (worker == nullptr) {
      queued_.push_back(key);
      continue;
    }
    const double saturation_limit =
        static_cast<double>(worker->nthreads()) * config_.saturation_factor;
    if (static_cast<double>(in_flight_[worker->id()]) < saturation_limit) {
      send_to_worker(info, worker, "queue-pop", /*stolen=*/false);
    } else {
      queued_.push_back(key);
    }
  }
}

void Scheduler::schedule_refetch(const TaskKey& key, WorkerId holder,
                                 Worker* requester) {
  const TaskInfo* info = tasks_.find(key);
  if (info == nullptr) return;
  DepLocation loc{key, holder, workers_.at(holder)->node(),
                  info->spec.work.output_bytes, /*oob=*/false, {}};
  if (datastore_ != nullptr) {
    if (const auto proxy = datastore_->proxy_for(key.to_string())) {
      loc.oob = true;
      loc.proxy = *proxy;
    }
  }
  engine_.schedule_after(config_.control_latency,
                         [requester, loc] { requester->refetch_dep(loc); });
}

void Scheduler::on_missing_dep(const TaskKey& key, WorkerId requester,
                               WorkerId failed_holder) {
  TaskInfo* found = tasks_.find(key);
  if (found == nullptr) return;
  TaskInfo& info = *found;
  // The failed holder's copy is unusable (evicted, lost, or its worker
  // died): stop routing fetches at it.
  info.who_has.erase(failed_holder);
  if (datastore_ != nullptr) {
    datastore_->drop_replica(key.to_string(), failed_holder);
  }
  logs_.log(LogLevel::kError, "scheduler",
            "missing dep " + key.to_string() + ": " +
                workers_.at(requester)->address() + " could not fetch from " +
                workers_.at(failed_holder)->address());
  if (requester >= workers_.size() || !worker_alive_[requester]) return;
  Worker* req = workers_.at(requester);

  // Redirect to the nearest surviving replica, if any.
  WorkerId fallback = 0;
  Duration best = std::numeric_limits<double>::infinity();
  bool found_replica = false;
  for (const WorkerId candidate : info.who_has) {
    if (!worker_alive_[candidate]) continue;
    const Duration est =
        network_.estimate(workers_.at(candidate)->node(), req->node(),
                          info.spec.work.output_bytes);
    if (est < best) {
      best = est;
      fallback = candidate;
      found_replica = true;
    }
  }
  if (found_replica) {
    schedule_refetch(key, fallback, req);
    return;
  }
  // No replica survives: park the requester until the result is
  // recomputed, and push the key through the normal lost-key path.
  pending_fetch_waiters_[key].insert(requester);
  if (info.state == SchedulerTaskState::kMemory) {
    info.who_has.clear();
    recompute_lost(info);
  }
}

void Scheduler::start_stealing_loop() {
  if (!config_.work_stealing || stopped_) return;
  finalize_topology();
  engine_.schedule_after(config_.work_stealing_interval, [this] {
    if (stopped_) return;
    stealing_round();
    start_stealing_loop();
  });
}

void Scheduler::stealing_round() {
  if (config_.foreman_autonomy && !foremen_.empty()) {
    // Pool-local balancing: each foreman's pool steals internally, cutting
    // the O(W^2) global sweep to O(pool^2) per pool. Victim choice changes,
    // so this mode is conformance-checked rather than byte-compared.
    for (const auto& foreman : foremen_) {
      if (foreman->alive()) pool_stealing_round(foreman->pool());
    }
    return;
  }
  pool_stealing_round(workers_);
}

void Scheduler::pool_stealing_round(const std::vector<Worker*>& pool) {
  begin_journal_group();
  // Idle thieves pull ready tasks from saturated victims when the task's
  // estimated compute dominates the data movement it would cause.
  for (Worker* thief : pool) {
    if (!worker_alive_[thief->id()]) continue;
    if (in_flight_[thief->id()] >= thief->nthreads()) continue;
    Worker* victim = nullptr;
    std::size_t victim_backlog = 0;
    for (Worker* candidate : pool) {
      if (candidate == thief) continue;
      if (!worker_alive_[candidate->id()]) continue;
      const std::size_t backlog = candidate->ready_count();
      if (backlog > candidate->nthreads() && backlog > victim_backlog) {
        victim = candidate;
        victim_backlog = backlog;
      }
    }
    if (victim == nullptr) continue;
    const auto stealable = victim->stealable_tasks();
    if (stealable.empty()) continue;
    // Steal from the back: newest, least likely to start next.
    const TaskKey key = stealable.back();
    TaskInfo& info = tasks_.at(key);
    const Duration transfer = transfer_cost_estimate(info, *thief);
    const Duration compute = compute_estimate(info);
    if (compute < config_.steal_cost_ratio * transfer) continue;
    if (!victim->try_release_ready_task(key)) continue;

    StealRecord steal;
    steal.key = key;
    steal.victim = victim->id();
    steal.thief = thief->id();
    steal.time = engine_.now();
    steal.estimated_transfer_cost = transfer;
    steal.estimated_compute_cost = compute;
    steals_.push_back(steal);
    if (journal_ && !recovering_) {
      json::Object o;
      o["t"] = "steal";
      o["r"] = to_json(steal);
      journal_append(json::Value(std::move(o)));
    }
    for (auto* plugin : plugins_) plugin->on_steal(steal);
    logs_.log(LogLevel::kInfo, "scheduler",
              "steal " + key.to_string() + " from " + victim->address() +
                  " to " + thief->address());

    // Re-send through the normal path (records the processing->processing
    // transition with the "steal" stimulus and the new assignment).
    send_to_worker(info, thief, "steal", /*stolen=*/true);
  }
  end_journal_group();
}

void Scheduler::heartbeat(WorkerId worker) {
  if (worker < last_heartbeat_.size()) {
    last_heartbeat_[worker] = engine_.now();
  }
}

void Scheduler::start_lease_loop() {
  if (!config_.lease_liveness || stopped_) return;
  finalize_topology();
  // Foremen run their own pool lease sweeps and report one aggregate beat
  // upstream per interval (idempotent across the loop's re-arms).
  for (const auto& foreman : foremen_) foreman->start_liveness_loops();
  engine_.schedule_after(config_.heartbeat_interval, [this] {
    if (stopped_) return;
    lease_round();
    start_lease_loop();
  });
}

void Scheduler::lease_round() {
  // Lease expiry catches workers that stopped making progress without ever
  // emitting a death notification (hung event loop, network partition). The
  // reclaim path is the same idempotent handler SSG death detection feeds,
  // so double detection is harmless.
  const Duration expiry = config_.lease_expiry();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!worker_alive_[i]) continue;
    // Pool workers' leases are delegated to their foreman (their heartbeats
    // never reach the root); the root only watches foreman beats. The
    // routing entry is reset when a dead foreman's pool is reclaimed.
    if (foreman_of_[i] != nullptr) continue;
    if (engine_.now() - last_heartbeat_[i] <= expiry) continue;
    ++lease_expirations_;
    logs_.log(LogLevel::kError, "scheduler",
              "lease expired for " + workers_[i]->address() +
                  " (no heartbeat for " +
                  std::to_string(engine_.now() - last_heartbeat_[i]) + "s)");
    on_worker_failed(static_cast<WorkerId>(i));
  }
  // Foreman liveness from missed beats only — the root must not peek at
  // foreman->alive() (a real root can't), detection comes from silence.
  for (std::size_t f = 0; f < foremen_.size(); ++f) {
    if (foreman_failed_[f]) continue;
    if (engine_.now() - last_foreman_beat_[f] <= expiry) continue;
    on_foreman_failed(static_cast<std::uint32_t>(f));
  }
}

void Scheduler::recompute_lost(TaskInfo& info) {
  if (info.state != SchedulerTaskState::kMemory) return;
  transition(info, SchedulerTaskState::kReleased, "lost-data");
  transition(info, SchedulerTaskState::kWaiting, "recompute");
  graphs_.at(info.graph).remaining += 1;
  info.waiting_on = 0;
  for (const auto& dep : info.spec.dependencies) {
    TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr) continue;
    if (dep_info->state == SchedulerTaskState::kMemory) {
      if (!dep_info->who_has.empty()) continue;
      recompute_lost(*dep_info);  // transitively lost
    }
    if (dep_info->state == SchedulerTaskState::kForgotten) {
      // A released dependency cannot be rebuilt: terminal error.
      transition(info, SchedulerTaskState::kErred, "unrecoverable");
      ++erred_;
      logs_.log(LogLevel::kError, "scheduler",
                "cannot recompute " + info.spec.key.to_string() +
                    ": dependency " + dep.to_string() + " was released");
      return;
    }
    ++info.waiting_on;
  }
  if (info.waiting_on == 0) {
    dispatch(info, "recompute");
  }
}

void Scheduler::dead_letter(TaskInfo& info, const std::string& reason) {
  if (info.state != SchedulerTaskState::kErred) {
    transition(info, SchedulerTaskState::kErred, "dead-letter");
  }
  ++erred_;
  WarningRecord warning;
  warning.kind = "dead_letter";
  warning.location = "scheduler";
  warning.time = engine_.now();
  warning.message = "task " + info.spec.key.to_string() + ": " + reason;
  warnings_.push_back(warning);
  if (journal_ && !recovering_) {
    json::Object o;
    o["t"] = "warning";
    o["r"] = to_json(warning);
    journal_append(json::Value(std::move(o)));
  }
  for (auto* plugin : plugins_) plugin->on_warning(warning);
  logs_.log(LogLevel::kError, "scheduler", "dead-letter " + warning.message);
  // Terminal failure still counts towards graph completion so runs finish;
  // dependents remain blocked forever by design.
  auto& graph = graphs_.at(info.graph);
  if (--graph.remaining == 0) graph_completed(graph);
}

void Scheduler::requeue_after_failure(TaskInfo& info) {
  if (++info.resubmissions > config_.max_resubmissions) {
    dead_letter(info, "resubmission cap (" +
                          std::to_string(config_.max_resubmissions) +
                          ") exhausted after repeated worker failures");
    return;
  }
  transition(info, SchedulerTaskState::kWaiting, "worker-failed");
  info.waiting_on = 0;
  for (const auto& dep : info.spec.dependencies) {
    TaskInfo* dep_info = tasks_.find(dep);
    if (dep_info == nullptr) continue;
    if (dep_info->state == SchedulerTaskState::kMemory) {
      if (!dep_info->who_has.empty()) continue;
      recompute_lost(*dep_info);
    }
    if (dep_info->state == SchedulerTaskState::kMemory &&
        !dep_info->who_has.empty()) {
      continue;
    }
    ++info.waiting_on;
  }
  if (info.waiting_on == 0) {
    dispatch(info, "worker-failed");
  }
}

void Scheduler::on_worker_failed(WorkerId worker) {
  if (worker >= workers_.size() || !worker_alive_[worker]) return;
  worker_alive_[worker] = false;
  Worker* dead = workers_[worker];
  in_flight_[worker] = 0;
  // Ownership transfer on worker death: entries owned by the dead shard
  // re-pin to a surviving replica; entries with no survivor are dropped
  // from the store and recomputed below like any other lost result.
  // Idempotent with Worker::kill()'s own kill_shard call — lease expiry
  // reaches here without the worker ever being told it died.
  if (datastore_ != nullptr) datastore_->kill_shard(worker);
  logs_.log(LogLevel::kError, "scheduler",
            "Remove worker " + dead->address() + " (failed)");
  for (auto* plugin : plugins_) {
    plugin->on_worker_removed(worker, dead->address(), engine_.now());
  }

  begin_journal_group();
  // Purge the dead worker's replicas everywhere (order-independent sweep).
  tasks_.for_each(
      [worker](const TaskKey&, TaskInfo& info) { info.who_has.erase(worker); });
  // Re-dispatch its in-flight tasks, then recompute results whose only
  // copies died with it (only those some dependent still needs). Both
  // sweeps bear side effects, so they run in global key order — identical
  // to the former ordered-map iteration.
  tasks_.for_each_ordered([this, dead](const TaskKey&, TaskInfo& info) {
    if (info.state == SchedulerTaskState::kProcessing &&
        info.assigned == dead) {
      info.assigned = nullptr;
      requeue_after_failure(info);
    }
  });
  tasks_.for_each_ordered([this](const TaskKey&, TaskInfo& info) {
    if (info.state == SchedulerTaskState::kMemory && info.who_has.empty() &&
        info.remaining_dependents > 0) {
      recompute_lost(info);
    }
  });
  drain_queue();
  end_journal_group();
}

void Scheduler::on_foreman_failed(std::uint32_t foreman) {
  if (foreman >= foremen_.size() || foreman_failed_[foreman]) return;
  foreman_failed_[foreman] = true;
  ++foreman_failures_;
  Foreman* dead = foremen_[foreman].get();
  dead->kill();  // idempotent when chaos already killed the process
  logs_.log(LogLevel::kError, "scheduler",
            "Remove foreman " + dead->address() +
                " (missed beats); re-homing its pool");

  // Successor: the next alive foreman in circular order, if any survives;
  // otherwise the pool reports direct-to-root.
  Foreman* successor = nullptr;
  for (std::size_t step = 1; step < foremen_.size(); ++step) {
    Foreman* candidate = foremen_[(foreman + step) % foremen_.size()].get();
    if (candidate->alive()) {
      successor = candidate;
      break;
    }
  }
  for (Worker* worker : dead->pool()) {
    const WorkerId wid = worker->id();
    if (wid >= worker_alive_.size() || !worker_alive_[wid]) continue;
    if (foreman_of_[wid] != dead) continue;  // already re-homed
    // Capture the unacked completion tail before rewiring (direct wiring
    // turns ack tracking off, which clears the retained copies).
    const auto unacked = worker->unacked_completions();
    if (successor != nullptr) {
      successor->adopt_worker(worker);
      foreman_of_[wid] = successor;
    } else {
      wire_worker_direct(worker);
      foreman_of_[wid] = nullptr;
      last_heartbeat_[wid] = engine_.now();  // fresh root lease
    }
    // Replay reports that died in the foreman's buffer. At-least-once: the
    // stale-completion guards in on_task_finished dedupe replays of reports
    // that did make it upstream before the crash.
    for (const auto& pending : unacked) {
      IntakeEvent event;
      event.kind = IntakeKind::kCompletion;
      event.key = pending.key;
      event.record = pending.record;
      event.failed = pending.failed;
      event.worker = pending.record.worker;
      enqueue_event(std::move(event));
    }
    worker->ack_completions(unacked.size());
  }
  pump_intake();

  // Assignments that died in the foreman's inbox: kProcessing tasks routed
  // to its pool whose worker never received them are re-dispatched.
  begin_journal_group();
  std::set<WorkerId> pool_ids;
  for (const Worker* worker : dead->pool()) pool_ids.insert(worker->id());
  tasks_.for_each_ordered([&](const TaskKey& key, TaskInfo& info) {
    if (info.state != SchedulerTaskState::kProcessing) return;
    if (info.assigned == nullptr) return;
    const WorkerId wid = info.assigned->id();
    if (pool_ids.count(wid) == 0) return;
    if (wid < worker_alive_.size() && worker_alive_[wid] &&
        info.assigned->has_task(key)) {
      return;  // the assignment landed and is still executing — leave it
    }
    info.assigned = nullptr;
    if (in_flight_[wid] > 0) --in_flight_[wid];
    requeue_after_failure(info);
  });
  drain_queue();
  end_journal_group();
}

void Scheduler::enable_durability(SchedulerDurability durability) {
  journal_ = std::make_unique<wal::WalWriter>(durability.dir, durability.wal);
  // Resume-aware: the journal may already hold records from a previous
  // process. Checkpoint positions index the *logical* record stream (batch
  // groups expanded); each batch frame carries the logical index of its
  // first record, so the count re-syncs across compacted prefixes.
  struct FrameMeta {
    bool batch = false;
    std::size_t base = 0;
    std::size_t count = 1;
  };
  std::vector<FrameMeta> metas;
  const wal::ReplayStats stats = wal::WalWriter::replay(
      durability.dir, [&metas](std::string_view payload) {
        const json::Value v = wire::looks_binary(payload)
                                  ? wire::decode_value(payload)
                                  : json::parse(payload);
        FrameMeta meta;
        if (v.get_string("t", "") == "batch") {
          meta.batch = true;
          meta.base = static_cast<std::size_t>(v.get_int("base", 0));
          meta.count = v.at("recs").as_array().size();
        }
        metas.push_back(meta);
      });
  std::size_t next = static_cast<std::size_t>(stats.compacted_records);
  for (const FrameMeta& meta : metas) {
    if (meta.batch) next = meta.base;
    next += meta.count;
  }
  journal_records_ = next;
  journal_frames_ =
      static_cast<std::size_t>(stats.compacted_records) + metas.size();
  durability_ = std::move(durability);
}

void Scheduler::journal_append(const json::Value& record) {
  if (config_.legacy_intake) {
    // One record per WAL frame, the pre-batching format.
    journal_->append(wire::encode_value(record));
    ++journal_frames_;
  } else if (journal_group_depth_ > 0) {
    if (journal_group_buffer_.empty()) journal_group_base_ = journal_records_;
    journal_group_buffer_.push_back(record);
  } else {
    // Outside any group, batched mode still writes a (singleton) group so
    // every frame carries its logical base — recovery re-syncs logical
    // indices from it after compaction.
    json::Object o;
    o["t"] = "batch";
    o["base"] = journal_records_;
    json::Array recs;
    recs.push_back(record);
    o["recs"] = std::move(recs);
    journal_->append(wire::encode_value(json::Value(std::move(o))));
    ++journal_frames_;
  }
  ++journal_records_;
  if (durability_->checkpoint_every > 0 && !recovering_ &&
      journal_records_ % durability_->checkpoint_every == 0) {
    checkpoint();
  }
}

void Scheduler::begin_journal_group() {
  if (journal_ == nullptr || config_.legacy_intake || recovering_) return;
  ++journal_group_depth_;
}

void Scheduler::end_journal_group() {
  if (journal_group_depth_ == 0) return;
  if (--journal_group_depth_ == 0) flush_journal_group();
}

void Scheduler::flush_journal_group() {
  if (journal_group_buffer_.empty()) return;
  json::Object o;
  o["t"] = "batch";
  o["base"] = journal_group_base_;
  o["recs"] = std::move(journal_group_buffer_);
  journal_group_buffer_ = json::Array{};
  journal_->append(wire::encode_value(json::Value(std::move(o))));
  ++journal_frames_;
}

void Scheduler::checkpoint() {
  if (!durability_) return;
  // Snapshots always land on a batch-group boundary: flush the open group
  // (mid-scope appends then open a fresh group with a new base), then make
  // sure everything the snapshot's journal position covers is readable.
  flush_journal_group();
  journal_->flush();

  json::Object o;
  o["journal_records"] = journal_records_;
  o["journal_frames"] = journal_frames_;
  o["rr_counter"] = rr_counter_;
  o["erred"] = erred_;
  json::Array prefixes;
  for (const auto& [prefix, stat] : prefix_durations_) {
    json::Object p;
    p["prefix"] = prefix;
    p["sum"] = stat.first;
    p["count"] = stat.second;
    prefixes.push_back(json::Value(std::move(p)));
  }
  o["prefix_durations"] = std::move(prefixes);
  json::Array graphs;
  for (const auto& [name, graph] : graphs_) {
    json::Object g;
    g["name"] = name;
    g["remaining"] = graph.remaining;
    g["done_fired"] = graph.done_fired;
    graphs.push_back(json::Value(std::move(g)));
  }
  o["graphs"] = std::move(graphs);
  json::Array tasks;
  tasks_.for_each_ordered([&tasks](const TaskKey& key, const TaskInfo& info) {
    json::Object t;
    t["key"] = to_json(key);
    t["graph"] = info.graph;
    t["state"] = to_string(info.state);
    t["retries"] = static_cast<std::int64_t>(info.retries);
    t["resubmissions"] = static_cast<std::int64_t>(info.resubmissions);
    t["remaining_dependents"] = info.remaining_dependents;
    json::Array who;
    for (const WorkerId holder : info.who_has) {
      who.push_back(json::Value(static_cast<std::int64_t>(holder)));
    }
    t["who_has"] = std::move(who);
    tasks.push_back(json::Value(std::move(t)));
  });
  o["tasks"] = std::move(tasks);
  json::Array queued;
  for (const TaskKey& key : queued_) queued.push_back(to_json(key));
  o["queued"] = std::move(queued);
  if (durability_->compact_on_checkpoint) {
    // Compaction deletes the journal prefix holding the spec records, so a
    // compacting checkpoint must carry every spec itself (in submission
    // order: dependent registration at recovery relies on it).
    json::Array specs;
    for (const TaskKey& key : spec_order_) {
      const TaskInfo* info = tasks_.find(key);
      if (info == nullptr) continue;
      json::Object s;
      s["graph"] = info->graph;
      s["spec"] = to_json(info->spec);
      specs.push_back(json::Value(std::move(s)));
    }
    o["specs"] = std::move(specs);
  }

  // Atomic replace: a crash mid-checkpoint leaves the previous snapshot.
  const auto dir = std::filesystem::path(durability_->dir);
  const auto tmp = dir / "checkpoint.tmp";
  const auto final_path = dir / "checkpoint.json";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << json::Value(std::move(o)).dump();
  }
  std::filesystem::rename(tmp, final_path);

  // Journal compaction bounded by checkpoint age: every record the snapshot
  // covers is redundant for recovery, so whole leading segments below that
  // watermark can go. The watermark counts physical frames — what the WAL
  // actually stores. Runs after the atomic rename — a crash in between
  // still has the old checkpoint and the uncompacted journal.
  if (durability_->compact_on_checkpoint) {
    journal_->compact(journal_frames_);
  }
}

void Scheduler::recover() {
  if (!durability_) {
    throw std::logic_error("Scheduler::recover without durability enabled");
  }
  recovering_ = true;

  // Checkpoint, if one exists, grounds the control state; the journal
  // suffix past it is replayed on top.
  json::Value cp;
  bool have_cp = false;
  const auto cp_path =
      std::filesystem::path(durability_->dir) / "checkpoint.json";
  if (std::filesystem::exists(cp_path)) {
    std::ifstream in(cp_path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    cp = json::parse(text);
    have_cp = true;
  }
  const std::size_t cp_records =
      have_cp ? static_cast<std::size_t>(cp.get_int("journal_records", 0)) : 0;

  // Journals written before the binary codec hold JSON text; the first
  // byte tells them apart, so old journals keep replaying.
  std::vector<json::Value> frames;
  const wal::ReplayStats replay_stats = wal::WalWriter::replay(
      durability_->dir, [&frames](std::string_view payload) {
        frames.push_back(wire::looks_binary(payload)
                             ? wire::decode_value(payload)
                             : json::parse(payload));
      });
  const std::size_t compacted_frames =
      static_cast<std::size_t>(replay_stats.compacted_records);

  // Expand batch groups into the logical record stream. A torn tail drops
  // whole frames, so a batch group is atomically present or absent — a
  // crash mid-group can never replay half a batch. Each group frame carries
  // the logical index of its first record ("base"), which re-syncs logical
  // positions after compaction; bare frames (legacy journals) advance the
  // running index by one.
  std::vector<json::Value> records;
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t next_logical = compacted_frames;
  std::size_t first_logical = npos;
  for (json::Value& frame : frames) {
    if (frame.get_string("t", "") == "batch") {
      next_logical = static_cast<std::size_t>(
          frame.get_int("base", static_cast<std::int64_t>(next_logical)));
      json::Array& recs = frame["recs"].as_array();
      if (first_logical == npos && !recs.empty()) first_logical = next_logical;
      for (json::Value& rec : recs) {
        records.push_back(std::move(rec));
        ++next_logical;
      }
    } else {
      if (first_logical == npos) first_logical = next_logical;
      records.push_back(std::move(frame));
      ++next_logical;
    }
  }
  journal_frames_ = compacted_frames + frames.size();
  journal_records_ = records.empty()
                         ? (have_cp ? std::max(cp_records, compacted_frames)
                                    : compacted_frames)
                         : next_logical;
  if (first_logical == npos) first_logical = journal_records_;
  if (cp_records > journal_records_) {
    throw wal::WalError("scheduler checkpoint is ahead of the journal (" +
                        std::to_string(cp_records) + " > " +
                        std::to_string(journal_records_) + " records)");
  }
  if (cp_records < first_logical) {
    throw wal::WalError("journal compacted past the checkpoint (" +
                        std::to_string(first_logical) + " > " +
                        std::to_string(cp_records) +
                        " records): specs before the snapshot are "
                        "unrecoverable");
  }

  // Pass 1 (surviving journal): record vectors are full-history provenance,
  // and task specs / dependents are structural, so both rebuild from the
  // oldest surviving record. A compacting checkpoint carries the specs its
  // compacted prefix used to hold — load those first (they precede every
  // surviving journal spec in submission order).
  std::vector<TaskKey> spec_order;
  if (have_cp && cp.contains("specs")) {
    for (const json::Value& s : cp.at("specs").as_array()) {
      TaskSpec spec = spec_from_json(s.at("spec"));
      const TaskKey key = spec.key;
      TaskInfo& info = *tasks_.try_emplace(key).first;
      info.spec = std::move(spec);
      info.graph = s.get_string("graph", "");
      spec_order.push_back(key);
    }
  }
  for (const json::Value& rec : records) {
    const std::string type = rec.get_string("t", "");
    if (type == "graph") {
      const std::string name = rec.get_string("name", "");
      GraphInfo& graph = graphs_[name];
      graph.name = name;
    } else if (type == "spec") {
      TaskSpec spec = spec_from_json(rec.at("spec"));
      const TaskKey key = spec.key;
      if (tasks_.contains(key)) continue;  // already in checkpoint specs
      TaskInfo& info = *tasks_.try_emplace(key).first;
      info.spec = std::move(spec);
      info.graph = rec.get_string("graph", "");
      spec_order.push_back(key);
    } else if (type == "transition") {
      transitions_.push_back(transition_from_json(rec.at("r")));
    } else if (type == "task") {
      task_records_.push_back(task_from_json(rec.at("r")));
    } else if (type == "steal") {
      steals_.push_back(steal_from_json(rec.at("r")));
    } else if (type == "warning") {
      warnings_.push_back(warning_from_json(rec.at("r")));
    }
  }
  // Dependent registration follows journal order, which is submission
  // order, so release refcount replay below sees the original ordering.
  for (const TaskKey& key : spec_order) {
    TaskInfo& info = tasks_.at(key);
    for (const TaskKey& dep : info.spec.dependencies) {
      tasks_.at(dep).dependents.push_back(key);
    }
  }
  spec_order_ = std::move(spec_order);

  // Apply the checkpointed control state.
  std::vector<TaskKey> queued_cp;
  if (have_cp) {
    rr_counter_ = static_cast<std::size_t>(cp.get_int("rr_counter", 0));
    erred_ = static_cast<std::uint64_t>(cp.get_int("erred", 0));
    if (cp.contains("prefix_durations")) {
      for (const json::Value& p : cp.at("prefix_durations").as_array()) {
        prefix_durations_[p.get_string("prefix", "")] = {
            p.get_double("sum", 0.0),
            static_cast<std::uint64_t>(p.get_int("count", 0))};
      }
    }
    if (cp.contains("graphs")) {
      for (const json::Value& g : cp.at("graphs").as_array()) {
        GraphInfo& graph = graphs_[g.get_string("name", "")];
        graph.name = g.get_string("name", "");
        graph.remaining = static_cast<std::size_t>(g.get_int("remaining", 0));
        graph.done_fired = g.get_bool("done_fired", false);
      }
    }
    if (cp.contains("tasks")) {
      for (const json::Value& t : cp.at("tasks").as_array()) {
        const TaskKey key = key_from_json(t.at("key"));
        TaskInfo* info = tasks_.find(key);
        if (info == nullptr) continue;
        info->state =
            scheduler_state_from_string(t.get_string("state", "released"));
        info->retries = static_cast<std::uint32_t>(t.get_int("retries", 0));
        info->resubmissions =
            static_cast<std::uint32_t>(t.get_int("resubmissions", 0));
        info->remaining_dependents =
            static_cast<std::size_t>(t.get_int("remaining_dependents", 0));
      }
    }
    if (cp.contains("queued")) {
      for (const json::Value& q : cp.at("queued").as_array()) {
        queued_cp.push_back(key_from_json(q));
      }
    }
  }

  // Pass 2 (journal suffix past the checkpoint): replay control-state
  // deltas — states from transitions, counters from their stimuli,
  // release refcounts from spec registration and task completion.
  // cp_records indexes the logical log; `records` starts at first_logical.
  std::vector<TaskKey> queued_post;
  for (std::size_t i = cp_records - first_logical; i < records.size(); ++i) {
    const json::Value& rec = records[i];
    const std::string type = rec.get_string("t", "");
    if (type == "transition") {
      const TransitionRecord tr = transition_from_json(rec.at("r"));
      TaskInfo* found = tasks_.find(tr.key);
      if (found == nullptr) continue;
      TaskInfo& info = *found;
      info.state = scheduler_state_from_string(tr.to_state);
      if (tr.stimulus == "retry") ++info.retries;
      if (tr.stimulus == "worker-failed") ++info.resubmissions;
      if (tr.stimulus == "unrecoverable") ++erred_;
      if (info.state == SchedulerTaskState::kQueued) {
        queued_post.push_back(tr.key);
      }
      if (info.state == SchedulerTaskState::kMemory &&
          tr.stimulus == "task-finished") {
        for (const TaskKey& dep : info.spec.dependencies) {
          TaskInfo* dep_info = tasks_.find(dep);
          if (dep_info != nullptr && dep_info->remaining_dependents > 0) {
            --dep_info->remaining_dependents;
          }
        }
      }
    } else if (type == "spec") {
      const TaskKey key = key_from_json(rec.at("spec").at("key"));
      for (const TaskKey& dep : tasks_.at(key).spec.dependencies) {
        TaskInfo* dep_info = tasks_.find(dep);
        if (dep_info != nullptr) ++dep_info->remaining_dependents;
      }
    } else if (type == "task") {
      const TaskRecord tr = task_from_json(rec.at("r"));
      auto& [sum, count] = prefix_durations_[tr.key.prefix()];
      sum += tr.end_time - tr.start_time;
      ++count;
    } else if (type == "warning") {
      if (rec.at("r").get_string("kind", "") == "dead_letter") ++erred_;
    }
  }

  // Reconcile against the workers that survived the crash: they are the
  // ground truth for replica placement and still-executing tasks.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    worker_alive_[i] = workers_[i]->alive();
    in_flight_[i] = 0;
    last_heartbeat_[i] = engine_.now();  // fresh leases after restart
  }
  for (TimePoint& beat : last_foreman_beat_) beat = engine_.now();
  std::vector<TaskKey> orphaned;
  tasks_.for_each_ordered([&](const TaskKey& key, TaskInfo& info) {
    info.assigned = nullptr;
    info.who_has.clear();
    if (info.state == SchedulerTaskState::kMemory) {
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (worker_alive_[i] && workers_[i]->has_data(key)) {
          info.who_has.insert(static_cast<WorkerId>(i));
        }
      }
    } else if (info.state == SchedulerTaskState::kProcessing) {
      // Re-adopt the task if a surviving worker is still executing it;
      // otherwise it died with its worker (or the assignment was lost with
      // our process) and must be re-dispatched.
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (worker_alive_[i] && workers_[i]->has_task(key)) {
          info.assigned = workers_[i];
          ++in_flight_[i];
          break;
        }
      }
      if (info.assigned == nullptr) orphaned.push_back(key);
    }
  });
  tasks_.for_each_ordered([this](const TaskKey&, TaskInfo& info) {
    if (info.state != SchedulerTaskState::kWaiting) return;
    info.waiting_on = 0;
    for (const TaskKey& dep : info.spec.dependencies) {
      const TaskInfo* dep_info = tasks_.find(dep);
      if (dep_info == nullptr) continue;
      if (dep_info->state == SchedulerTaskState::kMemory &&
          !dep_info->who_has.empty()) {
        continue;
      }
      ++info.waiting_on;
    }
  });
  // Queue order: checkpointed order first, then post-checkpoint arrivals,
  // keeping only tasks still queued (and each at most once).
  queued_.clear();
  std::set<TaskKey> enqueued;
  const auto enqueue_if_current = [this, &enqueued](const TaskKey& key) {
    const TaskInfo* info = tasks_.find(key);
    if (info == nullptr) return;
    if (info->state != SchedulerTaskState::kQueued) return;
    if (!enqueued.insert(key).second) return;
    queued_.push_back(key);
  };
  for (const TaskKey& key : queued_cp) enqueue_if_current(key);
  for (const TaskKey& key : queued_post) enqueue_if_current(key);
  // Graph accounting from first principles: every task not terminal counts.
  for (auto& [name, graph] : graphs_) graph.remaining = 0;
  tasks_.for_each([this](const TaskKey&, const TaskInfo& info) {
    if (info.state != SchedulerTaskState::kMemory &&
        info.state != SchedulerTaskState::kErred &&
        info.state != SchedulerTaskState::kReleased &&
        info.state != SchedulerTaskState::kForgotten) {
      ++graphs_.at(info.graph).remaining;
    }
  });
  for (auto& [name, graph] : graphs_) {
    // A drained graph completed before the crash; its on_done already fired
    // in the previous process, so never re-fire it here.
    if (graph.remaining == 0) graph.done_fired = true;
  }

  recovering_ = false;
  ++recoveries_;
  logs_.log(LogLevel::kInfo, "scheduler",
            "recovered from " + durability_->dir + ": " +
                std::to_string(records.size()) + " journal records (" +
                std::to_string(cp_records) + " checkpointed), " +
                std::to_string(tasks_.size()) + " tasks, " +
                std::to_string(orphaned.size()) + " orphaned");

  // Post-recovery fixups run through the normal (journaled, plugin-visible)
  // paths: these are new decisions of the restarted scheduler, not replay.
  for (const TaskKey& key : orphaned) {
    TaskInfo& info = tasks_.at(key);
    if (info.state != SchedulerTaskState::kProcessing) continue;
    transition(info, SchedulerTaskState::kWaiting, "scheduler-restart");
    info.waiting_on = 0;
    for (const TaskKey& dep : info.spec.dependencies) {
      TaskInfo* dep_info = tasks_.find(dep);
      if (dep_info == nullptr) continue;
      if (dep_info->state == SchedulerTaskState::kMemory) {
        if (!dep_info->who_has.empty()) continue;
        recompute_lost(*dep_info);
      }
      if (dep_info->state == SchedulerTaskState::kMemory &&
          !dep_info->who_has.empty()) {
        continue;
      }
      ++info.waiting_on;
    }
    if (info.waiting_on == 0) dispatch(info, "scheduler-restart");
  }
  tasks_.for_each_ordered([this](const TaskKey&, TaskInfo& info) {
    if (info.state == SchedulerTaskState::kMemory && info.who_has.empty() &&
        info.remaining_dependents > 0) {
      recompute_lost(info);
    }
  });
  // Proxy fetches whose requester was parked as a waiter died with our
  // process's waiter table. Re-register every stalled fetch whose data is
  // not available; fetches with an alive replica are left alone — their
  // transfer events survived the scheduler restart and will complete.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!worker_alive_[i]) continue;
    for (const TaskKey& key : workers_[i]->pending_fetch_keys()) {
      TaskInfo* info = tasks_.find(key);
      if (info == nullptr) continue;
      if (info->state == SchedulerTaskState::kMemory &&
          !info->who_has.empty()) {
        continue;
      }
      pending_fetch_waiters_[key].insert(static_cast<WorkerId>(i));
      if (info->state == SchedulerTaskState::kMemory) recompute_lost(*info);
    }
  }
  tasks_.for_each_ordered([this](const TaskKey&, TaskInfo& info) {
    if (info.state == SchedulerTaskState::kWaiting && info.waiting_on == 0) {
      dispatch(info, "scheduler-restart");
    }
  });
  drain_queue();
  checkpoint();
}

void Scheduler::crash_and_recover() {
  if (!journal_) {
    throw std::logic_error("Scheduler::crash_and_recover requires durability");
  }
  logs_.log(LogLevel::kError, "scheduler",
            "simulated process crash (restarting from " + durability_->dir +
                ")");
  // What a real crash would leave on disk: whatever the journal had pushed
  // to the OS. flush() models the page cache surviving the process. An open
  // batch group (records buffered in this process's memory) dies with it —
  // recovery sees the group atomically absent.
  journal_->flush();
  tasks_.clear();
  graphs_.clear();
  queued_.clear();
  transitions_.clear();
  task_records_.clear();
  steals_.clear();
  warnings_.clear();
  prefix_durations_.clear();
  erred_ = 0;
  rr_counter_ = 0;
  journal_records_ = 0;
  journal_frames_ = 0;
  journal_group_depth_ = 0;
  journal_group_buffer_ = json::Array{};
  intake_.clear();
  spec_order_.clear();
  pending_fetch_waiters_.clear();
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
  recover();
}

void Scheduler::set_graph_done(const std::string& graph, GraphDoneFn on_done) {
  const auto it = graphs_.find(graph);
  if (it == graphs_.end()) {
    throw std::invalid_argument("set_graph_done: unknown graph " + graph);
  }
  if (it->second.done_fired) {
    if (on_done) on_done(graph);
    return;
  }
  it->second.on_done = std::move(on_done);
}

bool Scheduler::in_memory(const TaskKey& key) const {
  const TaskInfo* info = tasks_.find(key);
  return info != nullptr && info->state == SchedulerTaskState::kMemory;
}

std::size_t Scheduler::tasks_in_memory() const {
  std::size_t count = 0;
  tasks_.for_each([&count](const TaskKey&, const TaskInfo& info) {
    if (info.state == SchedulerTaskState::kMemory) ++count;
  });
  return count;
}

}  // namespace recup::dtr
