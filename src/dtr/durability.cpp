#include "dtr/durability.hpp"

#include <stdexcept>

namespace recup::dtr {

namespace {

json::Value io_to_json(const IoOpSpec& op) {
  json::Object o;
  o["path"] = op.path;
  o["offset"] = op.offset;
  o["length"] = op.length;
  o["is_write"] = op.is_write;
  return json::Value(std::move(o));
}

IoOpSpec io_from_json(const json::Value& v) {
  IoOpSpec op;
  op.path = v.get_string("path", "");
  op.offset = static_cast<std::uint64_t>(v.get_int("offset", 0));
  op.length = static_cast<std::uint64_t>(v.get_int("length", 0));
  op.is_write = v.get_bool("is_write", false);
  return op;
}

json::Value kernel_to_json(const gpuprof::KernelSpec& kernel) {
  json::Object o;
  o["name"] = kernel.name;
  o["duration"] = kernel.duration;
  o["launches"] = static_cast<std::int64_t>(kernel.launches);
  return json::Value(std::move(o));
}

gpuprof::KernelSpec kernel_from_json(const json::Value& v) {
  gpuprof::KernelSpec kernel;
  kernel.name = v.get_string("name", "");
  kernel.duration = v.get_double("duration", 0.0);
  kernel.launches = static_cast<std::uint32_t>(v.get_int("launches", 1));
  return kernel;
}

}  // namespace

json::Value to_json(const TaskKey& key) {
  json::Object o;
  o["group"] = key.group;
  o["index"] = key.index;
  return json::Value(std::move(o));
}

TaskKey key_from_json(const json::Value& v) {
  TaskKey key;
  key.group = v.get_string("group", "");
  key.index = v.get_int("index", -1);
  return key;
}

json::Value to_json(const TaskSpec& spec) {
  json::Object o;
  o["key"] = to_json(spec.key);
  if (!spec.dependencies.empty()) {
    json::Array deps;
    for (const TaskKey& dep : spec.dependencies) deps.push_back(to_json(dep));
    o["dependencies"] = std::move(deps);
  }
  o["priority"] = spec.priority;
  json::Object work;
  work["compute"] = spec.work.compute;
  work["compute_noise_sigma"] = spec.work.compute_noise_sigma;
  work["output_bytes"] = spec.work.output_bytes;
  work["scratch_bytes"] = spec.work.scratch_bytes;
  work["blocks_event_loop"] = spec.work.blocks_event_loop;
  work["failure_probability"] = spec.work.failure_probability;
  work["releasable"] = spec.work.releasable;
  if (!spec.work.reads.empty()) {
    json::Array reads;
    for (const IoOpSpec& op : spec.work.reads) reads.push_back(io_to_json(op));
    work["reads"] = std::move(reads);
  }
  if (!spec.work.writes.empty()) {
    json::Array writes;
    for (const IoOpSpec& op : spec.work.writes) {
      writes.push_back(io_to_json(op));
    }
    work["writes"] = std::move(writes);
  }
  if (!spec.work.kernels.empty()) {
    json::Array kernels;
    for (const gpuprof::KernelSpec& kernel : spec.work.kernels) {
      kernels.push_back(kernel_to_json(kernel));
    }
    work["kernels"] = std::move(kernels);
  }
  o["work"] = json::Value(std::move(work));
  return json::Value(std::move(o));
}

TaskSpec spec_from_json(const json::Value& v) {
  TaskSpec spec;
  spec.key = key_from_json(v.at("key"));
  if (v.contains("dependencies")) {
    for (const json::Value& dep : v.at("dependencies").as_array()) {
      spec.dependencies.push_back(key_from_json(dep));
    }
  }
  spec.priority = static_cast<int>(v.get_int("priority", 0));
  const json::Value& work = v.at("work");
  spec.work.compute = work.get_double("compute", 0.0);
  spec.work.compute_noise_sigma =
      work.get_double("compute_noise_sigma", 0.08);
  spec.work.output_bytes =
      static_cast<std::uint64_t>(work.get_int("output_bytes", 0));
  spec.work.scratch_bytes =
      static_cast<std::uint64_t>(work.get_int("scratch_bytes", 0));
  spec.work.blocks_event_loop = work.get_bool("blocks_event_loop", false);
  spec.work.failure_probability =
      work.get_double("failure_probability", 0.0);
  spec.work.releasable = work.get_bool("releasable", false);
  if (work.contains("reads")) {
    for (const json::Value& op : work.at("reads").as_array()) {
      spec.work.reads.push_back(io_from_json(op));
    }
  }
  if (work.contains("writes")) {
    for (const json::Value& op : work.at("writes").as_array()) {
      spec.work.writes.push_back(io_from_json(op));
    }
  }
  if (work.contains("kernels")) {
    for (const json::Value& kernel : work.at("kernels").as_array()) {
      spec.work.kernels.push_back(kernel_from_json(kernel));
    }
  }
  return spec;
}

SchedulerTaskState scheduler_state_from_string(const std::string& name) {
  static constexpr SchedulerTaskState kStates[] = {
      SchedulerTaskState::kReleased,  SchedulerTaskState::kWaiting,
      SchedulerTaskState::kQueued,    SchedulerTaskState::kNoWorker,
      SchedulerTaskState::kProcessing, SchedulerTaskState::kMemory,
      SchedulerTaskState::kErred,     SchedulerTaskState::kForgotten};
  for (const SchedulerTaskState state : kStates) {
    if (name == to_string(state)) return state;
  }
  throw std::invalid_argument("unknown scheduler task state: " + name);
}

}  // namespace recup::dtr
