#include "dtr/recorder.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/strings.hpp"

namespace recup::dtr {
namespace fs = std::filesystem;
namespace {

std::string num(double v) { return format_double(v, 9); }

void write_text(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << text;
}

std::string read_text(const fs::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

void write_run_dir(const RunData& run, const std::string& dir) {
  fs::create_directories(dir);
  const fs::path base(dir);

  json::Object meta;
  meta["workflow"] = run.meta.workflow;
  meta["seed"] = run.meta.seed;
  meta["run_index"] = static_cast<std::int64_t>(run.meta.run_index);
  meta["wall_start"] = run.meta.wall_start;
  meta["wall_end"] = run.meta.wall_end;
  meta["coordination_time"] = run.coordination_time;
  meta["graph_count"] = run.graph_count;
  meta["job"] = run.job.to_json();
  write_text(base / "meta.json", json::Value(std::move(meta)).dump(2));
  write_text(base / "environment.json", run.environment.dump(2));

  {
    std::ostringstream out;
    out << "key,graph,prefix,worker,worker_address,thread_id,lane,"
           "received_time,ready_time,start_time,end_time,compute_time,"
           "io_time,gpu_time,output_bytes,bytes_read,bytes_written,retries,"
           "stolen,dependencies,bytes_oob,bytes_inline\n";
    for (const auto& t : run.tasks) {
      std::string deps;
      for (const auto& dep : t.dependencies) {
        if (!deps.empty()) deps += '|';
        deps += dep.group + ":" + std::to_string(dep.index);
      }
      out << csv_row({t.key.to_string(), t.graph, t.prefix,
                      std::to_string(t.worker), t.worker_address,
                      std::to_string(t.thread_id), std::to_string(t.lane),
                      num(t.received_time), num(t.ready_time),
                      num(t.start_time), num(t.end_time), num(t.compute_time),
                      num(t.io_time), num(t.gpu_time),
                      std::to_string(t.output_bytes),
                      std::to_string(t.bytes_read),
                      std::to_string(t.bytes_written),
                      std::to_string(t.retries), t.stolen ? "1" : "0", deps,
                      std::to_string(t.bytes_oob),
                      std::to_string(t.bytes_inline)})
          << "\n";
    }
    write_text(base / "tasks.csv", out.str());
  }

  {
    std::ostringstream out;
    out << "key,graph,from,to,stimulus,location,time\n";
    for (const auto& t : run.transitions) {
      out << csv_row({t.key.to_string(), t.graph, t.from_state, t.to_state,
                      t.stimulus, t.location, num(t.time)})
          << "\n";
    }
    write_text(base / "transitions.csv", out.str());
  }

  {
    std::ostringstream out;
    out << "key,source,destination,source_address,destination_address,bytes,"
           "start,end,cross_node,cold_connection,oob\n";
    for (const auto& c : run.comms) {
      out << csv_row({c.key.to_string(), std::to_string(c.source),
                      std::to_string(c.destination), c.source_address,
                      c.destination_address, std::to_string(c.bytes),
                      num(c.start), num(c.end), c.cross_node ? "1" : "0",
                      c.cold_connection ? "1" : "0", c.oob ? "1" : "0"})
          << "\n";
    }
    write_text(base / "comms.csv", out.str());
  }

  {
    std::ostringstream out;
    out << "kind,location,time,blocked_for,message\n";
    for (const auto& w : run.warnings) {
      out << csv_row({w.kind, w.location, num(w.time), num(w.blocked_for),
                      w.message})
          << "\n";
    }
    write_text(base / "warnings.csv", out.str());
  }

  {
    std::ostringstream out;
    out << "key,victim,thief,time,estimated_transfer_cost,"
           "estimated_compute_cost\n";
    for (const auto& s : run.steals) {
      out << csv_row({s.key.to_string(), std::to_string(s.victim),
                      std::to_string(s.thief), num(s.time),
                      num(s.estimated_transfer_cost),
                      num(s.estimated_compute_cost)})
          << "\n";
    }
    write_text(base / "steals.csv", out.str());
  }

  {
    std::ostringstream out;
    out << "time,level,component,message\n";
    for (const auto& l : run.logs) {
      out << csv_row({num(l.time), log_level_name(l.level), l.component,
                      l.message})
          << "\n";
    }
    write_text(base / "logs.csv", out.str());
  }

  {
    std::ostringstream out;
    out << "node,device,kernel,thread_id,queued,start,end\n";
    for (const auto& k : run.kernels) {
      out << csv_row({std::to_string(k.node), std::to_string(k.device),
                      k.kernel_name, std::to_string(k.thread_id),
                      num(k.queued), num(k.start), num(k.end)})
          << "\n";
    }
    write_text(base / "kernels.csv", out.str());
  }

  {
    std::ostringstream out;
    out << "node,time,cpu,memory,network_transfers,pfs_ops\n";
    for (const auto& s : run.system_metrics) {
      out << csv_row({std::to_string(s.node), num(s.time),
                      num(s.cpu_utilization), std::to_string(s.memory_bytes),
                      std::to_string(s.network_transfers),
                      std::to_string(s.pfs_ops)})
          << "\n";
    }
    write_text(base / "system_metrics.csv", out.str());
  }

  for (std::size_t i = 0; i < run.darshan_logs.size(); ++i) {
    darshan::write_log(
        (base / ("worker-" + std::to_string(i) + ".rdshan")).string(),
        run.darshan_logs[i]);
  }
}

namespace {

TaskKey parse_key(const std::string& text) {
  // Formats: "group" or "('group', index)".
  if (text.size() > 4 && text.front() == '(') {
    const std::size_t quote_end = text.rfind('\'');
    const std::size_t comma = text.rfind(", ");
    if (quote_end == std::string::npos || comma == std::string::npos) {
      throw std::invalid_argument("bad task key: " + text);
    }
    TaskKey key;
    key.group = text.substr(2, quote_end - 2);
    key.index = std::stoll(text.substr(comma + 2,
                                       text.size() - comma - 3));
    return key;
  }
  return TaskKey{text, -1};
}

}  // namespace

RunData read_run_dir(const std::string& dir) {
  const fs::path base(dir);
  RunData run;

  const json::Value meta = json::parse(read_text(base / "meta.json"));
  run.meta.workflow = meta.get_string("workflow", "");
  run.meta.seed = static_cast<std::uint64_t>(meta.get_int("seed", 0));
  run.meta.run_index =
      static_cast<std::uint32_t>(meta.get_int("run_index", 0));
  run.meta.wall_start = meta.get_double("wall_start", 0.0);
  run.meta.wall_end = meta.get_double("wall_end", 0.0);
  run.coordination_time = meta.get_double("coordination_time", 0.0);
  run.graph_count =
      static_cast<std::size_t>(meta.get_int("graph_count", 0));
  if (meta.contains("job")) {
    const auto& job = meta.at("job");
    run.job.job_id = job.get_string("job_id", run.job.job_id);
    run.job.nodes = static_cast<std::size_t>(
        job.get_int("nodes", static_cast<std::int64_t>(run.job.nodes)));
    run.job.workers_per_node = static_cast<std::size_t>(job.get_int(
        "workers_per_node",
        static_cast<std::int64_t>(run.job.workers_per_node)));
    run.job.threads_per_worker = static_cast<std::size_t>(job.get_int(
        "threads_per_worker",
        static_cast<std::int64_t>(run.job.threads_per_worker)));
  }
  run.environment = json::parse(read_text(base / "environment.json"));

  const auto load_rows = [&](const char* name) {
    auto rows = csv_parse(read_text(base / name));
    if (!rows.empty()) rows.erase(rows.begin());  // header
    return rows;
  };

  for (const auto& r : load_rows("tasks.csv")) {
    TaskRecord t;
    t.key = parse_key(r.at(0));
    t.graph = r.at(1);
    t.prefix = r.at(2);
    t.worker = static_cast<WorkerId>(std::stoul(r.at(3)));
    t.worker_address = r.at(4);
    t.thread_id = std::stoull(r.at(5));
    t.lane = static_cast<std::uint32_t>(std::stoul(r.at(6)));
    t.received_time = std::stod(r.at(7));
    t.ready_time = std::stod(r.at(8));
    t.start_time = std::stod(r.at(9));
    t.end_time = std::stod(r.at(10));
    t.compute_time = std::stod(r.at(11));
    t.io_time = std::stod(r.at(12));
    t.gpu_time = std::stod(r.at(13));
    t.output_bytes = std::stoull(r.at(14));
    t.bytes_read = std::stoull(r.at(15));
    t.bytes_written = std::stoull(r.at(16));
    t.retries = static_cast<std::uint32_t>(std::stoul(r.at(17)));
    t.stolen = r.at(18) == "1";
    if (r.size() > 19 && !r.at(19).empty()) {
      for (const auto& token : split(r.at(19), '|')) {
        const std::size_t colon = token.rfind(':');
        if (colon == std::string::npos) continue;
        TaskKey dep;
        dep.group = token.substr(0, colon);
        dep.index = std::stoll(token.substr(colon + 1));
        t.dependencies.push_back(std::move(dep));
      }
    }
    // Appended after `dependencies`; absent in pre-datastore exports.
    if (r.size() > 20) t.bytes_oob = std::stoull(r.at(20));
    if (r.size() > 21) t.bytes_inline = std::stoull(r.at(21));
    run.tasks.push_back(std::move(t));
  }

  for (const auto& r : load_rows("transitions.csv")) {
    TransitionRecord t;
    t.key = parse_key(r.at(0));
    t.graph = r.at(1);
    t.from_state = r.at(2);
    t.to_state = r.at(3);
    t.stimulus = r.at(4);
    t.location = r.at(5);
    t.time = std::stod(r.at(6));
    run.transitions.push_back(std::move(t));
  }

  for (const auto& r : load_rows("comms.csv")) {
    CommRecord c;
    c.key = parse_key(r.at(0));
    c.source = static_cast<WorkerId>(std::stoul(r.at(1)));
    c.destination = static_cast<WorkerId>(std::stoul(r.at(2)));
    c.source_address = r.at(3);
    c.destination_address = r.at(4);
    c.bytes = std::stoull(r.at(5));
    c.start = std::stod(r.at(6));
    c.end = std::stod(r.at(7));
    c.cross_node = r.at(8) == "1";
    c.cold_connection = r.at(9) == "1";
    if (r.size() > 10) c.oob = r.at(10) == "1";
    run.comms.push_back(std::move(c));
  }

  for (const auto& r : load_rows("warnings.csv")) {
    WarningRecord w;
    w.kind = r.at(0);
    w.location = r.at(1);
    w.time = std::stod(r.at(2));
    w.blocked_for = std::stod(r.at(3));
    w.message = r.at(4);
    run.warnings.push_back(std::move(w));
  }

  for (const auto& r : load_rows("steals.csv")) {
    StealRecord s;
    s.key = parse_key(r.at(0));
    s.victim = static_cast<WorkerId>(std::stoul(r.at(1)));
    s.thief = static_cast<WorkerId>(std::stoul(r.at(2)));
    s.time = std::stod(r.at(3));
    s.estimated_transfer_cost = std::stod(r.at(4));
    s.estimated_compute_cost = std::stod(r.at(5));
    run.steals.push_back(std::move(s));
  }

  for (const auto& r : load_rows("logs.csv")) {
    LogRecord l;
    l.time = std::stod(r.at(0));
    const std::string& level = r.at(1);
    l.level = level == "DEBUG"     ? LogLevel::kDebug
              : level == "WARNING" ? LogLevel::kWarning
              : level == "ERROR"   ? LogLevel::kError
                                   : LogLevel::kInfo;
    l.component = r.at(2);
    l.message = r.at(3);
    run.logs.push_back(std::move(l));
  }

  if (fs::exists(base / "kernels.csv")) {
    for (const auto& r : load_rows("kernels.csv")) {
      gpuprof::KernelRecord k;
      k.node = static_cast<platform::NodeId>(std::stoul(r.at(0)));
      k.device = static_cast<gpuprof::DeviceIndex>(std::stoul(r.at(1)));
      k.kernel_name = r.at(2);
      k.thread_id = std::stoull(r.at(3));
      k.queued = std::stod(r.at(4));
      k.start = std::stod(r.at(5));
      k.end = std::stod(r.at(6));
      run.kernels.push_back(std::move(k));
    }
  }

  if (fs::exists(base / "system_metrics.csv")) {
    for (const auto& r : load_rows("system_metrics.csv")) {
      ldms::MetricSample s;
      s.node = static_cast<std::uint32_t>(std::stoul(r.at(0)));
      s.time = std::stod(r.at(1));
      s.cpu_utilization = std::stod(r.at(2));
      s.memory_bytes = std::stoull(r.at(3));
      s.network_transfers = std::stoull(r.at(4));
      s.pfs_ops = std::stoull(r.at(5));
      run.system_metrics.push_back(s);
    }
  }

  for (const auto& entry : fs::directory_iterator(base)) {
    if (entry.path().extension() == ".rdshan") {
      run.darshan_logs.push_back(darshan::read_log(entry.path().string()));
    }
  }
  return run;
}

}  // namespace recup::dtr
