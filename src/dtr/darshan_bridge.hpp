// Online Darshan-to-Mofka bridge — the paper's stated future work: "We will
// shift to capturing Darshan records and pushing them to Mofka at runtime to
// have a fully online system."
//
// The bridge runs on the virtual clock: every `interval` it snapshots each
// worker's Darshan runtime and pushes *changed* POSIX records (cumulative
// counters) and *new* DXT segments to the `darshan_records` topic. A
// consumer can reassemble LogFiles identical in content to the post-hoc
// collection path, or process them in situ while the workflow runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "darshan/log_format.hpp"
#include "dtr/worker.hpp"
#include "mofka/broker.hpp"
#include "mofka/producer.hpp"
#include "sim/engine.hpp"

namespace recup::dtr {

struct DarshanBridgeConfig {
  Duration interval = 1.0;  ///< snapshot period on the virtual clock
  mofka::ProducerConfig producer{/*batch_size=*/64,
                                 std::chrono::milliseconds(5),
                                 /*background_flush=*/false};
};

class DarshanMofkaBridge {
 public:
  static constexpr const char* kTopic = "darshan_records";

  DarshanMofkaBridge(sim::Engine& engine, mofka::Broker& broker,
                     std::vector<Worker*> workers,
                     DarshanBridgeConfig config = {});

  /// Starts the periodic snapshot loop; stops when `stop()` is called.
  void start();
  /// Pushes a final snapshot and stops the loop.
  void stop();

  [[nodiscard]] std::uint64_t events_pushed() const { return pushed_; }
  [[nodiscard]] std::uint64_t snapshots_taken() const { return snapshots_; }

 private:
  void snapshot();
  void tick();

  sim::Engine& engine_;
  std::vector<Worker*> workers_;
  DarshanBridgeConfig config_;
  mofka::Producer producer_;
  // Last pushed cumulative op count per (worker, file): detects changes.
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> posix_seen_;
  // Segments already pushed per (worker, file).
  std::map<std::pair<std::uint32_t, std::string>, std::size_t> dxt_seen_;
  std::uint64_t pushed_ = 0;
  std::uint64_t snapshots_ = 0;
  bool running_ = false;
};

/// Consumer side: reassembles one LogFile per worker process from the
/// streamed records; content matches the post-hoc collection path.
std::vector<darshan::LogFile> read_darshan_topic(
    mofka::Broker& broker, const std::string& consumer_group = "perfrecup");

}  // namespace recup::dtr
