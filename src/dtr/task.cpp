#include "dtr/task.hpp"

#include <charconv>
#include <stdexcept>
#include <unordered_set>

namespace recup::dtr {

std::string TaskKey::to_string() const {
  if (index < 0) return group;
  // Single-allocation format; this runs once per row when views
  // materialize, so the operator+ temporary chain was measurable.
  char digits[24];
  const auto res = std::to_chars(digits, digits + sizeof(digits), index);
  std::string out;
  out.reserve(group.size() + 8 + static_cast<std::size_t>(res.ptr - digits));
  out += "('";
  out += group;
  out += "', ";
  out.append(digits, res.ptr);
  out += ')';
  return out;
}

std::string TaskKey::prefix() const {
  // The hash token is the final dash-separated component when it looks like
  // a hex token; otherwise the whole group is the prefix (manual task names).
  const std::size_t pos = group.rfind('-');
  if (pos == std::string::npos || pos + 1 >= group.size()) return group;
  const std::string tail = group.substr(pos + 1);
  for (const char c : tail) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return group;
  }
  return group.substr(0, pos);
}

TaskGraph::TaskGraph(std::string name) : name_(std::move(name)) {}

void TaskGraph::add_task(TaskSpec spec) {
  const auto [it, inserted] = tasks_.emplace(spec.key, std::move(spec));
  if (!inserted) {
    throw std::invalid_argument("duplicate task key " + it->first.to_string());
  }
}

bool TaskGraph::contains(const TaskKey& key) const {
  return tasks_.count(key) != 0;
}

const TaskSpec& TaskGraph::task(const TaskKey& key) const {
  const auto it = tasks_.find(key);
  if (it == tasks_.end()) {
    throw std::out_of_range("unknown task " + key.to_string());
  }
  return it->second;
}

void TaskGraph::validate(const std::vector<TaskKey>& external) const {
  std::unordered_set<std::string> external_keys;
  for (const auto& key : external) external_keys.insert(key.to_string());
  for (const auto& [key, spec] : tasks_) {
    for (const auto& dep : spec.dependencies) {
      if (!contains(dep) && external_keys.count(dep.to_string()) == 0) {
        throw std::invalid_argument("task " + key.to_string() +
                                    " depends on unknown key " +
                                    dep.to_string());
      }
    }
  }
  // Cycle check via the topological sort (throws on cycle).
  (void)topological_order();
}

std::vector<TaskKey> TaskGraph::topological_order() const {
  // Kahn's algorithm over in-graph dependencies only.
  std::map<TaskKey, std::size_t> in_degree;
  std::map<TaskKey, std::vector<TaskKey>> dependents;
  for (const auto& [key, spec] : tasks_) {
    std::size_t degree = 0;
    for (const auto& dep : spec.dependencies) {
      if (contains(dep)) {
        ++degree;
        dependents[dep].push_back(key);
      }
    }
    in_degree[key] = degree;
  }
  std::vector<TaskKey> ready;
  for (const auto& [key, degree] : in_degree) {
    if (degree == 0) ready.push_back(key);
  }
  std::vector<TaskKey> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    TaskKey key = ready.back();
    ready.pop_back();
    order.push_back(key);
    const auto it = dependents.find(key);
    if (it == dependents.end()) continue;
    for (const auto& dependent : it->second) {
      if (--in_degree[dependent] == 0) ready.push_back(dependent);
    }
  }
  if (order.size() != tasks_.size()) {
    throw std::invalid_argument("task graph '" + name_ + "' contains a cycle");
  }
  return order;
}

const char* to_string(SchedulerTaskState state) {
  switch (state) {
    case SchedulerTaskState::kReleased:
      return "released";
    case SchedulerTaskState::kWaiting:
      return "waiting";
    case SchedulerTaskState::kQueued:
      return "queued";
    case SchedulerTaskState::kNoWorker:
      return "no-worker";
    case SchedulerTaskState::kProcessing:
      return "processing";
    case SchedulerTaskState::kMemory:
      return "memory";
    case SchedulerTaskState::kErred:
      return "erred";
    case SchedulerTaskState::kForgotten:
      return "forgotten";
  }
  return "unknown";
}

const char* to_string(WorkerTaskState state) {
  switch (state) {
    case WorkerTaskState::kReceived:
      return "received";
    case WorkerTaskState::kFetchingDeps:
      return "fetching-deps";
    case WorkerTaskState::kReady:
      return "ready";
    case WorkerTaskState::kExecuting:
      return "executing";
    case WorkerTaskState::kInMemory:
      return "in-memory";
    case WorkerTaskState::kError:
      return "error";
  }
  return "unknown";
}

}  // namespace recup::dtr
