#include "dtr/mofka_plugins.hpp"

namespace recup::dtr {
namespace {

constexpr const char* kTransitions = "wms_transitions";
constexpr const char* kTasks = "wms_tasks";
constexpr const char* kComms = "wms_comms";
constexpr const char* kWarnings = "wms_warnings";
constexpr const char* kCluster = "wms_cluster";

json::Value key_to_json(const TaskKey& key) {
  json::Object o;
  o["group"] = key.group;
  o["index"] = key.index;
  return json::Value(std::move(o));
}

TaskKey key_from_json(const json::Value& v) {
  TaskKey key;
  key.group = v.at("group").as_string();
  key.index = v.at("index").as_int();
  return key;
}

}  // namespace

void create_wms_topics(mofka::Broker& broker,
                       mofka::PartitionIndex partitions) {
  for (const char* name :
       {kTransitions, kTasks, kComms, kWarnings, kCluster}) {
    if (!broker.topic_exists(name)) {
      broker.create_topic(name, mofka::TopicConfig{partitions, nullptr,
                                                   nullptr});
    }
  }
}

json::Value to_json(const TransitionRecord& r) {
  json::Object o;
  o["key"] = key_to_json(r.key);
  o["graph"] = r.graph;
  o["from"] = r.from_state;
  o["to"] = r.to_state;
  o["stimulus"] = r.stimulus;
  o["location"] = r.location;
  o["time"] = r.time;
  return json::Value(std::move(o));
}

TransitionRecord transition_from_json(const json::Value& v) {
  TransitionRecord r;
  r.key = key_from_json(v.at("key"));
  r.graph = v.at("graph").as_string();
  r.from_state = v.at("from").as_string();
  r.to_state = v.at("to").as_string();
  r.stimulus = v.at("stimulus").as_string();
  r.location = v.at("location").as_string();
  r.time = v.at("time").as_double();
  return r;
}

json::Value to_json(const TaskRecord& r) {
  json::Object o;
  o["key"] = key_to_json(r.key);
  o["graph"] = r.graph;
  o["prefix"] = r.prefix;
  o["worker"] = static_cast<std::int64_t>(r.worker);
  o["worker_address"] = r.worker_address;
  o["thread_id"] = r.thread_id;
  o["lane"] = static_cast<std::int64_t>(r.lane);
  o["received_time"] = r.received_time;
  o["ready_time"] = r.ready_time;
  o["start_time"] = r.start_time;
  o["end_time"] = r.end_time;
  o["compute_time"] = r.compute_time;
  o["io_time"] = r.io_time;
  o["gpu_time"] = r.gpu_time;
  o["output_bytes"] = r.output_bytes;
  o["bytes_read"] = r.bytes_read;
  o["bytes_written"] = r.bytes_written;
  o["bytes_oob"] = r.bytes_oob;
  o["bytes_inline"] = r.bytes_inline;
  o["retries"] = static_cast<std::int64_t>(r.retries);
  o["stolen"] = r.stolen;
  json::Array deps;
  for (const auto& dep : r.dependencies) deps.push_back(key_to_json(dep));
  o["dependencies"] = std::move(deps);
  return json::Value(std::move(o));
}

TaskRecord task_from_json(const json::Value& v) {
  TaskRecord r;
  r.key = key_from_json(v.at("key"));
  r.graph = v.at("graph").as_string();
  r.prefix = v.at("prefix").as_string();
  r.worker = static_cast<WorkerId>(v.at("worker").as_int());
  r.worker_address = v.at("worker_address").as_string();
  r.thread_id = static_cast<std::uint64_t>(v.at("thread_id").as_int());
  r.lane = static_cast<std::uint32_t>(v.at("lane").as_int());
  r.received_time = v.at("received_time").as_double();
  r.ready_time = v.at("ready_time").as_double();
  r.start_time = v.at("start_time").as_double();
  r.end_time = v.at("end_time").as_double();
  r.compute_time = v.at("compute_time").as_double();
  r.io_time = v.at("io_time").as_double();
  r.gpu_time = v.get_double("gpu_time", 0.0);
  r.output_bytes = static_cast<std::uint64_t>(v.at("output_bytes").as_int());
  r.bytes_read = static_cast<std::uint64_t>(v.at("bytes_read").as_int());
  r.bytes_written =
      static_cast<std::uint64_t>(v.at("bytes_written").as_int());
  // Defaulted: records journaled before the out-of-band data plane.
  r.bytes_oob = static_cast<std::uint64_t>(v.get_int("bytes_oob", 0));
  r.bytes_inline = static_cast<std::uint64_t>(v.get_int("bytes_inline", 0));
  r.retries = static_cast<std::uint32_t>(v.at("retries").as_int());
  r.stolen = v.at("stolen").as_bool();
  if (v.contains("dependencies")) {
    for (const auto& dep : v.at("dependencies").as_array()) {
      r.dependencies.push_back(key_from_json(dep));
    }
  }
  return r;
}

json::Value to_json(const CommRecord& r) {
  json::Object o;
  o["key"] = key_to_json(r.key);
  o["source"] = static_cast<std::int64_t>(r.source);
  o["destination"] = static_cast<std::int64_t>(r.destination);
  o["source_address"] = r.source_address;
  o["destination_address"] = r.destination_address;
  o["bytes"] = r.bytes;
  o["start"] = r.start;
  o["end"] = r.end;
  o["cross_node"] = r.cross_node;
  o["cold_connection"] = r.cold_connection;
  o["oob"] = r.oob;
  return json::Value(std::move(o));
}

CommRecord comm_from_json(const json::Value& v) {
  CommRecord r;
  r.key = key_from_json(v.at("key"));
  r.source = static_cast<WorkerId>(v.at("source").as_int());
  r.destination = static_cast<WorkerId>(v.at("destination").as_int());
  r.source_address = v.at("source_address").as_string();
  r.destination_address = v.at("destination_address").as_string();
  r.bytes = static_cast<std::uint64_t>(v.at("bytes").as_int());
  r.start = v.at("start").as_double();
  r.end = v.at("end").as_double();
  r.cross_node = v.at("cross_node").as_bool();
  r.cold_connection = v.at("cold_connection").as_bool();
  r.oob = v.get_bool("oob", false);
  return r;
}

json::Value to_json(const WarningRecord& r) {
  json::Object o;
  o["kind"] = r.kind;
  o["location"] = r.location;
  o["time"] = r.time;
  o["blocked_for"] = r.blocked_for;
  o["message"] = r.message;
  return json::Value(std::move(o));
}

WarningRecord warning_from_json(const json::Value& v) {
  WarningRecord r;
  r.kind = v.at("kind").as_string();
  r.location = v.at("location").as_string();
  r.time = v.at("time").as_double();
  r.blocked_for = v.at("blocked_for").as_double();
  r.message = v.at("message").as_string();
  return r;
}

json::Value to_json(const StealRecord& r) {
  json::Object o;
  o["kind"] = "steal";
  o["key"] = key_to_json(r.key);
  o["victim"] = static_cast<std::int64_t>(r.victim);
  o["thief"] = static_cast<std::int64_t>(r.thief);
  o["time"] = r.time;
  o["estimated_transfer_cost"] = r.estimated_transfer_cost;
  o["estimated_compute_cost"] = r.estimated_compute_cost;
  return json::Value(std::move(o));
}

StealRecord steal_from_json(const json::Value& v) {
  StealRecord r;
  r.key = key_from_json(v.at("key"));
  r.victim = static_cast<WorkerId>(v.at("victim").as_int());
  r.thief = static_cast<WorkerId>(v.at("thief").as_int());
  r.time = v.at("time").as_double();
  r.estimated_transfer_cost = v.at("estimated_transfer_cost").as_double();
  r.estimated_compute_cost = v.at("estimated_compute_cost").as_double();
  return r;
}

MofkaSchedulerPlugin::MofkaSchedulerPlugin(mofka::Broker& broker,
                                           mofka::ProducerConfig config)
    : transitions_(broker, kTransitions, config),
      cluster_(broker, kCluster, config),
      warnings_(broker, kWarnings, config) {}

void MofkaSchedulerPlugin::on_graph_received(const std::string& graph_name,
                                             std::size_t task_count,
                                             TimePoint time) {
  json::Object o;
  o["kind"] = "graph-received";
  o["graph"] = graph_name;
  o["tasks"] = task_count;
  o["time"] = time;
  cluster_.push(json::Value(std::move(o)));
}

void MofkaSchedulerPlugin::on_transition(const TransitionRecord& record) {
  transitions_.push(to_json(record));
}

void MofkaSchedulerPlugin::on_worker_added(WorkerId worker,
                                           const std::string& address,
                                           TimePoint time) {
  json::Object o;
  o["kind"] = "worker-added";
  o["worker"] = static_cast<std::int64_t>(worker);
  o["address"] = address;
  o["time"] = time;
  cluster_.push(json::Value(std::move(o)));
}

void MofkaSchedulerPlugin::on_worker_removed(WorkerId worker,
                                             const std::string& address,
                                             TimePoint time) {
  json::Object o;
  o["kind"] = "worker-removed";
  o["worker"] = static_cast<std::int64_t>(worker);
  o["address"] = address;
  o["time"] = time;
  cluster_.push(json::Value(std::move(o)));
}

void MofkaSchedulerPlugin::on_steal(const StealRecord& record) {
  cluster_.push(to_json(record));
}

void MofkaSchedulerPlugin::on_warning(const WarningRecord& record) {
  warnings_.push(to_json(record));
}

void MofkaSchedulerPlugin::flush() {
  transitions_.flush();
  cluster_.flush();
  warnings_.flush();
}

MofkaWorkerPlugin::MofkaWorkerPlugin(mofka::Broker& broker,
                                     mofka::ProducerConfig config)
    : transitions_(broker, kTransitions, config),
      tasks_(broker, kTasks, config),
      comms_(broker, kComms, config),
      warnings_(broker, kWarnings, config) {}

void MofkaWorkerPlugin::on_transition(const TransitionRecord& record) {
  transitions_.push(to_json(record));
}

void MofkaWorkerPlugin::on_task_done(const TaskRecord& record) {
  tasks_.push(to_json(record));
}

void MofkaWorkerPlugin::on_incoming_transfer(const CommRecord& record) {
  comms_.push(to_json(record));
}

void MofkaWorkerPlugin::on_warning(const WarningRecord& record) {
  warnings_.push(to_json(record));
}

void MofkaWorkerPlugin::flush() {
  transitions_.flush();
  tasks_.flush();
  comms_.flush();
  warnings_.flush();
}

}  // namespace recup::dtr
