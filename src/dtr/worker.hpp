// Worker: executes tasks on a fixed pool of executor threads ("lanes"), one
// task per thread at a time, exactly like Dask workers running each task in
// an independent thread (paper §III-E3). Workers fetch missing dependencies
// from peer workers over the network model (gather_dep), perform the task's
// simulated POSIX I/O through the instrumented VFS, and keep results in
// distributed memory. They also host the two warning sources Figure 7
// analyzes: an event-loop responsiveness monitor and a garbage-collection
// model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "chaos/fault.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "darshan/runtime.hpp"
#include "datastore/store.hpp"
#include "dtr/plugins.hpp"
#include "gpuprof/collector.hpp"
#include "gpuprof/gpu.hpp"
#include "dtr/records.hpp"
#include "dtr/task.hpp"
#include "dtr/vfs.hpp"
#include "platform/network.hpp"
#include "sim/engine.hpp"

namespace recup::dtr {

struct WorkerConfig {
  std::size_t nthreads = 8;
  /// Relative compute slowdown of this worker's node (1.0 = nominal). Set
  /// per run from the platform model: "the allocated nodes may vary in
  /// performance" (paper §III-E1) — a major variability source, since a
  /// slow node lags its round of tasks and triggers work stealing.
  double speed_factor = 1.0;
  /// Scheduler<->worker / worker<->worker control message latency.
  Duration control_latency = 1e-4;
  /// Event-loop blockage beyond this emits an unresponsive warning
  /// (distributed's default detection threshold is 3 s).
  Duration event_loop_warn_threshold = 3.0;
  /// While blocked, an additional warning fires every this many seconds
  /// (the monitor keeps reporting as long as the loop stays stuck).
  Duration event_loop_warn_repeat = 2.0;
  /// Transient allocations accumulate; exceeding this triggers a GC cycle.
  std::uint64_t gc_threshold_bytes = 768ULL * 1024 * 1024;
  Duration gc_pause_base = 0.04;
  Duration gc_pause_per_gib = 0.25;
  /// GC pauses above this are logged as warnings.
  Duration gc_warn_threshold = 0.1;
  /// Heartbeat period to the scheduler / SSG group.
  Duration heartbeat_interval = 0.5;
  /// Distributed-memory budget; exceeding it spills results to local
  /// scratch (0 disables spilling). Spill writes and later un-spill reads
  /// go through the instrumented VFS, so they appear in the Darshan data —
  /// one source of the run-to-run I/O-count variability Table I reports.
  std::uint64_t spill_threshold_bytes = 0;
  /// Maximum bytes per spill write operation.
  std::uint64_t spill_chunk_bytes = 64ULL * 1024 * 1024;
};

/// Location + size information the scheduler sends along with an assignment
/// so the worker can gather dependencies.
struct DepLocation {
  TaskKey key;
  WorkerId holder = 0;
  platform::NodeId node_of_holder = 0;
  std::uint64_t bytes = 0;
  /// Out-of-band dependency: the payload lives in the datastore and the
  /// fetch resolves `proxy` (validating size + fingerprint) instead of
  /// trusting the inline transfer.
  bool oob = false;
  datastore::Proxy proxy;
};

class Worker {
 public:
  /// `on_task_finished(key, record, failed)`: control message back to the
  /// scheduler (already delayed by control latency when invoked).
  using CompletionFn =
      std::function<void(const TaskKey&, const TaskRecord&, bool failed)>;
  using HeartbeatFn = std::function<void(WorkerId)>;
  /// Notifies the scheduler that this worker now holds a replica of a key
  /// (Dask's add-keys message after gather_dep).
  using ReplicaFn = std::function<void(const TaskKey&, WorkerId)>;
  /// Reports that an out-of-band fetch of `key` from `failed_holder` could
  /// not be validated (dead shard / evicted region / exhausted wire
  /// retries). The scheduler answers with refetch_dep from a surviving
  /// replica, or recomputes the producer and refetches once it lands.
  using MissingDepFn =
      std::function<void(const TaskKey&, WorkerId requester,
                         WorkerId failed_holder)>;

  Worker(sim::Engine& engine, platform::Network& network, Vfs& vfs,
         WorkerId id, platform::NodeId node, std::string address,
         WorkerConfig config, RngStream rng, LogCollector& logs,
         darshan::RuntimeConfig darshan_config);

  // --- Identity ------------------------------------------------------------
  [[nodiscard]] WorkerId id() const { return id_; }
  [[nodiscard]] platform::NodeId node() const { return node_; }
  [[nodiscard]] const std::string& address() const { return address_; }
  [[nodiscard]] std::size_t nthreads() const { return config_.nthreads; }

  // --- Scheduler-facing control -------------------------------------------
  /// Accepts a task for execution. `graph` names the submitting task graph;
  /// `deps` lists remote dependency locations (local deps omitted).
  void assign_task(const TaskSpec& spec, const std::string& graph,
                   std::vector<DepLocation> deps, bool was_stolen);

  /// Attempts to remove a not-yet-started task (work stealing). Succeeds
  /// only while the task sits in the ready queue.
  bool try_release_ready_task(const TaskKey& key);

  /// True while the task is anywhere in this worker's pipeline (received,
  /// fetching deps, ready, or executing). A restarted scheduler uses this to
  /// re-adopt in-flight work instead of re-dispatching it.
  [[nodiscard]] bool has_task(const TaskKey& key) const {
    return inflight_.count(key) != 0;
  }

  /// Re-issues an in-flight fetch against a different holder after the
  /// scheduler resolved a missing-dep report. No-op when the key is no
  /// longer being waited on.
  void refetch_dep(const DepLocation& dep);
  /// Keys with fetches outstanding (waiting tasks attached). A restarted
  /// scheduler uses this to restart fetches whose answer died with it.
  [[nodiscard]] std::vector<TaskKey> pending_fetch_keys() const;

  /// Tasks ready or executing (Dask's occupancy proxy for decide_worker).
  [[nodiscard]] std::size_t processing_count() const;
  [[nodiscard]] std::size_t ready_count() const { return ready_.size(); }
  [[nodiscard]] std::size_t executing_count() const { return executing_; }
  /// Ready-queue tasks eligible for stealing, oldest last.
  [[nodiscard]] std::vector<TaskKey> stealable_tasks() const;

  // --- Distributed memory ----------------------------------------------------
  [[nodiscard]] bool has_data(const TaskKey& key) const;
  [[nodiscard]] std::uint64_t data_size(const TaskKey& key) const;
  /// Serves a peer's gather_dep (bookkeeping only; cost is on the network).
  [[nodiscard]] std::uint64_t serve_data(const TaskKey& key) const;
  void drop_data(const TaskKey& key);
  /// Injects a value directly (scatter / results of previous graphs).
  void put_data(const TaskKey& key, std::uint64_t bytes);
  [[nodiscard]] std::uint64_t memory_bytes() const { return memory_bytes_; }

  // --- Wiring ----------------------------------------------------------------
  void set_completion_callback(CompletionFn fn) { on_finished_ = std::move(fn); }
  void set_heartbeat_callback(HeartbeatFn fn) { on_heartbeat_ = std::move(fn); }
  void set_replica_callback(ReplicaFn fn) { on_replica_ = std::move(fn); }
  void set_missing_dep_callback(MissingDepFn fn) {
    on_missing_dep_ = std::move(fn);
  }
  /// Attaches the out-of-band data plane. Results >= its inline_threshold
  /// are published to this worker's shard on completion and gather_deps
  /// resolves proxy-tagged dependencies through validated peer fetches.
  void set_datastore(datastore::DataStore* store) { datastore_ = store; }
  /// Attaches the node's shared GPU devices and the NSIGHT-analog
  /// collector; tasks with kernel specs then execute them on-device.
  void set_gpus(gpuprof::GpuSet* gpus, gpuprof::Collector* collector) {
    gpus_ = gpus;
    gpu_collector_ = collector;
  }
  void add_plugin(WorkerPlugin* plugin) { plugins_.push_back(plugin); }
  /// Chaos hook: the worker loop consults chaos::sites::kDtrWorker (with
  /// this worker's id as the partition) before starting tasks; an injected
  /// kThreadKill kills the process mid-run.
  void set_fault_injector(std::shared_ptr<chaos::FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  void start_heartbeats();
  void stop();
  /// Hard failure: the process dies — no further completions are reported,
  /// all in-memory data is lost, heartbeats cease. Used by fault-injection
  /// tests and the SSG recovery path.
  void kill();
  [[nodiscard]] bool alive() const { return !killed_; }

  // --- Completion retention (foreman aggregation mode) ---------------------
  /// A completion report already sent upstream but not yet acknowledged.
  struct PendingCompletion {
    TaskKey key;
    TaskRecord record;
    bool failed = false;
  };
  /// When enabled, every completion report is retained until acked — a
  /// foreman buffering reports in an aggregation window acks them at
  /// flush, so a foreman death replays the unacked tail instead of losing
  /// it. Off (the default) reports are fire-and-forget as before.
  void set_ack_tracking(bool on) {
    ack_tracking_ = on;
    if (!on) unacked_.clear();
  }
  [[nodiscard]] const std::deque<PendingCompletion>& unacked_completions()
      const {
    return unacked_;
  }
  /// Acknowledges the oldest `count` retained completions (FIFO — report
  /// order matches the order they were sent upstream).
  void ack_completions(std::size_t count) {
    while (count-- > 0 && !unacked_.empty()) unacked_.pop_front();
  }

  [[nodiscard]] darshan::Runtime& darshan() { return darshan_; }
  [[nodiscard]] const darshan::Runtime& darshan() const { return darshan_; }
  [[nodiscard]] const std::vector<CommRecord>& incoming_transfers() const {
    return transfers_;
  }
  [[nodiscard]] const std::vector<WarningRecord>& warnings() const {
    return warnings_;
  }
  [[nodiscard]] const std::vector<TransitionRecord>& transitions() const {
    return transitions_;
  }

 private:
  struct Exec {
    TaskSpec spec;
    std::string graph;
    std::vector<DepLocation> missing_deps;
    TaskRecord record;
    std::size_t pending_fetches = 0;
    std::size_t io_index = 0;
    std::uint32_t lane = 0;
    WorkerTaskState state = WorkerTaskState::kReceived;
  };
  using ExecPtr = std::shared_ptr<Exec>;

  void transition(Exec& exec, WorkerTaskState to, const std::string& stimulus);
  void gather_deps(const ExecPtr& exec);
  /// Issues the network transfer for one dependency and, for oob deps, the
  /// validated datastore fetch when the bytes land.
  void issue_fetch(const DepLocation& dep);
  void fetch_complete(const TaskKey& key);
  void enqueue_ready(const ExecPtr& exec, const std::string& stimulus);
  void maybe_start_tasks();
  void start_execution(const ExecPtr& exec, std::uint32_t lane);
  void run_kernels(const ExecPtr& exec, std::size_t kernel_index,
                   std::uint32_t launch_index, std::function<void()> then);
  void run_reads(const ExecPtr& exec, std::function<void()> then);
  void run_compute(const ExecPtr& exec, std::function<void()> then);
  void run_writes(const ExecPtr& exec, std::function<void()> then);
  void finish_task(const ExecPtr& exec, bool failed);
  void block_event_loop(Duration duration, const std::string& cause);
  void loop_monitor_check();
  void maybe_collect_garbage();
  void emit_warning(WarningRecord record);
  [[nodiscard]] std::uint64_t lane_thread_id(std::uint32_t lane) const;

  sim::Engine& engine_;
  platform::Network& network_;
  Vfs& vfs_;
  WorkerId id_;
  platform::NodeId node_;
  std::string address_;
  WorkerConfig config_;
  RngStream rng_;
  LogCollector& logs_;
  darshan::Runtime darshan_;

  struct DataEntry {
    std::uint64_t bytes = 0;
    bool spilled = false;
    std::uint64_t insert_order = 0;
  };

  void maybe_spill();
  /// Un-spills any spilled local dependencies of `exec` (issues reads),
  /// then calls `then`.
  void unspill_deps(const ExecPtr& exec, std::function<void()> then);

  std::vector<bool> lane_busy_;
  std::deque<ExecPtr> ready_;
  /// Keys currently being fetched from peers, with the tasks waiting on
  /// them. A key is fetched once per worker no matter how many local tasks
  /// need it (Dask's gather_dep dedup).
  std::map<TaskKey, std::vector<ExecPtr>> fetching_;
  std::size_t executing_ = 0;
  /// Keys of tasks assigned but not yet finished (or released to a thief).
  std::set<TaskKey> inflight_;
  std::map<TaskKey, DataEntry> data_;  // distributed memory: key -> entry
  std::uint64_t next_insert_order_ = 0;
  std::uint64_t spill_counter_ = 0;
  std::uint64_t memory_bytes_ = 0;
  std::uint64_t gc_accumulated_ = 0;
  TimePoint loop_blocked_until_ = 0.0;
  TimePoint loop_block_began_ = 0.0;   ///< start of the current episode
  bool loop_monitor_armed_ = false;
  std::string loop_block_cause_;
  bool stopped_ = false;
  bool killed_ = false;

  bool ack_tracking_ = false;
  std::deque<PendingCompletion> unacked_;

  CompletionFn on_finished_;
  HeartbeatFn on_heartbeat_;
  ReplicaFn on_replica_;
  MissingDepFn on_missing_dep_;
  datastore::DataStore* datastore_ = nullptr;
  std::shared_ptr<chaos::FaultInjector> injector_;
  gpuprof::GpuSet* gpus_ = nullptr;
  gpuprof::Collector* gpu_collector_ = nullptr;
  std::vector<WorkerPlugin*> plugins_;
  std::vector<CommRecord> transfers_;
  std::vector<WarningRecord> warnings_;
  std::vector<TransitionRecord> transitions_;
};

}  // namespace recup::dtr
