#include "dtr/foreman.hpp"

#include "dtr/scheduler.hpp"

namespace recup::dtr {

Foreman::Foreman(sim::Engine& engine, Scheduler& root, std::uint32_t id,
                 Duration window, Duration control_latency,
                 Duration heartbeat_interval, Duration lease_expiry,
                 LogCollector& logs)
    : engine_(engine),
      root_(root),
      id_(id),
      window_(window),
      control_latency_(control_latency),
      heartbeat_interval_(heartbeat_interval),
      lease_expiry_(lease_expiry),
      logs_(logs) {}

void Foreman::adopt_worker(Worker* worker) {
  pool_.push_back(worker);
  pool_by_id_[worker->id()] = worker;
  last_beat_[worker->id()] = engine_.now();
  worker->set_completion_callback(
      [this](const TaskKey& key, const TaskRecord& record, bool failed) {
        on_completion(key, record, failed);
      });
  worker->set_heartbeat_callback([this](WorkerId id) { on_heartbeat(id); });
  worker->set_replica_callback(
      [this](const TaskKey& key, WorkerId id) { on_replica(key, id); });
  worker->set_missing_dep_callback(
      [this](const TaskKey& key, WorkerId requester, WorkerId failed_holder) {
        on_missing_dep(key, requester, failed_holder);
      });
  // In the aggregation mode completions sit in this foreman's buffer for up
  // to a window; the worker holds them until acked so a foreman death can
  // replay the tail.
  worker->set_ack_tracking(window_ > 0.0);
}

void Foreman::deliver(Worker* worker, const TaskSpec& spec,
                      const std::string& graph,
                      const std::vector<DepLocation>& deps, bool stolen) {
  engine_.schedule_after(control_latency_,
                         [this, worker, spec, graph, deps, stolen] {
                           if (!alive_) return;  // died with the message queued
                           ++deliveries_;
                           worker->assign_task(spec, graph, deps, stolen);
                         });
}

void Foreman::forward(IntakeEvent event) {
  if (!alive_) return;
  if (window_ <= 0.0) {
    // Synchronous relay: the root applies the report at the same virtual
    // instant the flat topology would — provenance stays byte-identical.
    ++events_forwarded_;
    root_.enqueue_event(std::move(event));
    root_.pump_intake();
    return;
  }
  buffer_.push_back(std::move(event));
  schedule_flush();
}

void Foreman::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  engine_.schedule_after(window_, [this] { flush(); });
}

void Foreman::flush() {
  flush_scheduled_ = false;
  if (!alive_ || buffer_.empty()) return;
  ++batches_flushed_;
  std::map<WorkerId, std::size_t> completions;
  for (IntakeEvent& event : buffer_) {
    if (event.kind == IntakeKind::kCompletion) {
      ++completions[event.record.worker];
    }
    ++events_forwarded_;
    root_.enqueue_event(std::move(event));
  }
  buffer_.clear();
  // Completions are safely upstream: release the workers' replay copies.
  for (const auto& [worker, count] : completions) {
    const auto it = pool_by_id_.find(worker);
    if (it != pool_by_id_.end()) it->second->ack_completions(count);
  }
  root_.pump_intake();
}

void Foreman::on_completion(const TaskKey& key, const TaskRecord& record,
                            bool failed) {
  IntakeEvent event;
  event.kind = IntakeKind::kCompletion;
  event.key = key;
  event.record = record;
  event.failed = failed;
  event.worker = record.worker;
  forward(std::move(event));
}

void Foreman::on_heartbeat(WorkerId worker) {
  if (!alive_) return;  // beats to a dead foreman are lost, as on a wire
  ++heartbeats_absorbed_;
  last_beat_[worker] = engine_.now();
}

void Foreman::on_replica(const TaskKey& key, WorkerId worker) {
  IntakeEvent event;
  event.kind = IntakeKind::kReplicaAdded;
  event.key = key;
  event.worker = worker;
  forward(std::move(event));
}

void Foreman::on_missing_dep(const TaskKey& key, WorkerId requester,
                             WorkerId failed_holder) {
  IntakeEvent event;
  event.kind = IntakeKind::kMissingDep;
  event.key = key;
  event.worker = requester;
  event.failed_holder = failed_holder;
  forward(std::move(event));
}

void Foreman::start_liveness_loops() {
  if (liveness_started_ || !alive_) return;
  liveness_started_ = true;
  schedule_liveness_round();
}

void Foreman::schedule_liveness_round() {
  engine_.schedule_after(heartbeat_interval_, [this] {
    if (!alive_ || root_.stopped()) return;
    liveness_round();
    schedule_liveness_round();
  });
}

void Foreman::liveness_round() {
  // One aggregate beat upstream proves this foreman (and implicitly its
  // lease bookkeeping for the whole pool) is alive.
  IntakeEvent beat;
  beat.kind = IntakeKind::kForemanBeat;
  beat.worker = id_;
  root_.enqueue_event(std::move(beat));
  // Pool lease sweep: expired workers are reported upstream; the root runs
  // the same reclaim path lease expiry takes in the flat topology.
  for (Worker* worker : pool_) {
    const WorkerId wid = worker->id();
    if (!root_.worker_alive(wid)) continue;
    const auto it = last_beat_.find(wid);
    if (it == last_beat_.end()) continue;
    if (engine_.now() - it->second <= lease_expiry_) continue;
    ++lease_detections_;
    logs_.log(LogLevel::kError, address(),
              "lease expired for " + worker->address() +
                  " (no heartbeat for " +
                  std::to_string(engine_.now() - it->second) + "s)");
    IntakeEvent event;
    event.kind = IntakeKind::kWorkerLeaseExpired;
    event.worker = wid;
    root_.enqueue_event(std::move(event));
  }
  root_.pump_intake();
}

void Foreman::kill() {
  if (!alive_) return;
  alive_ = false;
  buffer_.clear();  // un-forwarded reports die with the process
  logs_.log(LogLevel::kError, address(), "foreman process died");
}

}  // namespace recup::dtr
