// Deterministic discrete-event engine.
//
// The task runtime, network, and PFS models run on this virtual clock. Events
// scheduled for the same instant fire in schedule order (a monotonically
// increasing sequence number breaks ties), which makes whole-workflow runs
// bit-for-bit reproducible for a given seed — the property that lets the
// variability study attribute differences to *injected* sources only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace recup::sim {

using EventFn = std::function<void()>;

/// Handle to a scheduled event; allows cancellation (e.g. timeouts).
class EventHandle {
 public:
  EventHandle() = default;

  /// True when this handle refers to a not-yet-fired, not-cancelled event.
  [[nodiscard]] bool pending() const { return state_ && !*state_; }
  /// Cancels the event if still pending. Safe to call repeatedly.
  void cancel() {
    if (state_) *state_ = true;
  }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> state)
      : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // true => cancelled or fired
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time in seconds.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= now).
  EventHandle schedule_at(TimePoint when, EventFn fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_after(Duration delay, EventFn fn);

  /// Runs events until the queue is empty or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with timestamps <= `until`; the clock ends at exactly
  /// `until` if the queue drains earlier.
  std::uint64_t run_until(TimePoint until);

  /// Requests that the run loop stop after the current event.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Scheduled {
    TimePoint when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

}  // namespace recup::sim
