#include "sim/engine.hpp"

#include <memory>
#include <stdexcept>

namespace recup::sim {

EventHandle Engine::schedule_at(TimePoint when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("cannot schedule event in the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Scheduled{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

EventHandle Engine::schedule_after(Duration delay, EventFn fn) {
  if (delay < 0.0) throw std::invalid_argument("negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Engine::run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_) {
    Scheduled event = queue_.top();
    queue_.pop();
    if (*event.cancelled) continue;
    *event.cancelled = true;  // mark fired so handles report !pending
    now_ = event.when;
    event.fn();
    ++executed;
  }
  executed_ += executed;
  return executed;
}

std::uint64_t Engine::run_until(TimePoint until) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().when <= until) {
    Scheduled event = queue_.top();
    queue_.pop();
    if (*event.cancelled) continue;
    *event.cancelled = true;
    now_ = event.when;
    event.fn();
    ++executed;
  }
  if (!stopped_ && now_ < until) now_ = until;
  executed_ += executed;
  return executed;
}

}  // namespace recup::sim
