// Capacity-limited FIFO resource on the virtual clock.
//
// Models contention points in the platform: an OST serving a bounded number
// of concurrent I/O requests, a NIC serving transfers, a worker's executor
// lanes. Requests queue when all slots are busy; queueing delay is how
// contention-induced variability reaches the measured records.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace recup::sim {

class Resource {
 public:
  /// `capacity` concurrent slots served FIFO.
  Resource(Engine& engine, std::size_t capacity);

  /// Requests one slot for `service_time` seconds. `on_complete(start, end)`
  /// fires at `end`; `start` is when the slot was actually acquired (>=
  /// request time when queued).
  void request(Duration service_time,
               std::function<void(TimePoint start, TimePoint end)> on_complete);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t in_service() const { return in_service_; }
  [[nodiscard]] std::size_t queued() const { return waiting_.size(); }
  /// Total requests that had to wait in queue.
  [[nodiscard]] std::uint64_t contended_requests() const {
    return contended_;
  }
  /// Sum of all queueing delays experienced so far.
  [[nodiscard]] Duration total_queue_delay() const { return queue_delay_; }

 private:
  struct Pending {
    Duration service_time;
    TimePoint requested_at;
    std::function<void(TimePoint, TimePoint)> on_complete;
  };

  void start_service(Pending pending);

  Engine& engine_;
  std::size_t capacity_;
  std::size_t in_service_ = 0;
  std::deque<Pending> waiting_;
  std::uint64_t contended_ = 0;
  Duration queue_delay_ = 0.0;
};

}  // namespace recup::sim
