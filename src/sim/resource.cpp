#include "sim/resource.hpp"

#include <stdexcept>

namespace recup::sim {

Resource::Resource(Engine& engine, std::size_t capacity)
    : engine_(engine), capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("resource capacity 0");
}

void Resource::request(
    Duration service_time,
    std::function<void(TimePoint, TimePoint)> on_complete) {
  if (service_time < 0.0) throw std::invalid_argument("negative service time");
  Pending pending{service_time, engine_.now(), std::move(on_complete)};
  if (in_service_ < capacity_) {
    start_service(std::move(pending));
  } else {
    ++contended_;
    waiting_.push_back(std::move(pending));
  }
}

void Resource::start_service(Pending pending) {
  ++in_service_;
  const TimePoint start = engine_.now();
  queue_delay_ += start - pending.requested_at;
  const Duration service = pending.service_time;
  auto callback = std::move(pending.on_complete);
  engine_.schedule_after(service, [this, start, callback = std::move(
                                             callback)]() mutable {
    --in_service_;
    if (!waiting_.empty()) {
      Pending next = std::move(waiting_.front());
      waiting_.pop_front();
      start_service(std::move(next));
    }
    if (callback) callback(start, engine_.now());
  });
}

}  // namespace recup::sim
