file(REMOVE_RECURSE
  "CMakeFiles/test_darshan.dir/test_darshan.cpp.o"
  "CMakeFiles/test_darshan.dir/test_darshan.cpp.o.d"
  "test_darshan"
  "test_darshan.pdb"
  "test_darshan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_darshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
