# Empty dependencies file for test_darshan.
# This may be replaced when dependencies are built.
