
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_task_graph.cpp" "tests/CMakeFiles/test_task_graph.dir/test_task_graph.cpp.o" "gcc" "tests/CMakeFiles/test_task_graph.dir/test_task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prov/CMakeFiles/recup_prov.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/recup_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/recup_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dtr/CMakeFiles/recup_dtr.dir/DependInfo.cmake"
  "/root/repo/build/src/mofka/CMakeFiles/recup_mofka.dir/DependInfo.cmake"
  "/root/repo/build/src/mochi/CMakeFiles/recup_mochi.dir/DependInfo.cmake"
  "/root/repo/build/src/darshan/CMakeFiles/recup_darshan.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuprof/CMakeFiles/recup_gpuprof.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/recup_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/recup_json.dir/DependInfo.cmake"
  "/root/repo/build/src/ldms/CMakeFiles/recup_ldms.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/recup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/recup_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
