file(REMOVE_RECURSE
  "CMakeFiles/test_mochi.dir/test_mochi.cpp.o"
  "CMakeFiles/test_mochi.dir/test_mochi.cpp.o.d"
  "test_mochi"
  "test_mochi.pdb"
  "test_mochi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mochi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
