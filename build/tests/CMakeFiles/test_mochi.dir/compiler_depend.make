# Empty compiler generated dependencies file for test_mochi.
# This may be replaced when dependencies are built.
