# Empty compiler generated dependencies file for test_gpuprof.
# This may be replaced when dependencies are built.
