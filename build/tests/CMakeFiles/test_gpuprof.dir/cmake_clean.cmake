file(REMOVE_RECURSE
  "CMakeFiles/test_gpuprof.dir/test_gpuprof.cpp.o"
  "CMakeFiles/test_gpuprof.dir/test_gpuprof.cpp.o.d"
  "test_gpuprof"
  "test_gpuprof.pdb"
  "test_gpuprof[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpuprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
