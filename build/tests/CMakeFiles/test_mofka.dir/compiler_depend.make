# Empty compiler generated dependencies file for test_mofka.
# This may be replaced when dependencies are built.
