file(REMOVE_RECURSE
  "CMakeFiles/test_mofka.dir/test_mofka.cpp.o"
  "CMakeFiles/test_mofka.dir/test_mofka.cpp.o.d"
  "test_mofka"
  "test_mofka.pdb"
  "test_mofka[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mofka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
