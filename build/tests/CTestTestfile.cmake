# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_mochi[1]_include.cmake")
include("/root/repo/build/tests/test_mofka[1]_include.cmake")
include("/root/repo/build/tests/test_darshan[1]_include.cmake")
include("/root/repo/build/tests/test_task_graph[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_worker[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_dataframe[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_provenance[1]_include.cmake")
include("/root/repo/build/tests/test_gpuprof[1]_include.cmake")
include("/root/repo/build/tests/test_online[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_fault_tolerance[1]_include.cmake")
include("/root/repo/build/tests/test_ldms[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
