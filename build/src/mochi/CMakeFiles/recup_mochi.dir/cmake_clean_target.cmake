file(REMOVE_RECURSE
  "librecup_mochi.a"
)
