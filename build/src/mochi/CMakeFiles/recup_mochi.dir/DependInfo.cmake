
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mochi/bedrock.cpp" "src/mochi/CMakeFiles/recup_mochi.dir/bedrock.cpp.o" "gcc" "src/mochi/CMakeFiles/recup_mochi.dir/bedrock.cpp.o.d"
  "/root/repo/src/mochi/ssg.cpp" "src/mochi/CMakeFiles/recup_mochi.dir/ssg.cpp.o" "gcc" "src/mochi/CMakeFiles/recup_mochi.dir/ssg.cpp.o.d"
  "/root/repo/src/mochi/warabi.cpp" "src/mochi/CMakeFiles/recup_mochi.dir/warabi.cpp.o" "gcc" "src/mochi/CMakeFiles/recup_mochi.dir/warabi.cpp.o.d"
  "/root/repo/src/mochi/yokan.cpp" "src/mochi/CMakeFiles/recup_mochi.dir/yokan.cpp.o" "gcc" "src/mochi/CMakeFiles/recup_mochi.dir/yokan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/recup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/recup_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
