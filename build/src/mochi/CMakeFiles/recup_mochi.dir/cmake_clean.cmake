file(REMOVE_RECURSE
  "CMakeFiles/recup_mochi.dir/bedrock.cpp.o"
  "CMakeFiles/recup_mochi.dir/bedrock.cpp.o.d"
  "CMakeFiles/recup_mochi.dir/ssg.cpp.o"
  "CMakeFiles/recup_mochi.dir/ssg.cpp.o.d"
  "CMakeFiles/recup_mochi.dir/warabi.cpp.o"
  "CMakeFiles/recup_mochi.dir/warabi.cpp.o.d"
  "CMakeFiles/recup_mochi.dir/yokan.cpp.o"
  "CMakeFiles/recup_mochi.dir/yokan.cpp.o.d"
  "librecup_mochi.a"
  "librecup_mochi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_mochi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
