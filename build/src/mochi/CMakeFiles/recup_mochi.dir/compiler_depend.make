# Empty compiler generated dependencies file for recup_mochi.
# This may be replaced when dependencies are built.
