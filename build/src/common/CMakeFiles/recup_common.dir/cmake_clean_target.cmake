file(REMOVE_RECURSE
  "librecup_common.a"
)
