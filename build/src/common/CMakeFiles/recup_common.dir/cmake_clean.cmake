file(REMOVE_RECURSE
  "CMakeFiles/recup_common.dir/csv.cpp.o"
  "CMakeFiles/recup_common.dir/csv.cpp.o.d"
  "CMakeFiles/recup_common.dir/histogram.cpp.o"
  "CMakeFiles/recup_common.dir/histogram.cpp.o.d"
  "CMakeFiles/recup_common.dir/log.cpp.o"
  "CMakeFiles/recup_common.dir/log.cpp.o.d"
  "CMakeFiles/recup_common.dir/rng.cpp.o"
  "CMakeFiles/recup_common.dir/rng.cpp.o.d"
  "CMakeFiles/recup_common.dir/stats.cpp.o"
  "CMakeFiles/recup_common.dir/stats.cpp.o.d"
  "CMakeFiles/recup_common.dir/strings.cpp.o"
  "CMakeFiles/recup_common.dir/strings.cpp.o.d"
  "CMakeFiles/recup_common.dir/table.cpp.o"
  "CMakeFiles/recup_common.dir/table.cpp.o.d"
  "librecup_common.a"
  "librecup_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
