# Empty compiler generated dependencies file for recup_common.
# This may be replaced when dependencies are built.
