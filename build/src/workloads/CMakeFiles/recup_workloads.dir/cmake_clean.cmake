file(REMOVE_RECURSE
  "CMakeFiles/recup_workloads.dir/datasets.cpp.o"
  "CMakeFiles/recup_workloads.dir/datasets.cpp.o.d"
  "CMakeFiles/recup_workloads.dir/image_processing.cpp.o"
  "CMakeFiles/recup_workloads.dir/image_processing.cpp.o.d"
  "CMakeFiles/recup_workloads.dir/registry.cpp.o"
  "CMakeFiles/recup_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/recup_workloads.dir/resnet152.cpp.o"
  "CMakeFiles/recup_workloads.dir/resnet152.cpp.o.d"
  "CMakeFiles/recup_workloads.dir/xgboost.cpp.o"
  "CMakeFiles/recup_workloads.dir/xgboost.cpp.o.d"
  "librecup_workloads.a"
  "librecup_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
