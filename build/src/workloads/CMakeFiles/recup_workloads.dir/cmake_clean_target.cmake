file(REMOVE_RECURSE
  "librecup_workloads.a"
)
