# Empty compiler generated dependencies file for recup_workloads.
# This may be replaced when dependencies are built.
