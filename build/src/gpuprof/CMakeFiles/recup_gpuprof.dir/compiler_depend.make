# Empty compiler generated dependencies file for recup_gpuprof.
# This may be replaced when dependencies are built.
