
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpuprof/collector.cpp" "src/gpuprof/CMakeFiles/recup_gpuprof.dir/collector.cpp.o" "gcc" "src/gpuprof/CMakeFiles/recup_gpuprof.dir/collector.cpp.o.d"
  "/root/repo/src/gpuprof/gpu.cpp" "src/gpuprof/CMakeFiles/recup_gpuprof.dir/gpu.cpp.o" "gcc" "src/gpuprof/CMakeFiles/recup_gpuprof.dir/gpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/recup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/recup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/recup_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/recup_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
