file(REMOVE_RECURSE
  "CMakeFiles/recup_gpuprof.dir/collector.cpp.o"
  "CMakeFiles/recup_gpuprof.dir/collector.cpp.o.d"
  "CMakeFiles/recup_gpuprof.dir/gpu.cpp.o"
  "CMakeFiles/recup_gpuprof.dir/gpu.cpp.o.d"
  "librecup_gpuprof.a"
  "librecup_gpuprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_gpuprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
