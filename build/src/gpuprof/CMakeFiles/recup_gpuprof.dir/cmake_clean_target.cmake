file(REMOVE_RECURSE
  "librecup_gpuprof.a"
)
