file(REMOVE_RECURSE
  "CMakeFiles/recup_darshan.dir/dxt.cpp.o"
  "CMakeFiles/recup_darshan.dir/dxt.cpp.o.d"
  "CMakeFiles/recup_darshan.dir/heatmap.cpp.o"
  "CMakeFiles/recup_darshan.dir/heatmap.cpp.o.d"
  "CMakeFiles/recup_darshan.dir/log_format.cpp.o"
  "CMakeFiles/recup_darshan.dir/log_format.cpp.o.d"
  "CMakeFiles/recup_darshan.dir/report.cpp.o"
  "CMakeFiles/recup_darshan.dir/report.cpp.o.d"
  "CMakeFiles/recup_darshan.dir/runtime.cpp.o"
  "CMakeFiles/recup_darshan.dir/runtime.cpp.o.d"
  "librecup_darshan.a"
  "librecup_darshan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_darshan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
