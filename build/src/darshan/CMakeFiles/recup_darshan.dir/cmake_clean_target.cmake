file(REMOVE_RECURSE
  "librecup_darshan.a"
)
