# Empty compiler generated dependencies file for recup_darshan.
# This may be replaced when dependencies are built.
