
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/darshan/dxt.cpp" "src/darshan/CMakeFiles/recup_darshan.dir/dxt.cpp.o" "gcc" "src/darshan/CMakeFiles/recup_darshan.dir/dxt.cpp.o.d"
  "/root/repo/src/darshan/heatmap.cpp" "src/darshan/CMakeFiles/recup_darshan.dir/heatmap.cpp.o" "gcc" "src/darshan/CMakeFiles/recup_darshan.dir/heatmap.cpp.o.d"
  "/root/repo/src/darshan/log_format.cpp" "src/darshan/CMakeFiles/recup_darshan.dir/log_format.cpp.o" "gcc" "src/darshan/CMakeFiles/recup_darshan.dir/log_format.cpp.o.d"
  "/root/repo/src/darshan/report.cpp" "src/darshan/CMakeFiles/recup_darshan.dir/report.cpp.o" "gcc" "src/darshan/CMakeFiles/recup_darshan.dir/report.cpp.o.d"
  "/root/repo/src/darshan/runtime.cpp" "src/darshan/CMakeFiles/recup_darshan.dir/runtime.cpp.o" "gcc" "src/darshan/CMakeFiles/recup_darshan.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/recup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/recup_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
