file(REMOVE_RECURSE
  "librecup_ldms.a"
)
