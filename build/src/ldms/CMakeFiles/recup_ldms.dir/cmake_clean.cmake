file(REMOVE_RECURSE
  "CMakeFiles/recup_ldms.dir/sampler.cpp.o"
  "CMakeFiles/recup_ldms.dir/sampler.cpp.o.d"
  "librecup_ldms.a"
  "librecup_ldms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_ldms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
