# Empty dependencies file for recup_ldms.
# This may be replaced when dependencies are built.
