file(REMOVE_RECURSE
  "librecup_mofka.a"
)
