file(REMOVE_RECURSE
  "CMakeFiles/recup_mofka.dir/broker.cpp.o"
  "CMakeFiles/recup_mofka.dir/broker.cpp.o.d"
  "CMakeFiles/recup_mofka.dir/consumer.cpp.o"
  "CMakeFiles/recup_mofka.dir/consumer.cpp.o.d"
  "CMakeFiles/recup_mofka.dir/producer.cpp.o"
  "CMakeFiles/recup_mofka.dir/producer.cpp.o.d"
  "librecup_mofka.a"
  "librecup_mofka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_mofka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
