# Empty dependencies file for recup_mofka.
# This may be replaced when dependencies are built.
