
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mofka/broker.cpp" "src/mofka/CMakeFiles/recup_mofka.dir/broker.cpp.o" "gcc" "src/mofka/CMakeFiles/recup_mofka.dir/broker.cpp.o.d"
  "/root/repo/src/mofka/consumer.cpp" "src/mofka/CMakeFiles/recup_mofka.dir/consumer.cpp.o" "gcc" "src/mofka/CMakeFiles/recup_mofka.dir/consumer.cpp.o.d"
  "/root/repo/src/mofka/producer.cpp" "src/mofka/CMakeFiles/recup_mofka.dir/producer.cpp.o" "gcc" "src/mofka/CMakeFiles/recup_mofka.dir/producer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/recup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/recup_json.dir/DependInfo.cmake"
  "/root/repo/build/src/mochi/CMakeFiles/recup_mochi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
