file(REMOVE_RECURSE
  "librecup_analysis.a"
)
