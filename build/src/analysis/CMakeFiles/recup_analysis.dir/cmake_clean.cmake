file(REMOVE_RECURSE
  "CMakeFiles/recup_analysis.dir/dataframe.cpp.o"
  "CMakeFiles/recup_analysis.dir/dataframe.cpp.o.d"
  "CMakeFiles/recup_analysis.dir/figures.cpp.o"
  "CMakeFiles/recup_analysis.dir/figures.cpp.o.d"
  "CMakeFiles/recup_analysis.dir/readers.cpp.o"
  "CMakeFiles/recup_analysis.dir/readers.cpp.o.d"
  "CMakeFiles/recup_analysis.dir/variability.cpp.o"
  "CMakeFiles/recup_analysis.dir/variability.cpp.o.d"
  "CMakeFiles/recup_analysis.dir/views.cpp.o"
  "CMakeFiles/recup_analysis.dir/views.cpp.o.d"
  "librecup_analysis.a"
  "librecup_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
