# Empty dependencies file for recup_analysis.
# This may be replaced when dependencies are built.
