file(REMOVE_RECURSE
  "CMakeFiles/recup_json.dir/json.cpp.o"
  "CMakeFiles/recup_json.dir/json.cpp.o.d"
  "librecup_json.a"
  "librecup_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
