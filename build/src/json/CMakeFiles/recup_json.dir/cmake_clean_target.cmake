file(REMOVE_RECURSE
  "librecup_json.a"
)
