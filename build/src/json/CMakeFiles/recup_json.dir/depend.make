# Empty dependencies file for recup_json.
# This may be replaced when dependencies are built.
