# Empty dependencies file for recup_sim.
# This may be replaced when dependencies are built.
