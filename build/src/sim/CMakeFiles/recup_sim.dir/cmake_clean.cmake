file(REMOVE_RECURSE
  "CMakeFiles/recup_sim.dir/engine.cpp.o"
  "CMakeFiles/recup_sim.dir/engine.cpp.o.d"
  "CMakeFiles/recup_sim.dir/resource.cpp.o"
  "CMakeFiles/recup_sim.dir/resource.cpp.o.d"
  "librecup_sim.a"
  "librecup_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
