file(REMOVE_RECURSE
  "librecup_sim.a"
)
