file(REMOVE_RECURSE
  "librecup_platform.a"
)
