file(REMOVE_RECURSE
  "CMakeFiles/recup_platform.dir/network.cpp.o"
  "CMakeFiles/recup_platform.dir/network.cpp.o.d"
  "CMakeFiles/recup_platform.dir/pfs.cpp.o"
  "CMakeFiles/recup_platform.dir/pfs.cpp.o.d"
  "CMakeFiles/recup_platform.dir/sysinfo.cpp.o"
  "CMakeFiles/recup_platform.dir/sysinfo.cpp.o.d"
  "CMakeFiles/recup_platform.dir/topology.cpp.o"
  "CMakeFiles/recup_platform.dir/topology.cpp.o.d"
  "librecup_platform.a"
  "librecup_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
