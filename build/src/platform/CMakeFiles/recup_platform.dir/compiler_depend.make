# Empty compiler generated dependencies file for recup_platform.
# This may be replaced when dependencies are built.
