file(REMOVE_RECURSE
  "CMakeFiles/recup_prov.dir/chart.cpp.o"
  "CMakeFiles/recup_prov.dir/chart.cpp.o.d"
  "CMakeFiles/recup_prov.dir/lineage.cpp.o"
  "CMakeFiles/recup_prov.dir/lineage.cpp.o.d"
  "CMakeFiles/recup_prov.dir/store.cpp.o"
  "CMakeFiles/recup_prov.dir/store.cpp.o.d"
  "librecup_prov.a"
  "librecup_prov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_prov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
