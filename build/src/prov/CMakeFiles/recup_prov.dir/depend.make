# Empty dependencies file for recup_prov.
# This may be replaced when dependencies are built.
