file(REMOVE_RECURSE
  "librecup_prov.a"
)
