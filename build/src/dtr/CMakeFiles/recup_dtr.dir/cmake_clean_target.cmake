file(REMOVE_RECURSE
  "librecup_dtr.a"
)
