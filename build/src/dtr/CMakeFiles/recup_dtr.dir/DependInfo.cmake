
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtr/adaptive.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/adaptive.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/adaptive.cpp.o.d"
  "/root/repo/src/dtr/client.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/client.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/client.cpp.o.d"
  "/root/repo/src/dtr/cluster.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/cluster.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/cluster.cpp.o.d"
  "/root/repo/src/dtr/darshan_bridge.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/darshan_bridge.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/darshan_bridge.cpp.o.d"
  "/root/repo/src/dtr/mofka_plugins.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/mofka_plugins.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/mofka_plugins.cpp.o.d"
  "/root/repo/src/dtr/recorder.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/recorder.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/recorder.cpp.o.d"
  "/root/repo/src/dtr/scheduler.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/scheduler.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/scheduler.cpp.o.d"
  "/root/repo/src/dtr/task.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/task.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/task.cpp.o.d"
  "/root/repo/src/dtr/vfs.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/vfs.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/vfs.cpp.o.d"
  "/root/repo/src/dtr/worker.cpp" "src/dtr/CMakeFiles/recup_dtr.dir/worker.cpp.o" "gcc" "src/dtr/CMakeFiles/recup_dtr.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/recup_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/recup_json.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/recup_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/recup_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/mochi/CMakeFiles/recup_mochi.dir/DependInfo.cmake"
  "/root/repo/build/src/mofka/CMakeFiles/recup_mofka.dir/DependInfo.cmake"
  "/root/repo/build/src/darshan/CMakeFiles/recup_darshan.dir/DependInfo.cmake"
  "/root/repo/build/src/gpuprof/CMakeFiles/recup_gpuprof.dir/DependInfo.cmake"
  "/root/repo/build/src/ldms/CMakeFiles/recup_ldms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
