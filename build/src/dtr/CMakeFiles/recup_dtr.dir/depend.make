# Empty dependencies file for recup_dtr.
# This may be replaced when dependencies are built.
