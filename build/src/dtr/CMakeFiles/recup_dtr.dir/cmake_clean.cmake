file(REMOVE_RECURSE
  "CMakeFiles/recup_dtr.dir/adaptive.cpp.o"
  "CMakeFiles/recup_dtr.dir/adaptive.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/client.cpp.o"
  "CMakeFiles/recup_dtr.dir/client.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/cluster.cpp.o"
  "CMakeFiles/recup_dtr.dir/cluster.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/darshan_bridge.cpp.o"
  "CMakeFiles/recup_dtr.dir/darshan_bridge.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/mofka_plugins.cpp.o"
  "CMakeFiles/recup_dtr.dir/mofka_plugins.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/recorder.cpp.o"
  "CMakeFiles/recup_dtr.dir/recorder.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/scheduler.cpp.o"
  "CMakeFiles/recup_dtr.dir/scheduler.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/task.cpp.o"
  "CMakeFiles/recup_dtr.dir/task.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/vfs.cpp.o"
  "CMakeFiles/recup_dtr.dir/vfs.cpp.o.d"
  "CMakeFiles/recup_dtr.dir/worker.cpp.o"
  "CMakeFiles/recup_dtr.dir/worker.cpp.o.d"
  "librecup_dtr.a"
  "librecup_dtr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_dtr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
