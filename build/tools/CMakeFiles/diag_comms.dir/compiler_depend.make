# Empty compiler generated dependencies file for diag_comms.
# This may be replaced when dependencies are built.
