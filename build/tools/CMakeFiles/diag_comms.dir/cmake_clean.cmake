file(REMOVE_RECURSE
  "CMakeFiles/diag_comms.dir/diag_comms.cpp.o"
  "CMakeFiles/diag_comms.dir/diag_comms.cpp.o.d"
  "diag_comms"
  "diag_comms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_comms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
