# Empty compiler generated dependencies file for recup_report.
# This may be replaced when dependencies are built.
