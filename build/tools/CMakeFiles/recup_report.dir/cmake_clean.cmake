file(REMOVE_RECURSE
  "CMakeFiles/recup_report.dir/recup_report.cpp.o"
  "CMakeFiles/recup_report.dir/recup_report.cpp.o.d"
  "recup_report"
  "recup_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recup_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
