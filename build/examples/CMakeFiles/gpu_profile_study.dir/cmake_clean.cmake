file(REMOVE_RECURSE
  "CMakeFiles/gpu_profile_study.dir/gpu_profile_study.cpp.o"
  "CMakeFiles/gpu_profile_study.dir/gpu_profile_study.cpp.o.d"
  "gpu_profile_study"
  "gpu_profile_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_profile_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
