# Empty compiler generated dependencies file for gpu_profile_study.
# This may be replaced when dependencies are built.
