# Empty compiler generated dependencies file for xgboost_variability.
# This may be replaced when dependencies are built.
