file(REMOVE_RECURSE
  "CMakeFiles/xgboost_variability.dir/xgboost_variability.cpp.o"
  "CMakeFiles/xgboost_variability.dir/xgboost_variability.cpp.o.d"
  "xgboost_variability"
  "xgboost_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgboost_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
