# Empty compiler generated dependencies file for image_pipeline_study.
# This may be replaced when dependencies are built.
