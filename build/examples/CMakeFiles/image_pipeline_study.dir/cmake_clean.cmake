file(REMOVE_RECURSE
  "CMakeFiles/image_pipeline_study.dir/image_pipeline_study.cpp.o"
  "CMakeFiles/image_pipeline_study.dir/image_pipeline_study.cpp.o.d"
  "image_pipeline_study"
  "image_pipeline_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_pipeline_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
