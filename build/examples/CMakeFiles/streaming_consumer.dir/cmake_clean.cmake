file(REMOVE_RECURSE
  "CMakeFiles/streaming_consumer.dir/streaming_consumer.cpp.o"
  "CMakeFiles/streaming_consumer.dir/streaming_consumer.cpp.o.d"
  "streaming_consumer"
  "streaming_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
