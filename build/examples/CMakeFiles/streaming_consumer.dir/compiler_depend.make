# Empty compiler generated dependencies file for streaming_consumer.
# This may be replaced when dependencies are built.
