file(REMOVE_RECURSE
  "CMakeFiles/insitu_monitor.dir/insitu_monitor.cpp.o"
  "CMakeFiles/insitu_monitor.dir/insitu_monitor.cpp.o.d"
  "insitu_monitor"
  "insitu_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insitu_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
