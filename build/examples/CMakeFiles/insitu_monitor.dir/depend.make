# Empty dependencies file for insitu_monitor.
# This may be replaced when dependencies are built.
