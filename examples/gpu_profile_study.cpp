// GPU profiling study: runs a scaled ResNet152 batch prediction with the
// NSIGHT-analog collector and shows how kernel traces join against task
// provenance — the heterogeneous-architecture analysis the paper lists as
// future work.
//
//   $ ./gpu_profile_study [files]
#include <cstdlib>
#include <iostream>

#include "analysis/readers.hpp"
#include "common/strings.hpp"
#include "workloads/registry.hpp"
#include "workloads/resnet152.hpp"

using namespace recup;

int main(int argc, char** argv) {
  workloads::ResNet152Params params;
  params.files = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 600;
  const workloads::Workload workload = workloads::make_resnet152(42, params);
  std::cout << "running " << workload.name << " with " << params.files
            << " files ...\n";
  const dtr::RunData run = workloads::execute(workload, 0);

  std::cout << "kernels recorded: " << run.kernels.size() << "\n\n";

  // Aggregate by kernel name (an `nsys stats`-style view).
  const analysis::DataFrame kernels = analysis::kernels_frame(run);
  const analysis::DataFrame by_name =
      kernels
          .group_by({"kernel"},
                    {{"duration", analysis::Agg::kSum, "total_s"},
                     {"duration", analysis::Agg::kMean, "mean_s"},
                     {"queue_delay", analysis::Agg::kMean, "mean_queue_s"},
                     {"duration", analysis::Agg::kCount, "launches"}})
          .sort_by("total_s", /*ascending=*/false);
  std::cout << "per-kernel summary:\n" << by_name.describe(10) << "\n";

  // Device utilization: busy seconds per (node, device).
  const analysis::DataFrame by_device =
      kernels.group_by({"node", "device"},
                       {{"duration", analysis::Agg::kSum, "busy_s"},
                        {"duration", analysis::Agg::kCount, "launches"}});
  std::cout << "per-device busy time:\n" << by_device.describe(10) << "\n";

  // Join kernels to tasks through the shared (thread id, time) identifiers —
  // exactly how Darshan segments are attributed.
  const analysis::DataFrame tasks = analysis::tasks_frame(run);
  std::size_t attributed = 0;
  for (const auto& k : run.kernels) {
    for (const auto& t : run.tasks) {
      if (t.thread_id == k.thread_id && k.queued >= t.start_time &&
          k.queued <= t.end_time) {
        ++attributed;
        break;
      }
    }
  }
  std::cout << attributed << "/" << run.kernels.size()
            << " kernels attributed to tasks via (thread id, timestamp)\n";

  // GPU time share of predict tasks.
  double gpu_time = 0.0;
  double predict_span = 0.0;
  for (const auto& t : run.tasks) {
    if (t.prefix == "predict") {
      gpu_time += t.gpu_time;
      predict_span += t.end_time - t.start_time;
    }
  }
  if (predict_span > 0.0) {
    std::cout << "predict tasks spend "
              << format_double(100.0 * gpu_time / predict_span, 1)
              << "% of their wall time in GPU kernels (incl. queueing)\n";
  }
  return 0;
}
