// Streaming consumer: demonstrates the Mofka event-streaming path the paper
// builds — the WMS produces provenance events into topics while an analysis
// consumer pulls them (here in bulk after the run; the API is identical for
// in situ consumption), including a data selector that reads metadata only.
//
//   $ ./streaming_consumer
#include <iostream>
#include <map>

#include "analysis/readers.hpp"
#include "dtr/cluster.hpp"
#include "mofka/consumer.hpp"
#include "workloads/image_processing.hpp"

using namespace recup;

int main() {
  // Scaled-down image pipeline with the Mofka plugins enabled (default).
  workloads::ImageProcessingParams params;
  params.images = 24;
  params.extra_chunk_images = 12;
  workloads::Workload workload = workloads::make_image_processing(7, params);

  dtr::ClusterConfig config = workload.cluster;
  config.seed = 7;
  dtr::Cluster cluster(config);
  workload.prepare(cluster.vfs());
  RngStream rng(7);
  auto graphs = workload.build_graphs(rng);
  const dtr::RunData run =
      cluster.run(std::move(graphs), workload.name, 0);
  std::cout << "run complete: " << run.tasks.size() << " tasks\n\n";

  // Topic inventory.
  for (const auto& topic : cluster.broker().topic_names()) {
    const auto stats = cluster.broker().topic_stats(topic);
    std::cout << topic << ": " << stats.events << " events in "
              << stats.batches << " batches, "
              << stats.bytes_metadata << " metadata bytes\n";
  }

  // Consume the transitions topic with a metadata-only selector and count
  // stimuli — the consumer never touches payload bytes.
  mofka::ConsumerConfig consumer_config;
  consumer_config.selector = [](const json::Value&) {
    mofka::DataSelection sel;
    sel.fetch = false;
    return sel;
  };
  mofka::Consumer consumer(cluster.broker(), "wms_transitions", "example",
                           consumer_config);
  std::map<std::string, int> stimuli;
  while (auto event = consumer.pull()) {
    ++stimuli[event->metadata.at("stimulus").as_string()];
  }
  consumer.commit();

  std::cout << "\ntransition stimuli observed:\n";
  for (const auto& [stimulus, count] : stimuli) {
    std::cout << "  " << stimulus << ": " << count << "\n";
  }

  // The same topics can be drained into typed records for PERFRECUP.
  const auto records = analysis::read_wms_topics(cluster.broker(), "typed");
  std::cout << "\ntyped decode: " << records.tasks.size() << " task records, "
            << records.transitions.size() << " transitions, "
            << records.comms.size() << " transfers\n";
  return 0;
}
