// Query service: the full live loop — a workflow executes with the Mofka
// plugins streaming provenance, a LiveIngestor tails the topics into the
// shared StoreCatalog, and concurrent clients ask paper-shaped questions
// over the wire while ingestion continues (paper §V: interactive provenance
// queries over the fused PERFRECUP views).
//
//   $ ./query_service
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "dtr/cluster.hpp"
#include "query/client.hpp"
#include "query/ingest.hpp"
#include "query/server.hpp"
#include "workloads/image_processing.hpp"

using namespace recup;

namespace {

void show(const std::string& title, const query::QueryResponse& response) {
  std::cout << "== " << title << " (epoch " << response.epoch << ", "
            << (response.cached ? "cached" : "computed") << ", "
            << response.elapsed_ms << " ms)\n";
  if (!response.ok) {
    std::cout << "error: " << response.error << "\n\n";
    return;
  }
  std::cout << response.frame.to_csv() << "\n";
}

}  // namespace

int main() {
  // A scaled-down image pipeline, twice, streaming provenance via Mofka.
  workloads::ImageProcessingParams params;
  params.images = 24;
  params.extra_chunk_images = 12;

  query::StoreCatalog catalog;
  query::ServerConfig server_config;
  server_config.workers = 4;
  query::QueryServer server(catalog, server_config);

  for (std::uint32_t run_index = 0; run_index < 2; ++run_index) {
    workloads::Workload workload =
        workloads::make_image_processing(7 + run_index, params);
    dtr::ClusterConfig config = workload.cluster;
    config.seed = 7 + run_index;
    // Stream Darshan records through Mofka too, so the ingested runs can
    // serve the fused task_io view (the paper's "fully online" mode).
    config.enable_darshan_streaming = true;
    dtr::Cluster cluster(config);
    workload.prepare(cluster.vfs());
    RngStream rng(7 + run_index);
    auto graphs = workload.build_graphs(rng);

    // Tail this cluster's broker while the run executes; clients may query
    // the already-ingested runs concurrently.
    query::LiveIngestor ingestor(cluster.broker(), catalog);
    ingestor.start(std::chrono::milliseconds(1));
    std::thread monitor([&server] {
      query::QueryClient client(server);
      const query::QueryResponse r = client.query(std::string(
          R"({"from": "tasks", "group_by": ["workflow", "run"],
              "aggregates": [{"col": "key", "op": "count", "as": "tasks"}]})"));
      std::cout << "[monitor] store has " << r.frame.rows()
                << " runs at epoch " << r.epoch << "\n";
    });
    const dtr::RunData run =
        cluster.run(std::move(graphs), workload.name, run_index);
    monitor.join();
    ingestor.stop();
    const query::Epoch epoch = ingestor.publish(run.meta);
    std::cout << "ingested " << workload.name << " run " << run_index
              << " -> epoch " << epoch << " ("
              << ingestor.stats().events_consumed
              << " events consumed so far)\n";
  }
  std::cout << "\n";

  query::QueryClient client(server);

  // Fig. 6-shaped: where does task time go, by task category?
  show("mean duration and I/O share by prefix",
       client.query(std::string(R"({
         "from": "tasks",
         "group_by": ["prefix"],
         "aggregates": [{"col": "key", "op": "count", "as": "n"},
                        {"col": "duration", "op": "mean", "as": "mean_s"},
                        {"col": "io_time", "op": "mean", "as": "mean_io_s"}],
         "order_by": {"col": "mean_s", "desc": true},
         "limit": 8
       })")));

  // Run-to-run comparison across the two ingested runs.
  show("per-run totals",
       client.query(std::string(R"({
         "from": "tasks",
         "group_by": ["run"],
         "aggregates": [{"col": "key", "op": "count", "as": "tasks"},
                        {"col": "duration", "op": "sum", "as": "busy_s"},
                        {"col": "worker", "op": "count_distinct",
                         "as": "workers"}],
         "order_by": {"col": "run"}
       })")));

  // Fig. 8-shaped: fuse I/O segments with the tasks that issued them and
  // rank files by time spent, per operation.
  show("I/O time by file and op (fused task_io view)",
       client.query(std::string(R"({
         "from": "task_io",
         "group_by": ["file", "op"],
         "aggregates": [{"col": "duration", "op": "sum", "as": "total_s"},
                        {"col": "task_key", "op": "count_distinct",
                         "as": "tasks"}],
         "order_by": {"col": "total_s", "desc": true},
         "limit": 6
       })")));

  // The planner's view of a pushed-down query.
  const query::QueryResponse plan = client.explain(json::parse(R"({
    "from": "tasks", "run": 1,
    "where": [{"col": "duration", "op": ">", "value": 0.05}],
    "group_by": ["worker"],
    "aggregates": [{"col": "duration", "op": "sum", "as": "busy"}]
  })"));
  std::cout << "== explain\n" << plan.explain << "\n";

  const query::ServerStats stats = server.stats();
  std::cout << "server: " << stats.completed << " completed, "
            << stats.cache.hits << " cache hits, " << stats.failed
            << " failed\n";
  return 0;
}
