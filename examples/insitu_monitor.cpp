// In situ monitoring: an analysis consumer that runs *while* the workflow
// executes, pulling provenance events from Mofka on its own schedule — the
// property the paper highlights: "workflow execution and in situ analysis
// can each proceed at their own pace", with the same consumer API as bulk
// post-processing.
//
// The monitor samples the wms_tasks and wms_warnings topics every few
// virtual seconds, prints a progress line, and raises an alert the moment
// unresponsive-event-loop warnings start clustering (the Figure-7
// phenomenon, detected online instead of post hoc).
//
//   $ ./insitu_monitor
#include <cstdio>
#include <iostream>
#include <memory>

#include "dtr/cluster.hpp"
#include "mofka/consumer.hpp"
#include "workloads/registry.hpp"
#include "workloads/xgboost.hpp"

using namespace recup;

int main() {
  workloads::XgboostParams params;  // scaled down for a quick demo
  params.partitions = 12;
  params.boosting_rounds = 8;
  params.reducers = 4;
  params.read_parquet_compute = 15.0;
  workloads::Workload workload = workloads::make_xgboost(7, params);

  dtr::ClusterConfig config = workload.cluster;
  config.seed = 7;
  dtr::Cluster cluster(config);
  workload.prepare(cluster.vfs());
  RngStream rng(7);
  auto graphs = workload.build_graphs(rng);

  // --- the in situ consumer -------------------------------------------------
  // Metadata-only consumption (data selector skips payloads); pulls whatever
  // accumulated since the previous poll.
  mofka::ConsumerConfig consumer_config;
  consumer_config.selector = [](const json::Value&) {
    mofka::DataSelection sel;
    sel.fetch = false;
    return sel;
  };
  auto tasks_consumer = std::make_shared<mofka::Consumer>(
      cluster.broker(), "wms_tasks", "insitu", consumer_config);
  auto warn_consumer = std::make_shared<mofka::Consumer>(
      cluster.broker(), "wms_warnings", "insitu", consumer_config);

  auto completed = std::make_shared<std::size_t>(0);
  auto warnings_seen = std::make_shared<std::size_t>(0);
  auto alerted = std::make_shared<bool>(false);
  auto quiet_polls = std::make_shared<int>(0);
  std::size_t expected = 0;
  for (const auto& g : graphs) expected += g.size();

  // Poll loop on the virtual clock, interleaved with the running workflow.
  // It stops rescheduling after observing everything (or a long quiet
  // stretch — the producers' final batches only flush at run end), letting
  // the engine drain.
  std::function<void()> poll = [&, completed, warnings_seen, alerted,
                                quiet_polls, expected] {
    std::size_t new_tasks = 0;
    while (tasks_consumer->pull()) {
      ++*completed;
      ++new_tasks;
    }
    std::size_t new_warnings = 0;
    while (auto event = warn_consumer->pull()) {
      ++*warnings_seen;
      ++new_warnings;
    }
    std::printf("[t=%7.1fs] tasks completed: %6zu   warnings: %4zu\n",
                cluster.engine().now(), *completed, *warnings_seen);
    if (!*alerted && new_warnings >= 5) {
      *alerted = true;
      std::printf("[t=%7.1fs] ALERT: event-loop warnings clustering — "
                  "long GIL-bound tasks in flight\n",
                  cluster.engine().now());
    }
    *quiet_polls = new_tasks == 0 && new_warnings == 0 ? *quiet_polls + 1 : 0;
    if (*completed < expected && *quiet_polls < 5) {
      cluster.engine().schedule_after(10.0, poll);
    }
  };
  cluster.engine().schedule_after(10.0, poll);

  const dtr::RunData run = cluster.run(std::move(graphs), workload.name, 0);

  // Drain the tail after completion: identical API, bulk mode.
  while (tasks_consumer->pull()) ++*completed;
  tasks_consumer->commit();
  std::printf("\nfinal: %zu tasks observed in situ, %zu total in run, "
              "wall %.1fs\n",
              *completed, run.tasks.size(), run.meta.wall_time());
  return *completed == run.tasks.size() ? 0 : 1;
}
