// XGBOOST variability study: the workload the paper ran 50 times "because
// it showed more variability". Runs it repeatedly (scaled down by default;
// pass --full for paper-scale graphs) and reports which task categories and
// metrics vary the most — the paper's central reproducibility question.
//
//   $ ./xgboost_variability [runs] [--full]
#include <cstring>
#include <cstdlib>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/variability.hpp"
#include "workloads/xgboost.hpp"
#include "workloads/registry.hpp"

using namespace recup;

int main(int argc, char** argv) {
  std::uint32_t runs = 3;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      runs = static_cast<std::uint32_t>(std::atoi(argv[i]));
    }
  }

  workloads::XgboostParams params;
  if (!full) {
    params.partitions = 12;
    params.boosting_rounds = 10;
    params.reducers = 4;
    params.read_parquet_compute = 12.0;
  }
  const workloads::Workload workload = workloads::make_xgboost(42, params);
  std::cout << "running " << workload.name << " x" << runs
            << (full ? " (paper-scale)" : " (scaled down)") << " ...\n";
  const std::vector<dtr::RunData> data =
      workloads::execute_runs(workload, runs);

  std::cout << "\n" << analysis::render_variability(
      analysis::run_level_variability(data));

  std::cout << "\nTask categories ranked by cross-run duration variability "
               "(CV of per-run means):\n";
  const analysis::DataFrame cv = analysis::category_variability(data);
  std::cout << cv.head(8).describe(8);

  std::cout << "\nLongest categories in run 0 (Figure 6 view):\n"
            << analysis::render_figure6(data.front(), 6);

  const analysis::WarningHistogram hist =
      analysis::figure7_histogram(data.front());
  std::cout << "\n" << analysis::render_figure7(hist);
  return 0;
}
