// ImageProcessing case study: runs the paper's four-step image pipeline
// (three task graphs) and reproduces the per-thread I/O timeline analysis
// of Figure 4, including read-phase detection.
//
//   $ ./image_pipeline_study [runs]
#include <cstdlib>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/variability.hpp"
#include "analysis/views.hpp"
#include "workloads/image_processing.hpp"
#include "workloads/registry.hpp"

using namespace recup;

int main(int argc, char** argv) {
  const std::uint32_t runs =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;

  const workloads::Workload workload = workloads::make_image_processing(42);
  std::cout << "running " << workload.name << " x" << runs << " ...\n";
  const std::vector<dtr::RunData> data =
      workloads::execute_runs(workload, runs);

  const dtr::RunData& first = data.front();
  std::cout << "\nwall time: " << first.meta.wall_time() << " s, tasks: "
            << first.tasks.size() << ", graphs: " << first.graph_count
            << "\n\n";

  // Figure 4: per-thread I/O over time.
  std::cout << analysis::render_figure4(first, 110) << "\n";

  const auto phases = analysis::detect_read_phases(first, 2.0);
  std::cout << "detected " << phases.size() << " read phases:";
  for (const auto& p : phases) {
    std::cout << "  [" << p.begin << "s, " << p.end << "s]";
  }
  std::cout << "\n(the paper observes three: one per task graph, with the "
               "inter-graph barrier producing bursts)\n\n";

  // Variability across the repeated runs.
  if (data.size() > 1) {
    std::cout << analysis::render_variability(
        analysis::run_level_variability(data));
    const auto similarity = analysis::schedule_similarity(data[0], data[1]);
    std::cout << "\nschedule similarity between run 0 and run 1: order "
                 "correlation "
              << similarity.order_correlation << ", same-worker fraction "
              << similarity.same_worker_fraction << "\n";
  }
  return 0;
}
