// Quickstart: build a small workflow, run it on an instrumented cluster,
// and inspect the collected performance + provenance data.
//
//   $ ./quickstart
//
// Walks through the full pipeline: task graph -> instrumented run ->
// PERFRECUP frames -> provenance lineage of one task.
#include <cstdio>
#include <iostream>

#include "analysis/figures.hpp"
#include "analysis/readers.hpp"
#include "analysis/views.hpp"
#include "dtr/cluster.hpp"
#include "prov/lineage.hpp"

using namespace recup;

int main() {
  // 1. Configure a cluster: 2 nodes x 2 workers x 4 threads.
  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 4;
  config.seed = 2024;
  dtr::Cluster cluster(config);

  // 2. Register an input dataset in the simulated parallel file system.
  cluster.vfs().register_file("/data/example.bin", 64ULL << 20);

  // 3. Describe a two-stage workflow: 16 readers feeding 4 aggregators.
  dtr::TaskGraph load("load-graph");
  for (int i = 0; i < 16; ++i) {
    dtr::TaskSpec t;
    t.key = {"load-1a2b3c", i};
    t.work.compute = 0.05;
    t.work.output_bytes = 4 << 20;
    t.work.reads.push_back({"/data/example.bin",
                            static_cast<std::uint64_t>(i) * (4 << 20),
                            4 << 20, false});
    load.add_task(t);
  }
  dtr::TaskGraph reduce("reduce-graph");
  for (int i = 0; i < 4; ++i) {
    dtr::TaskSpec t;
    t.key = {"aggregate-4d5e6f", i};
    for (int j = 0; j < 4; ++j) {
      t.dependencies.push_back({"load-1a2b3c", i * 4 + j});
    }
    t.work.compute = 0.1;
    t.work.output_bytes = 1 << 20;
    t.work.writes.push_back({"/out/summary", static_cast<std::uint64_t>(i) *
                                                  (1 << 20),
                             1 << 20, true});
    reduce.add_task(t);
  }

  // 4. Run. Everything is captured: Dask-style task provenance through the
  //    Mofka plugins, POSIX I/O through the Darshan-analog, logs, comms.
  std::vector<dtr::TaskGraph> graphs;
  graphs.push_back(std::move(load));
  graphs.push_back(std::move(reduce));
  const dtr::RunData run = cluster.run(std::move(graphs), "quickstart", 0);

  std::cout << "workflow '" << run.meta.workflow << "' finished in "
            << run.meta.wall_time() << " virtual seconds\n";
  std::cout << "  tasks: " << run.tasks.size()
            << ", transitions: " << run.transitions.size()
            << ", transfers: " << run.comms.size() << "\n";

  // 5. PERFRECUP analysis: per-phase totals and the fused task<->I/O view.
  const analysis::PhaseBreakdown phases = analysis::phase_breakdown(run);
  std::printf("  io %.4fs over %llu ops | comm %.4fs over %llu transfers | "
              "compute %.4fs\n",
              phases.io_time,
              static_cast<unsigned long long>(phases.io_ops),
              phases.comm_time,
              static_cast<unsigned long long>(phases.comm_count),
              phases.compute_time);

  const analysis::DataFrame fused = analysis::task_io_frame(run);
  std::cout << "\nFused Darshan<->WMS view (first rows):\n"
            << fused.describe(5);

  // 6. Full provenance lineage of one task (the paper's Figure 8).
  const auto lineage = prov::task_lineage(run, {"aggregate-4d5e6f", 2});
  if (lineage) {
    std::cout << "\n" << prov::render_lineage(*lineage);
  }
  return 0;
}
