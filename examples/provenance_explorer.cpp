// Provenance explorer: runs a workflow, persists the run directory (the
// FAIR tabular export), reloads it, and answers identifier-based provenance
// queries — by task key, thread id, timestamp, and worker — ending with the
// Figure-8 lineage of a chosen task.
//
//   $ ./provenance_explorer [task-index]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "dtr/recorder.hpp"
#include "prov/chart.hpp"
#include "prov/lineage.hpp"
#include "prov/store.hpp"
#include "workloads/resnet152.hpp"
#include "workloads/registry.hpp"

using namespace recup;

int main(int argc, char** argv) {
  const std::int64_t task_index = argc > 1 ? std::atoll(argv[1]) : 63;

  // A scaled-down ResNet152 batch-prediction run keeps this example quick.
  workloads::ResNet152Params params;
  params.files = 300;
  const workloads::Workload workload = workloads::make_resnet152(42, params);
  std::cout << "running " << workload.name << " (300 files) ...\n";
  const dtr::RunData run = workloads::execute(workload, 0);

  // Persist and reload the run directory: collection and analysis are
  // separate stages, fused at analysis time (the paper's design choice).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "recup_prov_example")
          .string();
  std::filesystem::remove_all(dir);
  dtr::write_run_dir(run, dir);
  std::cout << "run directory written to " << dir << "\n";
  const dtr::RunData reloaded = dtr::read_run_dir(dir);

  prov::ProvenanceStore store;
  store.add_run(reloaded);
  const prov::RunId id{reloaded.meta.workflow, reloaded.meta.run_index};

  // Layered provenance chart (Figure 1).
  std::cout << "\n--- provenance chart ---\n"
            << prov::render_chart(prov::provenance_chart(reloaded));

  // Identifier-based queries (the shared FAIR identifiers of Section V).
  const auto& sample = reloaded.tasks.front();
  std::cout << "\ntasks on thread " << sample.thread_id << ": "
            << store.tasks_on_thread(id, sample.thread_id).size() << "\n";
  std::cout << "tasks executing at t=" << sample.start_time + 0.001 << "s: "
            << store.tasks_at(id, sample.start_time + 0.001).size() << "\n";
  std::cout << "tasks on worker " << sample.worker_address << ": "
            << store.tasks_on_worker(id, sample.worker_address).size()
            << "\n";

  // Figure 8: full lineage of one task.
  dtr::TaskKey key;
  for (const auto& t : reloaded.tasks) {
    if (t.prefix == "transform" && t.key.index == task_index) {
      key = t.key;
      break;
    }
  }
  if (key.group.empty()) key = reloaded.tasks.front().key;
  const auto lineage = prov::task_lineage(reloaded, key);
  if (lineage) {
    std::cout << "\n--- task lineage (" << key.to_string() << ") ---\n"
              << prov::render_lineage(*lineage);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
