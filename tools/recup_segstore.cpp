// recup_segstore — operator CLI for the durable columnar segment store.
//
//   recup_segstore synth DIR [--runs N] [--seed S] [--tasks T]
//       Ingest N deterministic synthetic runs through a durable
//       StoreCatalog so DIR holds a real store (demo / test fixture).
//   recup_segstore ls DIR
//       Print the committed manifest: run order, views, segment files,
//       chunk row counts.
//   recup_segstore fsck DIR
//       Full verification pass: every referenced segment is CRC-scanned
//       and decoded, and the manifest's chunk metadata / zone maps are
//       cross-checked against values recomputed from the decoded data.
//       Exits 1 when anything fails; run_checks.sh runs this stage.
//   recup_segstore compact DIR
//       One compaction pass (merge small per-view segments) + garbage
//       collection; prints what changed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "query/catalog.hpp"
#include "segstore/store.hpp"

using namespace recup;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: recup_segstore <synth|ls|fsck|compact> DIR [options]\n"
               "  synth options: --runs N (default 3), --seed S (default 42),\n"
               "                 --tasks T rows per run (default 500)\n");
  return 2;
}

/// Same deterministic generator family as recup_query --synthetic, sized
/// down: the tool seeds fixture stores, it does not benchmark.
dtr::RunData synthetic_run(std::uint32_t index, std::uint64_t seed,
                           int tasks) {
  dtr::RunData run;
  run.meta.workflow = "Synthetic";
  run.meta.run_index = index;
  run.meta.seed = seed;
  const char* prefixes[] = {"read_parquet", "train", "predict", "reduce"};
  std::uint64_t state = seed + index * 7919 + 1;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < tasks; ++i) {
    dtr::TaskRecord t;
    t.key = {std::string(prefixes[i % 4]) + "-syn", i};
    t.graph = "g" + std::to_string(i % 2);
    t.prefix = prefixes[i % 4];
    t.worker = static_cast<dtr::WorkerId>(next() % 8);
    t.worker_address = "tcp://10.0.0." + std::to_string(t.worker);
    t.thread_id = 1000 + t.worker * 4 + next() % 4;
    t.start_time = 0.01 * i;
    t.end_time =
        t.start_time + 0.05 + 0.001 * static_cast<double>(next() % 100);
    t.compute_time = 0.8 * (t.end_time - t.start_time);
    t.output_bytes = 1024 * (next() % 512);
    run.tasks.push_back(t);

    dtr::TransitionRecord tr;
    tr.key = t.key;
    tr.graph = t.graph;
    tr.from_state = "processing";
    tr.to_state = "memory";
    tr.stimulus = "task-finished";
    tr.location = t.worker_address;
    tr.time = t.end_time;
    run.transitions.push_back(tr);
  }
  return run;
}

int cmd_synth(const std::string& dir, int runs, std::uint64_t seed,
              int tasks) {
  segstore::SegmentStoreConfig config;
  config.dir = dir;
  query::StoreCatalog catalog(config);
  const auto before = catalog.snapshot().epoch();
  for (int r = 0; r < runs; ++r) {
    catalog.add_run(synthetic_run(static_cast<std::uint32_t>(r), seed, tasks));
  }
  const auto after = catalog.snapshot().epoch();
  std::printf("synth: %llu run(s) committed (epoch %llu -> %llu) in %s\n",
              static_cast<unsigned long long>(after - before),
              static_cast<unsigned long long>(before),
              static_cast<unsigned long long>(after), dir.c_str());
  return 0;
}

int cmd_ls(const std::string& dir) {
  segstore::SegmentStoreConfig config;
  config.dir = dir;
  config.read_only = true;
  segstore::SegmentStore store(config);
  const auto version = store.version();
  std::printf("epoch %llu, %zu run(s), %zu view(s)\n",
              static_cast<unsigned long long>(version->committed_runs),
              version->run_order.size(), version->views.size());
  for (const auto& run : version->run_order) {
    std::printf("  run %s\n", run.display().c_str());
  }
  for (const auto& [view, segments] : version->views) {
    std::printf("  view %s: %zu segment(s)\n", view.c_str(), segments.size());
    for (const auto& segment : segments) {
      std::uint64_t rows = 0;
      for (const auto& chunk : segment->chunks) rows += chunk.rows;
      std::printf("    %s  %llu bytes, %zu chunk(s), %llu rows\n",
                  segment->file.c_str(),
                  static_cast<unsigned long long>(segment->file_bytes),
                  segment->chunks.size(),
                  static_cast<unsigned long long>(rows));
    }
  }
  return 0;
}

int cmd_fsck(const std::string& dir) {
  segstore::SegmentStoreConfig config;
  config.dir = dir;
  config.read_only = true;
  segstore::SegmentStore store(config);
  const auto report = store.fsck();
  std::printf("fsck: %zu segment(s), %zu chunk(s), %llu row(s) checked\n",
              report.segments_checked, report.chunks_checked,
              static_cast<unsigned long long>(report.rows_checked));
  for (const std::string& error : report.errors) {
    std::fprintf(stderr, "fsck error: %s\n", error.c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "fsck: FAILED (%zu error(s))\n",
                 report.errors.size());
    return 1;
  }
  std::printf("fsck: OK\n");
  return 0;
}

int cmd_compact(const std::string& dir) {
  segstore::SegmentStoreConfig config;
  config.dir = dir;
  segstore::SegmentStore store(config);
  const std::size_t merges = store.compact();
  const std::size_t deleted = store.collect_garbage();
  std::printf("compact: %zu merge commit(s), %zu file(s) collected\n", merges,
              deleted);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];
  int runs = 3;
  int tasks = 500;
  std::uint64_t seed = 42;
  for (int i = 3; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--runs") == 0) {
      runs = std::atoi(need("--runs"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--tasks") == 0) {
      tasks = std::atoi(need("--tasks"));
    } else {
      return usage();
    }
  }
  try {
    if (cmd == "synth") return cmd_synth(dir, runs, seed, tasks);
    if (cmd == "ls") return cmd_ls(dir);
    if (cmd == "fsck") return cmd_fsck(dir);
    if (cmd == "compact") return cmd_compact(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "recup_segstore %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
