// recup-report: command-line analysis of a persisted run directory, in the
// spirit of darshan-parser / PyDarshan's CLI on top of PERFRECUP views.
//
//   recup_report <run-dir> summary
//   recup_report <run-dir> phases
//   recup_report <run-dir> categories [top]
//   recup_report <run-dir> warnings [bin-seconds]
//   recup_report <run-dir> timeline [width]
//   recup_report <run-dir> comm
//   recup_report <run-dir> lineage <group> <index>
//   recup_report <run-dir> window <begin> <end>
//   recup_report <run-dir> chart
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/figures.hpp"
#include "analysis/views.hpp"
#include "darshan/heatmap.hpp"
#include "dtr/recorder.hpp"
#include "prov/chart.hpp"
#include "prov/lineage.hpp"

using namespace recup;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: recup_report <run-dir> "
               "summary|phases|categories|warnings|timeline|comm|heatmap|lineage|"
               "window|chart [args]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string dir = argv[1];
  const std::string command = argv[2];

  dtr::RunData run;
  try {
    run = dtr::read_run_dir(dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot read run directory %s: %s\n", dir.c_str(),
                 e.what());
    return 1;
  }

  if (command == "summary") {
    std::printf("workflow:   %s (run %u, seed %llu)\n",
                run.meta.workflow.c_str(), run.meta.run_index,
                static_cast<unsigned long long>(run.meta.seed));
    std::printf("wall time:  %.3f s (coordination %.3f s)\n",
                run.meta.wall_time(), run.coordination_time);
    std::printf("graphs:     %zu\n", run.graph_count);
    std::printf("tasks:      %zu\n", run.tasks.size());
    std::printf("transitions:%zu\n", run.transitions.size());
    std::printf("transfers:  %zu\n", run.comms.size());
    std::printf("warnings:   %zu\n", run.warnings.size());
    std::printf("steals:     %zu\n", run.steals.size());
    std::printf("kernels:    %zu\n", run.kernels.size());
    std::printf("darshan:    %zu worker logs\n", run.darshan_logs.size());
    return 0;
  }
  if (command == "phases") {
    const analysis::PhaseBreakdown p = analysis::phase_breakdown(run);
    std::printf("io:           %10.4f s over %llu ops\n", p.io_time,
                static_cast<unsigned long long>(p.io_ops));
    std::printf("communication:%10.4f s over %llu transfers\n", p.comm_time,
                static_cast<unsigned long long>(p.comm_count));
    std::printf("computation:  %10.4f s\n", p.compute_time);
    std::printf("wall:         %10.4f s\n", p.wall_time);
    std::printf("coordination: %10.4f s\n", p.coordination_time);
    return 0;
  }
  if (command == "categories") {
    const std::size_t top =
        argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 10;
    std::cout << analysis::render_figure6(run, top);
    return 0;
  }
  if (command == "warnings") {
    const double bin = argc > 3 ? std::atof(argv[3]) : 50.0;
    std::cout << analysis::render_figure7(
        analysis::figure7_histogram(run, bin));
    return 0;
  }
  if (command == "timeline") {
    const std::size_t width =
        argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 100;
    std::cout << analysis::render_figure4(run, width);
    return 0;
  }
  if (command == "comm") {
    std::cout << analysis::render_figure5(run);
    return 0;
  }
  if (command == "lineage") {
    if (argc < 5) return usage();
    const dtr::TaskKey key{argv[3], std::atoll(argv[4])};
    const auto lineage = prov::task_lineage(run, key);
    if (!lineage) {
      std::fprintf(stderr, "no such task: %s\n", key.to_string().c_str());
      return 1;
    }
    std::cout << prov::render_lineage(*lineage);
    return 0;
  }
  if (command == "window") {
    if (argc < 5) return usage();
    const analysis::DataFrame window =
        analysis::window_view(run, std::atof(argv[3]), std::atof(argv[4]));
    std::cout << window.describe(50);
    return 0;
  }
  if (command == "heatmap") {
    const double bin = argc > 3 ? std::atof(argv[3]) : 1.0;
    std::vector<darshan::DxtRecord> all_dxt;
    for (const auto& log : run.darshan_logs) {
      all_dxt.insert(all_dxt.end(), log.dxt.begin(), log.dxt.end());
    }
    std::cout << darshan::Heatmap::from_dxt(
                     all_dxt, darshan::HeatmapConfig{bin, 4096})
                     .render(100);
    return 0;
  }
  if (command == "chart") {
    std::cout << prov::render_chart(prov::provenance_chart(run));
    return 0;
  }
  return usage();
}
