#!/usr/bin/env bash
# Full check pipeline: the tier-1 verify line (build + ctest), the 10-seed
# crash-recovery oracle, then an AddressSanitizer + UndefinedBehaviorSanitizer
# test pass (RECUP_SANITIZE) and a ThreadSanitizer pass (RECUP_TSAN) over the
# concurrency-heavy subsystems (mofka delivery, chaos pipeline, query
# service, durability/recovery).
#
# Usage: tools/run_checks.sh [--skip-sanitize] [--skip-tsan] [--skip-bench]
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root=$(pwd)

skip_sanitize=0
skip_tsan=0
skip_bench=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) skip_sanitize=1 ;;
    --skip-tsan) skip_tsan=1 ;;
    --skip-bench) skip_bench=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Per-test watchdog: a hung recovery loop (missed lease, stuck replay)
# should fail that one test, not wedge the whole pipeline.
ctest_timeout=300

# Guard against silently-empty --gtest_filter runs: a renamed suite would
# otherwise turn a filtered stage into a no-op that always "passes".
require_filter_matches() {
  local binary=$1 filter=$2
  local matches
  matches=$("$binary" --gtest_list_tests --gtest_filter="$filter" 2>/dev/null |
    grep -c '^  ' || true)
  if [[ "$matches" -eq 0 ]]; then
    echo "error: --gtest_filter='$filter' matches no tests in $binary" >&2
    exit 1
  fi
}

echo "== tier-1 verify: build + ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j"$(nproc)" --timeout "$ctest_timeout")

echo "== crash-recovery oracle: 10-seed byte-identity check =="
# The durability stack end to end: WAL-backed broker, scheduler
# checkpoint/journal restart, and durable ingest cursors under injected
# process crashes. Every seed must reproduce the fault-free views exactly.
require_filter_matches ./build/tests/test_recovery \
  '*CrashRecoveryOracle*:SchedulerLease.*:SchedulerBatchedJournal.*'
./build/tests/test_recovery \
  --gtest_filter='*CrashRecoveryOracle*:SchedulerLease.*:SchedulerBatchedJournal.*' \
  >/dev/null
echo "crash-recovery oracle passed"

echo "== datastore chaos oracle: 10-seed byte-identity under data-plane faults =="
# The out-of-band data plane under randomized fetch-frame drops/truncations
# and forced evictions: wire retries + fingerprint validation must keep
# every provenance view byte-identical to the fault-free run.
require_filter_matches ./build/tests/test_datastore \
  '*DatastoreChaosOracle*:DataStoreCluster.*'
./build/tests/test_datastore \
  --gtest_filter='*DatastoreChaosOracle*:DataStoreCluster.*' >/dev/null
echo "datastore chaos oracle passed"

echo "== scheduler conformance: state-machine suite + 10-seed topology equivalence =="
# Property-based conformance over random DAGs and worker-kill interleavings
# (legal transition edges, dispatch causality, termination), then the
# equivalence oracle: sharded/hierarchical topologies must reproduce the flat
# scheduler's provenance views byte for byte, with and without chaos faults.
./build/tests/test_scheduler_statemachine >/dev/null
require_filter_matches ./build/tests/test_chaos '*SchedulerEquivalence*'
./build/tests/test_chaos --gtest_filter='*SchedulerEquivalence*' >/dev/null
echo "scheduler conformance passed"

echo "== segstore: 10-seed cold-start oracle + on-disk fsck =="
# The durable columnar segment store: crash-during-flush/compact chaos with
# cold-open byte-identity against in-memory re-ingestion, then an actual
# on-disk store seeded by the CLI and verified by recup_segstore fsck
# (CRC-checked footers + zone maps recomputed from decoded data).
require_filter_matches ./build/tests/test_segstore \
  '*SegstoreCrashOracle*:SegstoreSnapshot.*'
./build/tests/test_segstore \
  --gtest_filter='*SegstoreCrashOracle*:SegstoreSnapshot.*' >/dev/null
segstore_dir=$(mktemp -d "${TMPDIR:-/tmp}/recup_checks_segstore.XXXXXX")
./build/tools/recup_segstore synth "$segstore_dir/store" --runs 5 >/dev/null
./build/tools/recup_segstore fsck "$segstore_dir/store" >/dev/null
./build/tools/recup_segstore compact "$segstore_dir/store" >/dev/null
./build/tools/recup_segstore fsck "$segstore_dir/store" >/dev/null
rm -rf "$segstore_dir"
echo "segstore oracle + fsck passed"

if [[ "$skip_bench" == 1 ]]; then
  echo "== perf trajectory skipped (--skip-bench) =="
else
  echo "== perf trajectory: bench headlines vs committed baseline =="
  # Re-run the query, datastore, and scheduler benches and compare their
  # headline metrics (cold query latencies, wire compression ratio, ingest
  # rates, scheduler transitions/sec) against the last entry in
  # bench_out/trajectory.json. Any metric more than its allowed margin worse —
  # direction-aware — fails the pipeline. After an intentional perf change,
  # refresh the baseline with:
  #   build/tools/bench_trajectory record --trajectory bench_out/trajectory.json \
  #     --label <pr-tag> BENCH_query.json
  bench_dir=$(mktemp -d "${TMPDIR:-/tmp}/recup_checks_bench.XXXXXX")
  (cd "$bench_dir" && "$repo_root/build/bench/bench_query" --out "$bench_dir/out" \
    >/dev/null 2>&1)
  (cd "$bench_dir" && "$repo_root/build/bench/bench_datastore" \
    --out "$bench_dir/out" >/dev/null 2>&1)
  # bench_scheduler exits nonzero if the hierarchical topology drops below
  # the 100k transitions/sec floor, independent of the trajectory delta.
  (cd "$bench_dir" && "$repo_root/build/bench/bench_scheduler" \
    --out "$bench_dir/out" >/dev/null 2>&1)
  ./build/tools/bench_trajectory check \
    --trajectory bench_out/trajectory.json --threshold 15 \
    "$bench_dir/BENCH_query.json" "$bench_dir/BENCH_datastore.json" \
    "$bench_dir/BENCH_scheduler.json"
  rm -rf "$bench_dir"
fi

if [[ "$skip_sanitize" == 1 ]]; then
  echo "== sanitizer pass skipped (--skip-sanitize) =="
  exit 0
fi

echo "== sanitizer pass: ASan + UBSan =="
cmake -B build-asan -S . -DRECUP_SANITIZE=ON -DRECUP_BUILD_BENCH=OFF \
  -DRECUP_BUILD_EXAMPLES=OFF
cmake --build build-asan -j
(cd build-asan && \
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --output-on-failure -j"$(nproc)" --timeout "$ctest_timeout")

echo "== sanitized query service: concurrent smoke + short bench =="
# The query server/ingestor are the most concurrency-heavy code in the repo;
# run their test binary and a short multi-client bench under the sanitizers
# explicitly (ctest above already covers test_query, but the bench path
# exercises the CLI wiring too).
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/test_query \
  --gtest_filter='QueryIngestTest.*:QueryServer.*' >/dev/null
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tools/recup_query --synthetic 2 --bench 4 10 >/dev/null
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/test_recovery >/dev/null

echo "== sanitized datastore: blob spill/eviction + concurrent store smoke =="
# The datastore moves raw payload bytes through warabi regions, spill files,
# and wire frames — exactly where an off-by-one read corrupts silently. The
# concurrency smoke (real publisher/fetcher/evictor threads) and the
# BlobStore locking-contract hammer run under ASan/UBSan explicitly.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/test_datastore >/dev/null
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/test_mochi --gtest_filter='Warabi.*' >/dev/null

echo "== sanitized segstore: read replicas under concurrent queries =="
# Two read-only replicas serve one segment directory while a writer keeps
# flushing and compacting; every decode runs over mmap'ed bytes, exactly
# where a stale pointer or short read corrupts silently.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/test_segstore \
  --gtest_filter='SegstoreReplica.*:SegstoreSnapshot.*' >/dev/null

echo "== sanitized wire codec: round-trip + corrupt-frame suite =="
# The binary codec parses untrusted bytes (truncated frames, corrupt tags,
# lying length prefixes); run its property suite under ASan/UBSan where an
# out-of-bounds read or overflow actually traps.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/test_wire >/dev/null

if [[ "$skip_tsan" == 1 ]]; then
  echo "== TSan pass skipped (--skip-tsan) =="
  exit 0
fi

echo "== TSan pass: concurrent delivery, chaos, and query smokes =="
# ThreadSanitizer is incompatible with ASan, so it gets its own build tree.
# Run the binaries that exercise real threads: the mofka producer/consumer
# (background flush thread vs push/flush/destructor), the chaos pipeline
# (fault injection on those same paths), and the multi-client query service.
cmake -B build-tsan -S . -DRECUP_TSAN=ON -DRECUP_BUILD_BENCH=OFF \
  -DRECUP_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_mofka >/dev/null
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_chaos >/dev/null
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_query \
  --gtest_filter='QueryIngestTest.*:QueryServer.*' >/dev/null
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_recovery >/dev/null
# The datastore's mutex discipline (single store mutex + per-shard BlobStore
# mutexes) and the warabi locking contract, under real racing threads.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_datastore \
  --gtest_filter='DataStoreConcurrency.*:WarabiCapacity.*' >/dev/null
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_mochi \
  --gtest_filter='Warabi.*' >/dev/null
# Scheduler intake + shard hammers: real producer threads pushing into the
# MPSC intake queue while the main thread drains batches, and concurrent
# try_emplace/find/for_each across ShardedTaskMap shards.
require_filter_matches ./build-tsan/tests/test_scheduler_statemachine \
  'SchedulerIntakeConcurrency.*:ShardedTaskMapConcurrency.*'
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_scheduler_statemachine \
  --gtest_filter='SchedulerIntakeConcurrency.*:ShardedTaskMapConcurrency.*' \
  >/dev/null
# Segment store under real racing threads: replica refresh + mmap reads vs
# a live writer's flush/compact/GC, and snapshot pins across compaction.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_segstore \
  --gtest_filter='SegstoreReplica.*:SegstoreSnapshot.*' >/dev/null
# Parallel-kernel smoke: force the morsel pool to multiple workers so the
# columnar scan/aggregate fan-outs actually race under TSan.
RECUP_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/test_dataframe >/dev/null
RECUP_THREADS=4 TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/test_query \
  --gtest_filter='QueryExec.*:QueryWire.*' >/dev/null

echo "== all checks passed (${repo_root}) =="
