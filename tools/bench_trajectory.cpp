// Perf-trajectory tracker over the bench suite's BENCH_*.json summaries.
//
// Every bench binary drops stable headline metrics ({name, value, unit,
// higher_is_better}) into its summary file; this tool folds them into a
// committed trajectory file and gates regressions against it:
//
//   bench_trajectory record --trajectory bench_out/trajectory.json
//       [--label vN] BENCH_query.json [BENCH_overhead.json ...]
//     appends one trajectory entry holding every headline found.
//
//   bench_trajectory check --trajectory bench_out/trajectory.json
//       [--threshold 15] BENCH_query.json [...]
//     compares current headlines against the most recent trajectory entry,
//     direction-aware (a qps drop and a latency rise are both regressions),
//     prints a delta table, and exits 1 if any metric regressed by more
//     than the threshold percentage. Headlines absent from the baseline
//     are reported as new and never fail the check.
//
// The trajectory file is meant to be committed alongside bench_out/ CSVs,
// so each PR's headline numbers are compared against the previous PR's.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json/json.hpp"

using recup::json::Array;
using recup::json::Object;
using recup::json::Value;

namespace {

struct Headline {
  std::string name;
  double value = 0.0;
  std::string unit;
  bool higher_is_better = false;
  double noise_pct = 0.0;  // per-metric gate widening (0 = global threshold)
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_trajectory: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Headlines of one BENCH_<name>.json summary (empty if it has none).
std::vector<Headline> load_headlines(const std::string& path) {
  const Value doc = recup::json::parse(read_file(path));
  std::vector<Headline> out;
  if (!doc.is_object() || !doc.contains("headlines")) return out;
  for (const Value& row : doc.at("headlines").as_array()) {
    Headline h;
    h.name = row.get_string("name", "");
    h.value = row.get_double("value", 0.0);
    h.unit = row.get_string("unit", "");
    h.higher_is_better = row.get_bool("higher_is_better", false);
    h.noise_pct = row.get_double("noise_pct", 0.0);
    if (!h.name.empty()) out.push_back(std::move(h));
  }
  return out;
}

Value load_trajectory(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    Object fresh;
    fresh["entries"] = Array{};
    return fresh;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return recup::json::parse(buf.str());
}

int cmd_record(const std::string& trajectory_path, const std::string& label,
               const std::vector<std::string>& summaries) {
  Value doc = load_trajectory(trajectory_path);
  Array headline_rows;
  for (const std::string& path : summaries) {
    for (const Headline& h : load_headlines(path)) {
      Object row;
      row["name"] = h.name;
      row["value"] = h.value;
      row["unit"] = h.unit;
      row["higher_is_better"] = h.higher_is_better;
      if (h.noise_pct > 0.0) row["noise_pct"] = h.noise_pct;
      headline_rows.emplace_back(std::move(row));
    }
  }
  if (headline_rows.empty()) {
    std::fprintf(stderr, "bench_trajectory: no headlines found, recording "
                         "nothing\n");
    return 2;
  }
  Object entry;
  entry["label"] = label;
  entry["headlines"] = std::move(headline_rows);
  Object out = doc.as_object();
  Array entries =
      out.count("entries") != 0 ? out["entries"].as_array() : Array{};
  entries.emplace_back(std::move(entry));
  const std::size_t count = entries.size();
  out["entries"] = std::move(entries);
  std::ofstream file(trajectory_path, std::ios::trunc);
  file << Value(std::move(out)).dump(2) << "\n";
  std::printf("recorded trajectory entry %zu (%s) to %s\n", count,
              label.c_str(), trajectory_path.c_str());
  return 0;
}

int cmd_check(const std::string& trajectory_path, double threshold_pct,
              const std::vector<std::string>& summaries) {
  const Value doc = load_trajectory(trajectory_path);
  if (!doc.is_object() || !doc.contains("entries") ||
      !doc.at("entries").is_array()) {
    std::fprintf(stderr,
                 "bench_trajectory: %s is not a trajectory file (no "
                 "\"entries\" array); record a baseline first\n",
                 trajectory_path.c_str());
    return 2;
  }
  const Array& entries = doc.at("entries").as_array();
  if (entries.empty()) {
    std::fprintf(stderr,
                 "bench_trajectory: %s has no entries; record a baseline "
                 "first\n",
                 trajectory_path.c_str());
    return 2;
  }
  const Value& last = entries.back();
  if (!last.is_object() || !last.contains("headlines") ||
      !last.at("headlines").is_array() ||
      last.at("headlines").as_array().empty()) {
    // A baseline with no headlines would make every comparison vacuously
    // pass as "new" — that is a broken trajectory, not a green check.
    std::fprintf(stderr,
                 "bench_trajectory: last entry in %s has no headlines; "
                 "re-record the baseline\n",
                 trajectory_path.c_str());
    return 2;
  }
  std::map<std::string, Headline> baseline;
  for (const Value& row : last.at("headlines").as_array()) {
    Headline h;
    h.name = row.get_string("name", "");
    h.value = row.get_double("value", 0.0);
    h.unit = row.get_string("unit", "");
    h.higher_is_better = row.get_bool("higher_is_better", false);
    h.noise_pct = row.get_double("noise_pct", 0.0);
    baseline[h.name] = std::move(h);
  }

  int regressions = 0;
  std::size_t compared = 0;
  std::printf("%-44s %12s %12s %9s\n", "metric", "baseline", "current",
              "delta");
  for (const std::string& path : summaries) {
    for (const Headline& h : load_headlines(path)) {
      const auto it = baseline.find(h.name);
      if (it == baseline.end()) {
        std::printf("%-44s %12s %12.4g %9s\n", h.name.c_str(), "-", h.value,
                    "new");
        continue;
      }
      ++compared;
      const Headline& base = it->second;
      // Positive delta = regression, regardless of direction.
      double delta_pct = 0.0;
      if (base.value != 0.0) {
        delta_pct = (h.value - base.value) / base.value * 100.0;
        if (base.higher_is_better) delta_pct = -delta_pct;
      }
      // A metric may declare an honest noise band wider than the global
      // gate (microsecond tails on a shared box); the wider of the two
      // wins, taken from either side so re-recording keeps it sticky.
      const double gate_pct =
          std::max({threshold_pct, h.noise_pct, base.noise_pct});
      const bool fail = delta_pct > gate_pct;
      std::printf("%-44s %12.4g %12.4g %+8.1f%%%s\n", h.name.c_str(),
                  base.value, h.value, delta_pct,
                  fail ? "  REGRESSION" : "");
      if (fail) ++regressions;
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_trajectory: no current headline matched the "
                         "baseline\n");
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_trajectory: %d metric(s) regressed past their "
                 "gate (global %.0f%%)\n",
                 regressions, threshold_pct);
    return 1;
  }
  std::printf("trajectory check passed (%zu metrics within %.0f%%)\n",
              compared, threshold_pct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s record|check --trajectory FILE [--label L] "
                 "[--threshold PCT] BENCH_*.json...\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  std::string trajectory_path = "bench_out/trajectory.json";
  std::string label = "run";
  double threshold_pct = 15.0;
  std::vector<std::string> summaries;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trajectory") == 0 && i + 1 < argc) {
      trajectory_path = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold_pct = std::atof(argv[++i]);
    } else {
      summaries.emplace_back(argv[i]);
    }
  }
  if (summaries.empty()) {
    std::fprintf(stderr, "bench_trajectory: no BENCH_*.json inputs given\n");
    return 2;
  }
  if (mode == "record") return cmd_record(trajectory_path, label, summaries);
  if (mode == "check") return cmd_check(trajectory_path, threshold_pct,
                                        summaries);
  std::fprintf(stderr, "bench_trajectory: unknown mode '%s'\n", mode.c_str());
  return 2;
}
