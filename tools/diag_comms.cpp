// Diagnostic: run one workload and break down communications and I/O ops by
// task-key prefix, to see which graph stages generate transfers/spills.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "analysis/views.hpp"
#include "workloads/registry.hpp"
#include "workloads/xgboost.hpp"

using namespace recup;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "XGBOOST";
  const workloads::Workload w = workloads::make_workload(name, 42);
  const dtr::RunData run = workloads::execute(w, 0);

  std::map<std::string, std::size_t> comm_by_prefix;
  std::map<std::string, std::uint64_t> comm_bytes;
  for (const auto& c : run.comms) {
    ++comm_by_prefix[c.key.prefix()];
    comm_bytes[c.key.prefix()] += c.bytes;
  }
  std::printf("=== comms by producing-task prefix (total %zu) ===\n",
              run.comms.size());
  for (const auto& [prefix, count] : comm_by_prefix) {
    std::printf("  %-32s %6zu  (%.1f MiB avg)\n", prefix.c_str(), count,
                static_cast<double>(comm_bytes[prefix]) /
                    static_cast<double>(count) / (1024.0 * 1024.0));
  }

  std::map<std::string, std::size_t> io_by_dir;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const auto& log : run.darshan_logs) {
    for (const auto& rec : log.dxt) {
      std::string dir = rec.file_path.substr(0, rec.file_path.rfind('/'));
      io_by_dir[dir] += rec.segments.size();
      for (const auto& seg : rec.segments) {
        (seg.op == darshan::IoOp::kRead ? reads : writes) += 1;
      }
    }
  }
  std::printf("\n=== dxt ops by directory (reads %llu writes %llu) ===\n",
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(writes));
  for (const auto& [dir, count] : io_by_dir) {
    std::printf("  %-40s %6zu\n", dir.c_str(), count);
  }
  std::printf("\nwall %.1fs  steals %zu  warnings %zu (first500s loop: ",
              run.meta.wall_time(), run.steals.size(), run.warnings.size());
  std::size_t early = 0;
  for (const auto& warn : run.warnings) {
    if (warn.kind == "event_loop_unresponsive" && warn.time < 500) ++early;
  }
  std::printf("%zu)\n", early);
  return 0;
}
