// recup-query: command-line front end of the provenance query service.
//
// One-shot execution (query JSON as the positional argument, or "-" for
// stdin), plan inspection with --explain, and a concurrent latency/
// throughput benchmark with --bench. The store is populated from persisted
// run directories, freshly executed workloads, or fast synthetic runs (the
// default, so the tool works out of the box and in CI).
//
//   recup_query '{"from": "tasks", "group_by": ["prefix"], ...}'
//   recup_query --run-dir out/run0 --explain '{"from": "task_io", ...}'
//   recup_query --workload XGBOOST --runs 3 '{"from": "warnings"}'
//   recup_query --synthetic 4 --bench 8 50
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dtr/recorder.hpp"
#include "query/client.hpp"
#include "query/ir.hpp"
#include "query/plan.hpp"
#include "query/server.hpp"
#include "segstore/store.hpp"
#include "workloads/registry.hpp"

using namespace recup;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: recup_query [options] [QUERY_JSON | -]\n"
      "  --run-dir DIR     ingest a persisted run directory (repeatable)\n"
      "  --store DIR       durable segment-store directory: runs ingested\n"
      "                    now flush there, and runs committed by earlier\n"
      "                    invocations are served without re-ingestion\n"
      "  --workload NAME   execute a workload and ingest it (repeatable)\n"
      "  --runs N          runs per --workload (default 1)\n"
      "  --synthetic N     ingest N fast synthetic runs (default store: 2)\n"
      "  --explain         print the plan instead of executing\n"
      "  --bench C Q       C client threads x Q queries each, cold vs cached\n"
      "  --workers N       server worker threads (default 4)\n"
      "  --seed S          workload / synthetic seed (default 42)\n");
  return 2;
}

/// Deterministic synthetic run: enough rows and groups for the planner,
/// cache, and bench paths to be exercised without simulating a workflow.
dtr::RunData synthetic_run(std::uint32_t index, std::uint64_t seed,
                           int tasks = 2000) {
  dtr::RunData run;
  run.meta.workflow = "Synthetic";
  run.meta.run_index = index;
  run.meta.seed = seed;
  const char* prefixes[] = {"read_parquet", "train", "predict", "reduce"};
  std::uint64_t state = seed + index * 7919 + 1;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < tasks; ++i) {
    dtr::TaskRecord t;
    t.key = {std::string(prefixes[i % 4]) + "-syn", i};
    t.graph = "g" + std::to_string(i % 2);
    t.prefix = prefixes[i % 4];
    t.worker = static_cast<dtr::WorkerId>(next() % 8);
    t.worker_address = "tcp://10.0.0." + std::to_string(t.worker);
    t.thread_id = 1000 + t.worker * 4 + next() % 4;
    t.start_time = 0.01 * i;
    t.end_time = t.start_time + 0.05 + 0.001 * static_cast<double>(next() % 100);
    t.compute_time = 0.8 * (t.end_time - t.start_time);
    t.output_bytes = 1024 * (next() % 512);
    run.tasks.push_back(t);

    dtr::TransitionRecord tr;
    tr.key = t.key;
    tr.graph = t.graph;
    tr.from_state = "processing";
    tr.to_state = "memory";
    tr.stimulus = "task-finished";
    tr.location = t.worker_address;
    tr.time = t.end_time;
    run.transitions.push_back(tr);

    if (i % 3 == 0) {
      dtr::CommRecord c;
      c.key = t.key;
      c.source = t.worker;
      c.destination = static_cast<dtr::WorkerId>((t.worker + 1) % 8);
      c.bytes = t.output_bytes;
      c.start = t.end_time;
      c.end = t.end_time + 0.002;
      c.cross_node = (i % 6 == 0);
      run.comms.push_back(c);
    }
  }
  return run;
}

struct BenchNumbers {
  double cold_ms = 0.0;
  double cached_ms = 0.0;
  double throughput_qps = 0.0;
};

BenchNumbers run_bench(query::QueryServer& server, const json::Value& qdoc,
                       int clients, int per_client) {
  BenchNumbers out;
  query::QueryClient warmup(server);
  // Cold: first execution at this epoch (nothing cached yet).
  const query::QueryResponse cold = warmup.query(qdoc);
  if (!cold.ok) {
    std::fprintf(stderr, "bench query failed: %s\n", cold.error.c_str());
    std::exit(1);
  }
  out.cold_ms = cold.elapsed_ms;
  // Cached: the same fingerprint served from the result cache.
  double cached_sum = 0.0;
  constexpr int kCachedReps = 32;
  for (int i = 0; i < kCachedReps; ++i) {
    const query::QueryResponse r = warmup.query(qdoc);
    if (!r.cached) {
      std::fprintf(stderr, "expected a cache hit on repeat\n");
      std::exit(1);
    }
    cached_sum += r.elapsed_ms;
  }
  out.cached_ms = cached_sum / kCachedReps;

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&server, &qdoc, per_client] {
      query::QueryClient client(server);
      for (int i = 0; i < per_client; ++i) {
        const query::QueryResponse r = client.query(qdoc);
        if (!r.ok) {
          std::fprintf(stderr, "bench query failed: %s\n", r.error.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  out.throughput_qps =
      static_cast<double>(clients) * per_client / elapsed.count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> run_dirs;
  std::vector<std::string> workload_names;
  std::uint32_t runs_per_workload = 1;
  int synthetic = -1;  // -1 = only if nothing else populates the store
  bool explain = false;
  int bench_clients = 0;
  int bench_queries = 0;
  std::size_t workers = 4;
  std::uint64_t seed = 42;
  std::string store_dir;
  std::string query_text;

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--run-dir") == 0) {
      run_dirs.emplace_back(need("--run-dir"));
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store_dir = need("--store");
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      workload_names.emplace_back(need("--workload"));
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      runs_per_workload =
          static_cast<std::uint32_t>(std::atoi(need("--runs")));
    } else if (std::strcmp(argv[i], "--synthetic") == 0) {
      synthetic = std::atoi(need("--synthetic"));
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--bench") == 0) {
      bench_clients = std::atoi(need("--bench"));
      bench_queries = std::atoi(need("--bench"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = static_cast<std::size_t>(std::atoi(need("--workers")));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(need("--seed")));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return usage();
    } else if (!query_text.empty()) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return usage();
    } else {
      query_text = argv[i];
    }
  }

  std::unique_ptr<query::StoreCatalog> catalog_holder;
  try {
    if (store_dir.empty()) {
      catalog_holder = std::make_unique<query::StoreCatalog>();
    } else {
      segstore::SegmentStoreConfig store_config;
      store_config.dir = store_dir;
      catalog_holder = std::make_unique<query::StoreCatalog>(store_config);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "store open failed: %s\n", e.what());
    return 1;
  }
  query::StoreCatalog& catalog = *catalog_holder;
  try {
    for (const std::string& dir : run_dirs) {
      std::fprintf(stderr, "ingesting run directory %s ...\n", dir.c_str());
      catalog.add_run(dtr::read_run_dir(dir));
    }
    for (const std::string& name : workload_names) {
      const workloads::Workload workload = workloads::make_workload(name, seed);
      for (std::uint32_t r = 0; r < runs_per_workload; ++r) {
        std::fprintf(stderr, "executing %s run %u/%u ...\n", name.c_str(),
                     r + 1, runs_per_workload);
        catalog.add_run(workloads::execute(workload, r));
      }
    }
    if (synthetic < 0 && catalog.snapshot().epoch() == 0) synthetic = 2;
    for (int r = 0; r < synthetic; ++r) {
      catalog.add_run(synthetic_run(static_cast<std::uint32_t>(r), seed));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "store setup failed: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "store ready: epoch %llu\n",
               static_cast<unsigned long long>(catalog.snapshot().epoch()));

  if (query_text == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    query_text = buffer.str();
  }
  if (query_text.empty() && bench_clients <= 0) return usage();

  const std::string bench_default =
      R"({"from": "tasks", "group_by": ["prefix"],
          "aggregates": [{"col": "duration", "op": "mean", "as": "mean_d"},
                         {"col": "key", "op": "count", "as": "n"}],
          "order_by": {"col": "mean_d", "desc": true}})";
  json::Value qdoc;
  try {
    qdoc = query::to_json(query::parse_query(
        query_text.empty() ? bench_default : query_text));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "invalid query: %s\n", e.what());
    return 1;
  }

  query::ServerConfig config;
  config.workers = workers;
  query::QueryServer server(catalog, config);
  query::QueryClient client(server);

  if (bench_clients > 0) {
    if (bench_queries <= 0) bench_queries = 50;
    const BenchNumbers numbers =
        run_bench(server, qdoc, bench_clients, bench_queries);
    std::printf("bench: %d clients x %d queries\n", bench_clients,
                bench_queries);
    std::printf("  cold latency    %10.3f ms\n", numbers.cold_ms);
    std::printf("  cached latency  %10.3f ms  (%.1fx faster)\n",
                numbers.cached_ms,
                numbers.cached_ms > 0.0 ? numbers.cold_ms / numbers.cached_ms
                                        : 0.0);
    std::printf("  throughput      %10.0f q/s\n", numbers.throughput_qps);
    const query::ServerStats stats = server.stats();
    std::printf("  cache           %llu hits / %llu misses\n",
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses));
    return 0;
  }

  if (explain) {
    const query::QueryResponse response = client.explain(qdoc);
    if (!response.ok) {
      std::fprintf(stderr, "error: %s\n", response.error.c_str());
      return 1;
    }
    std::printf("%s", response.explain.c_str());
    return 0;
  }

  const query::QueryResponse response = client.query(qdoc);
  if (!response.ok) {
    std::fprintf(stderr, "error: %s\n", response.error.c_str());
    return 1;
  }
  std::printf("%s", response.frame.to_csv().c_str());
  std::fprintf(stderr, "%zu rows; epoch %llu; %s; %.3f ms\n",
               static_cast<std::size_t>(response.frame.rows()),
               static_cast<unsigned long long>(response.epoch),
               response.cached ? "cached" : "computed", response.elapsed_ms);
  return 0;
}
