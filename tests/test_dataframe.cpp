// DataFrame tests: schema/type discipline, relational operations, CSV
// round trips, and property-style parameterized checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "analysis/dataframe.hpp"
#include "common/rng.hpp"

namespace recup::analysis {
namespace {

DataFrame sample_frame() {
  DataFrame df({{"name", ColumnType::kString},
                {"group", ColumnType::kString},
                {"value", ColumnType::kDouble},
                {"count", ColumnType::kInt64}});
  df.add_row({"a", "x", 1.5, std::int64_t{1}});
  df.add_row({"b", "x", 2.5, std::int64_t{2}});
  df.add_row({"c", "y", 3.0, std::int64_t{3}});
  df.add_row({"d", "y", 4.0, std::int64_t{4}});
  return df;
}

TEST(DataFrame, SchemaAndAccess) {
  const DataFrame df = sample_frame();
  EXPECT_EQ(df.rows(), 4u);
  EXPECT_EQ(df.width(), 4u);
  EXPECT_TRUE(df.has_column("value"));
  EXPECT_FALSE(df.has_column("missing"));
  EXPECT_EQ(df.col("name").str(0), "a");
  EXPECT_DOUBLE_EQ(df.col("value").f64(1), 2.5);
  EXPECT_EQ(df.col("count").i64(2), 3);
  // Int column widens to double through f64.
  EXPECT_DOUBLE_EQ(df.col("count").f64(3), 4.0);
  EXPECT_THROW(df.col("missing"), DataFrameError);
  EXPECT_THROW(df.col("name").f64(0), DataFrameError);
  EXPECT_THROW(df.col("value").i64(0), DataFrameError);
}

TEST(DataFrame, TypeCheckedAppend) {
  DataFrame df({{"i", ColumnType::kInt64}});
  EXPECT_THROW(df.add_row({std::string("not-int")}), DataFrameError);
  EXPECT_THROW(df.add_row({std::int64_t{1}, std::int64_t{2}}),
               DataFrameError);
  // Int accepted into double columns.
  DataFrame dd({{"d", ColumnType::kDouble}});
  dd.add_row({std::int64_t{3}});
  EXPECT_DOUBLE_EQ(dd.col("d").f64(0), 3.0);
}

TEST(DataFrame, DuplicateColumnRejected) {
  EXPECT_THROW(DataFrame({{"a", ColumnType::kInt64},
                          {"a", ColumnType::kDouble}}),
               DataFrameError);
}

TEST(DataFrame, FilterKeepsMatchingRows) {
  const DataFrame df = sample_frame();
  const DataFrame filtered = df.filter([](const DataFrame& d, std::size_t r) {
    return d.col("value").f64(r) > 2.0;
  });
  EXPECT_EQ(filtered.rows(), 3u);
  EXPECT_EQ(filtered.col("name").str(0), "b");
}

TEST(DataFrame, SortByNumericAndString) {
  const DataFrame df = sample_frame();
  const DataFrame desc = df.sort_by("value", /*ascending=*/false);
  EXPECT_EQ(desc.col("name").str(0), "d");
  EXPECT_EQ(desc.col("name").str(3), "a");
  const DataFrame by_name = df.sort_by("name");
  EXPECT_EQ(by_name.col("name").str(0), "a");
}

TEST(DataFrame, SortIsStable) {
  DataFrame df({{"k", ColumnType::kInt64}, {"tag", ColumnType::kString}});
  df.add_row({std::int64_t{1}, "first"});
  df.add_row({std::int64_t{1}, "second"});
  df.add_row({std::int64_t{0}, "zero"});
  const DataFrame sorted = df.sort_by("k");
  EXPECT_EQ(sorted.col("tag").str(1), "first");
  EXPECT_EQ(sorted.col("tag").str(2), "second");
}

TEST(DataFrame, SelectAndHead) {
  const DataFrame df = sample_frame();
  const DataFrame sel = df.select({"value", "name"});
  EXPECT_EQ(sel.width(), 2u);
  EXPECT_EQ(sel.col(0).name(), "value");
  const DataFrame top = df.head(2);
  EXPECT_EQ(top.rows(), 2u);
  EXPECT_EQ(df.head(100).rows(), 4u);
}

TEST(DataFrame, GroupByAggregates) {
  const DataFrame df = sample_frame();
  const DataFrame grouped =
      df.group_by({"group"}, {{"value", Agg::kSum, "total"},
                              {"value", Agg::kMean, "avg"},
                              {"value", Agg::kMin, "lo"},
                              {"value", Agg::kMax, "hi"},
                              {"", Agg::kCount, "n"},
                              {"name", Agg::kFirst, "first_name"}});
  EXPECT_EQ(grouped.rows(), 2u);
  const DataFrame x = grouped.filter([](const DataFrame& d, std::size_t r) {
    return d.col("group").str(r) == "x";
  });
  ASSERT_EQ(x.rows(), 1u);
  EXPECT_DOUBLE_EQ(x.col("total").f64(0), 4.0);
  EXPECT_DOUBLE_EQ(x.col("avg").f64(0), 2.0);
  EXPECT_DOUBLE_EQ(x.col("lo").f64(0), 1.5);
  EXPECT_DOUBLE_EQ(x.col("hi").f64(0), 2.5);
  EXPECT_EQ(x.col("n").i64(0), 2);
  EXPECT_EQ(x.col("first_name").str(0), "a");
}

TEST(DataFrame, GroupByStd) {
  DataFrame df({{"g", ColumnType::kString}, {"v", ColumnType::kDouble}});
  df.add_row({"a", 2.0});
  df.add_row({"a", 4.0});
  const DataFrame grouped = df.group_by({"g"}, {{"v", Agg::kStd, "sd"}});
  EXPECT_NEAR(grouped.col("sd").f64(0), std::sqrt(2.0), 1e-12);
}

TEST(DataFrame, GroupByCountDistinct) {
  DataFrame df({{"g", ColumnType::kString},
                {"who", ColumnType::kString},
                {"thread", ColumnType::kInt64},
                {"t", ColumnType::kDouble}});
  df.add_row({"x", "a", std::int64_t{7}, 1.0});
  df.add_row({"x", "a", std::int64_t{8}, 1.0});
  df.add_row({"x", "b", std::int64_t{7}, 2.0});
  df.add_row({"y", "c", std::int64_t{9}, 3.0});
  const DataFrame grouped =
      df.group_by({"g"}, {{"who", Agg::kCountDistinct, "n_who"},
                          {"thread", Agg::kCountDistinct, "n_threads"},
                          {"t", Agg::kCountDistinct, "n_times"}});
  ASSERT_EQ(grouped.rows(), 2u);
  EXPECT_EQ(grouped.col("g").str(0), "x");
  EXPECT_EQ(grouped.col("n_who").i64(0), 2);
  EXPECT_EQ(grouped.col("n_threads").i64(0), 2);
  EXPECT_EQ(grouped.col("n_times").i64(0), 2);
  EXPECT_EQ(grouped.col("n_who").i64(1), 1);
}

TEST(DataFrame, GroupByCountDistinctDoublesByBitPattern) {
  // 0.1 + 0.2 != 0.3 exactly: distinct bit patterns stay distinct even
  // though a lossy display form could collapse them.
  DataFrame df({{"g", ColumnType::kString}, {"v", ColumnType::kDouble}});
  df.add_row({"a", 0.1 + 0.2});
  df.add_row({"a", 0.3});
  df.add_row({"a", 0.3});
  const DataFrame grouped =
      df.group_by({"g"}, {{"v", Agg::kCountDistinct, "n"}});
  EXPECT_EQ(grouped.col("n").i64(0), 2);
}

TEST(DataFrame, GroupByStringMinMax) {
  DataFrame df({{"g", ColumnType::kString}, {"name", ColumnType::kString}});
  df.add_row({"x", "pear"});
  df.add_row({"x", "apple"});
  df.add_row({"x", "mango"});
  df.add_row({"y", "kiwi"});
  const DataFrame grouped =
      df.group_by({"g"}, {{"name", Agg::kMin, "first_name"},
                          {"name", Agg::kMax, "last_name"}});
  ASSERT_EQ(grouped.rows(), 2u);
  EXPECT_EQ(grouped.col("first_name").type(), ColumnType::kString);
  EXPECT_EQ(grouped.col("first_name").str(0), "apple");
  EXPECT_EQ(grouped.col("last_name").str(0), "pear");
  EXPECT_EQ(grouped.col("first_name").str(1), "kiwi");
  EXPECT_EQ(grouped.col("last_name").str(1), "kiwi");
}

TEST(DataFrame, InnerJoinMatchesKeys) {
  DataFrame left({{"id", ColumnType::kInt64}, {"l", ColumnType::kString}});
  left.add_row({std::int64_t{1}, "one"});
  left.add_row({std::int64_t{2}, "two"});
  left.add_row({std::int64_t{3}, "three"});
  DataFrame right({{"key", ColumnType::kInt64}, {"r", ColumnType::kString}});
  right.add_row({std::int64_t{2}, "TWO"});
  right.add_row({std::int64_t{3}, "THREE"});
  right.add_row({std::int64_t{3}, "TROIS"});  // multiple matches fan out
  const DataFrame joined = left.inner_join(right, {"id"}, {"key"});
  EXPECT_EQ(joined.rows(), 3u);
  EXPECT_EQ(joined.col("l").str(0), "two");
  EXPECT_EQ(joined.col("r").str(0), "TWO");
  EXPECT_EQ(joined.col("r").str(2), "TROIS");
}

TEST(DataFrame, JoinNameCollisionSuffixed) {
  DataFrame left({{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
  left.add_row({std::int64_t{1}, std::int64_t{10}});
  DataFrame right({{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
  right.add_row({std::int64_t{1}, std::int64_t{20}});
  const DataFrame joined = left.inner_join(right, {"id"}, {"id"});
  EXPECT_TRUE(joined.has_column("v"));
  EXPECT_TRUE(joined.has_column("v_right"));
  EXPECT_EQ(joined.col("v").i64(0), 10);
  EXPECT_EQ(joined.col("v_right").i64(0), 20);
}

TEST(DataFrame, JoinRequiresKeys) {
  const DataFrame df = sample_frame();
  EXPECT_THROW(df.inner_join(df, {}, {}), DataFrameError);
  EXPECT_THROW(df.inner_join(df, {"name"}, {"name", "group"}),
               DataFrameError);
}

TEST(DataFrame, ConcatAppendsRows) {
  const DataFrame df = sample_frame();
  const DataFrame both = df.concat(df);
  EXPECT_EQ(both.rows(), 8u);
  EXPECT_EQ(both.col("name").str(4), "a");
}

TEST(DataFrame, ColumnHelpers) {
  const DataFrame df = sample_frame();
  EXPECT_DOUBLE_EQ(df.sum("value"), 11.0);
  EXPECT_DOUBLE_EQ(df.mean("value"), 2.75);
  EXPECT_DOUBLE_EQ(df.min("count"), 1.0);
  EXPECT_DOUBLE_EQ(df.max("count"), 4.0);
  EXPECT_EQ(df.distinct("group"), (std::vector<std::string>{"x", "y"}));
}

TEST(DataFrame, CsvRoundTrip) {
  const DataFrame df = sample_frame();
  const DataFrame back = DataFrame::from_csv(df.to_csv());
  EXPECT_EQ(back.rows(), df.rows());
  EXPECT_EQ(back.col("name").str(2), "c");
  EXPECT_EQ(back.col("count").type(), ColumnType::kInt64);
  EXPECT_EQ(back.col("value").type(), ColumnType::kDouble);
  EXPECT_DOUBLE_EQ(back.col("value").f64(3), 4.0);
}

TEST(DataFrame, CsvQuotedFieldsSurvive) {
  DataFrame df({{"k", ColumnType::kString}});
  df.add_row({"('getitem-24266c', 63)"});
  df.add_row({"line\nbreak"});
  const DataFrame back = DataFrame::from_csv(df.to_csv());
  EXPECT_EQ(back.col("k").str(0), "('getitem-24266c', 63)");
  EXPECT_EQ(back.col("k").str(1), "line\nbreak");
}

TEST(DataFrame, CsvTypeInference) {
  const DataFrame df = DataFrame::from_csv("a,b,c\n1,1.5,x\n2,2.5,y\n");
  EXPECT_EQ(df.col("a").type(), ColumnType::kInt64);
  EXPECT_EQ(df.col("b").type(), ColumnType::kDouble);
  EXPECT_EQ(df.col("c").type(), ColumnType::kString);
}

TEST(DataFrame, CsvErrors) {
  EXPECT_THROW(DataFrame::from_csv(""), DataFrameError);
  EXPECT_THROW(DataFrame::from_csv("a,b\n1\n"), DataFrameError);
  EXPECT_THROW(DataFrame::from_csv_file("/no/such/file.csv"),
               DataFrameError);
}

// Doubles survive a CSV round trip bit-for-bit: display uses shortest
// round-trip formatting, not a fixed %.9g precision.
TEST(DataFrame, CsvDoubleRoundTripLossless) {
  const std::vector<double> values = {0.1,
                                      1.0 / 3.0,
                                      0.1 + 0.2,
                                      3.141592653589793,
                                      1e-300,
                                      -2.2250738585072014e-308,
                                      12345678.901234567,
                                      -0.0};
  DataFrame df({{"v", ColumnType::kDouble}});
  for (const double v : values) df.add_row({v});
  const DataFrame back = DataFrame::from_csv(df.to_csv());
  ASSERT_EQ(back.rows(), values.size());
  ASSERT_EQ(back.col("v").type(), ColumnType::kDouble);
  for (std::size_t r = 0; r < values.size(); ++r) {
    EXPECT_EQ(back.col("v").f64(r), values[r]) << "row " << r;
  }
}

// Under the old %.9g display, doubles differing beyond 9 significant digits
// stringified identically; typed keys must keep them distinct.
TEST(DataFrame, DistinctDoublesBeyondNineDigits) {
  DataFrame df({{"v", ColumnType::kDouble}});
  df.add_row({1.0000000001});
  df.add_row({1.0000000002});
  df.add_row({1.0000000001});
  EXPECT_EQ(df.distinct("v").size(), 2u);
  const DataFrame grouped = df.group_by({"v"}, {{"", Agg::kCount, "n"}});
  EXPECT_EQ(grouped.rows(), 2u);
}

TEST(DataFrame, CsvHeaderOnlyColumnsAreString) {
  const DataFrame df = DataFrame::from_csv("a,b\n");
  EXPECT_EQ(df.rows(), 0u);
  EXPECT_EQ(df.col("a").type(), ColumnType::kString);
  EXPECT_EQ(df.col("b").type(), ColumnType::kString);
}

TEST(DataFrame, CsvEmptyCellsMakeColumnString) {
  // An empty cell anywhere makes the column string, even when every other
  // cell parses as a number.
  const DataFrame df = DataFrame::from_csv("a,b,c\n1,,\n2,3,\n");
  EXPECT_EQ(df.col("a").type(), ColumnType::kInt64);
  EXPECT_EQ(df.col("b").type(), ColumnType::kString);
  EXPECT_EQ(df.col("b").str(1), "3");
  EXPECT_EQ(df.col("c").type(), ColumnType::kString);
  EXPECT_EQ(df.col("c").str(0), "");
}

// --- asof_merge ------------------------------------------------------------

DataFrame asof_left() {
  DataFrame df({{"t", ColumnType::kDouble}, {"l", ColumnType::kString}});
  df.add_row({0.5, "before-any"});
  df.add_row({1.0, "at-first"});
  df.add_row({2.7, "mid"});
  df.add_row({9.0, "after-all"});
  return df;
}

DataFrame asof_right() {
  DataFrame df({{"ts", ColumnType::kDouble}, {"r", ColumnType::kString}});
  df.add_row({1.0, "one"});
  df.add_row({2.0, "two"});
  df.add_row({4.0, "four"});
  return df;
}

TEST(DataFrame, AsofMergeNearestEarlier) {
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  const DataFrame merged = asof_left().asof_merge(asof_right(), spec);
  // Row 0 (t=0.5) has no earlier right row and is dropped.
  ASSERT_EQ(merged.rows(), 3u);
  EXPECT_EQ(merged.col("l").str(0), "at-first");
  EXPECT_EQ(merged.col("r").str(0), "one");   // ties match (ts <= t)
  EXPECT_EQ(merged.col("r").str(1), "two");   // 2.7 -> nearest earlier 2.0
  EXPECT_EQ(merged.col("r").str(2), "four");  // 9.0 -> last right row
}

TEST(DataFrame, AsofMergeKeepUnmatchedDefaults) {
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  spec.keep_unmatched = true;
  const DataFrame merged = asof_left().asof_merge(asof_right(), spec);
  ASSERT_EQ(merged.rows(), 4u);
  EXPECT_EQ(merged.col("l").str(0), "before-any");
  EXPECT_EQ(merged.col("r").str(0), "");          // string default
  EXPECT_DOUBLE_EQ(merged.col("ts").f64(0), 0.0); // numeric default
}

TEST(DataFrame, AsofMergeEmptyFrames) {
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  DataFrame empty_left({{"t", ColumnType::kDouble},
                        {"l", ColumnType::kString}});
  DataFrame empty_right({{"ts", ColumnType::kDouble},
                         {"r", ColumnType::kString}});
  EXPECT_EQ(empty_left.asof_merge(asof_right(), spec).rows(), 0u);
  EXPECT_EQ(asof_left().asof_merge(empty_right, spec).rows(), 0u);
  spec.keep_unmatched = true;
  const DataFrame kept = asof_left().asof_merge(empty_right, spec);
  EXPECT_EQ(kept.rows(), 4u);
  EXPECT_EQ(kept.col("r").str(3), "");
}

TEST(DataFrame, AsofMergeNoEarlierMatch) {
  DataFrame left({{"t", ColumnType::kDouble}});
  left.add_row({-5.0});
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  EXPECT_EQ(left.asof_merge(asof_right(), spec).rows(), 0u);
}

TEST(DataFrame, AsofMergeDuplicateTimestampsLastWins) {
  DataFrame right({{"ts", ColumnType::kDouble}, {"r", ColumnType::kString}});
  right.add_row({1.0, "first"});
  right.add_row({1.0, "second"});
  right.add_row({1.0, "third"});
  DataFrame left({{"t", ColumnType::kDouble}});
  left.add_row({1.5});
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  const DataFrame merged = left.asof_merge(right, spec);
  ASSERT_EQ(merged.rows(), 1u);
  EXPECT_EQ(merged.col("r").str(0), "third");
}

TEST(DataFrame, AsofMergeByColumnsSeparateStreams) {
  DataFrame left({{"tid", ColumnType::kInt64}, {"t", ColumnType::kDouble}});
  left.add_row({std::int64_t{1}, 5.0});
  left.add_row({std::int64_t{2}, 5.0});
  left.add_row({std::int64_t{3}, 5.0});  // no right rows for tid 3
  DataFrame right({{"tid", ColumnType::kInt64},
                   {"ts", ColumnType::kDouble},
                   {"r", ColumnType::kString}});
  right.add_row({std::int64_t{2}, 4.0, "two@4"});
  right.add_row({std::int64_t{1}, 3.0, "one@3"});
  right.add_row({std::int64_t{1}, 6.0, "one@6"});
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  spec.left_by = {"tid"};
  spec.right_by = {"tid"};
  const DataFrame merged = left.asof_merge(right, spec);
  ASSERT_EQ(merged.rows(), 2u);
  EXPECT_EQ(merged.col("tid").i64(0), 1);
  EXPECT_EQ(merged.col("r").str(0), "one@3");
  EXPECT_EQ(merged.col("tid").i64(1), 2);
  EXPECT_EQ(merged.col("r").str(1), "two@4");
  // By-key columns appear once (from the left side).
  EXPECT_FALSE(merged.has_column("tid_right"));
}

TEST(DataFrame, AsofMergeValidUntilWindow) {
  DataFrame right({{"ts", ColumnType::kDouble},
                   {"te", ColumnType::kDouble},
                   {"r", ColumnType::kString}});
  right.add_row({1.0, 2.0, "win"});
  DataFrame left({{"t", ColumnType::kDouble}});
  left.add_row({1.5});  // inside [1, 2]
  left.add_row({2.0});  // boundary, still inside with eps
  left.add_row({3.0});  // after the window closes
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  spec.right_valid_until = "te";
  spec.eps = 1e-9;
  const DataFrame merged = left.asof_merge(right, spec);
  ASSERT_EQ(merged.rows(), 2u);
  EXPECT_DOUBLE_EQ(merged.col("t").f64(1), 2.0);
}

TEST(DataFrame, AsofMergeTolerance) {
  DataFrame left({{"t", ColumnType::kDouble}});
  left.add_row({10.0});
  AsofSpec spec;
  spec.left_on = "t";
  spec.right_on = "ts";
  spec.tolerance = 5.0;
  EXPECT_EQ(asof_left().head(0).asof_merge(asof_right(), spec).rows(), 0u);
  // Nearest earlier right row is ts=4.0; 10 - 4 > 5 fails the tolerance.
  EXPECT_EQ(left.asof_merge(asof_right(), spec).rows(), 0u);
  spec.tolerance = 6.0;
  EXPECT_EQ(left.asof_merge(asof_right(), spec).rows(), 1u);
}

TEST(DataFrame, AsofMergeRejectsBadSpecs) {
  AsofSpec spec;
  spec.left_on = "l";  // string column
  spec.right_on = "ts";
  EXPECT_THROW(asof_left().asof_merge(asof_right(), spec), DataFrameError);
  spec.left_on = "t";
  spec.left_by = {"l"};
  EXPECT_THROW(asof_left().asof_merge(asof_right(), spec), DataFrameError);
}

// Property-style sweep: filter-then-count equals manual count across random
// frames of varying size.
class DataFrameProperty : public ::testing::TestWithParam<int> {};

TEST_P(DataFrameProperty, FilterCountMatchesPredicate) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()));
  DataFrame df({{"v", ColumnType::kDouble}});
  const int n = GetParam() * 37 % 200 + 1;
  int expected = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(0, 1);
    if (v > 0.5) ++expected;
    df.add_row({v});
  }
  const DataFrame filtered = df.filter([](const DataFrame& d, std::size_t r) {
    return d.col("v").f64(r) > 0.5;
  });
  EXPECT_EQ(filtered.rows(), static_cast<std::size_t>(expected));
}

TEST_P(DataFrameProperty, SortIsPermutationAndOrdered) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 999);
  DataFrame df({{"v", ColumnType::kDouble}});
  const int n = GetParam() * 53 % 150 + 2;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-100, 100);
    total += v;
    df.add_row({v});
  }
  const DataFrame sorted = df.sort_by("v");
  EXPECT_EQ(sorted.rows(), static_cast<std::size_t>(n));
  EXPECT_NEAR(sorted.sum("v"), total, 1e-9);
  for (std::size_t r = 1; r < sorted.rows(); ++r) {
    EXPECT_LE(sorted.col("v").f64(r - 1), sorted.col("v").f64(r));
  }
}

TEST_P(DataFrameProperty, GroupBySumsPartitionTotal) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 5555);
  DataFrame df({{"g", ColumnType::kString}, {"v", ColumnType::kDouble}});
  double total = 0.0;
  const int n = GetParam() * 29 % 300 + 5;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(0, 10);
    total += v;
    df.add_row({std::string(1, static_cast<char>('a' + i % 7)), v});
  }
  const DataFrame grouped = df.group_by({"g"}, {{"v", Agg::kSum, "s"}});
  EXPECT_NEAR(grouped.sum("s"), total, 1e-9);
}

// Randomized two-key frame shared by the naive-reference checks below.
DataFrame random_keyed_frame(RngStream& rng, int n) {
  DataFrame df({{"g", ColumnType::kInt64},
                {"h", ColumnType::kString},
                {"v", ColumnType::kDouble}});
  for (int i = 0; i < n; ++i) {
    df.add_row({rng.uniform_int(0, 12),
                std::string(1, static_cast<char>('a' + rng.uniform_int(0, 4))),
                rng.uniform(-50, 50)});
  }
  return df;
}

// The hashed group_by must be row-for-row identical to a naive ordered-map
// reference: groups ascending by typed key, aggregates over the members.
TEST_P(DataFrameProperty, HashedGroupByMatchesNaiveReference) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 70001);
  const int n = GetParam() * 41 % 250 + 1;
  const DataFrame df = random_keyed_frame(rng, n);
  const DataFrame grouped =
      df.group_by({"g", "h"}, {{"v", Agg::kSum, "s"},
                               {"", Agg::kCount, "n"},
                               {"v", Agg::kMin, "lo"},
                               {"v", Agg::kMax, "hi"}});

  std::map<std::pair<std::int64_t, std::string>, std::vector<double>> ref;
  for (std::size_t r = 0; r < df.rows(); ++r) {
    ref[{df.col("g").i64(r), df.col("h").str(r)}].push_back(
        df.col("v").f64(r));
  }
  ASSERT_EQ(grouped.rows(), ref.size());
  std::size_t row = 0;
  for (const auto& [key, values] : ref) {
    EXPECT_EQ(grouped.col("g").i64(row), key.first);
    EXPECT_EQ(grouped.col("h").str(row), key.second);
    double sum = 0.0;
    double lo = values[0];
    double hi = values[0];
    for (const double v : values) {
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_NEAR(grouped.col("s").f64(row), sum, 1e-9);
    EXPECT_EQ(grouped.col("n").i64(row),
              static_cast<std::int64_t>(values.size()));
    EXPECT_DOUBLE_EQ(grouped.col("lo").f64(row), lo);
    EXPECT_DOUBLE_EQ(grouped.col("hi").f64(row), hi);
    ++row;
  }
}

// The hashed inner_join must reproduce the naive nested loop: left rows in
// order, each fanning out across matching right rows ascending.
TEST_P(DataFrameProperty, HashedJoinMatchesNaiveReference) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 80002);
  const DataFrame left = random_keyed_frame(rng, GetParam() * 31 % 120 + 1);
  const DataFrame right = random_keyed_frame(rng, GetParam() * 23 % 120 + 1);
  const DataFrame joined = left.inner_join(right, {"g", "h"}, {"g", "h"});

  std::vector<std::pair<std::size_t, std::size_t>> ref;
  for (std::size_t l = 0; l < left.rows(); ++l) {
    for (std::size_t r = 0; r < right.rows(); ++r) {
      if (left.col("g").i64(l) == right.col("g").i64(r) &&
          left.col("h").str(l) == right.col("h").str(r)) {
        ref.emplace_back(l, r);
      }
    }
  }
  ASSERT_EQ(joined.rows(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(joined.col("g").i64(i), left.col("g").i64(ref[i].first));
    EXPECT_DOUBLE_EQ(joined.col("v").f64(i),
                     left.col("v").f64(ref[i].first));
    EXPECT_DOUBLE_EQ(joined.col("v_right").f64(i),
                     right.col("v").f64(ref[i].second));
  }
}

// Typed distinct must match a naive first-appearance scan with value
// (not string) equality.
TEST_P(DataFrameProperty, DistinctMatchesNaiveReference) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 90003);
  DataFrame df({{"v", ColumnType::kDouble}});
  const int n = GetParam() * 47 % 200 + 1;
  for (int i = 0; i < n; ++i) {
    // Small value pool so repeats are common.
    df.add_row({static_cast<double>(rng.uniform_int(0, 9)) / 4.0});
  }
  std::vector<double> seen;
  std::vector<std::string> ref;
  for (std::size_t r = 0; r < df.rows(); ++r) {
    const double v = df.col("v").f64(r);
    if (std::find(seen.begin(), seen.end(), v) == seen.end()) {
      seen.push_back(v);
      ref.push_back(df.col("v").display(r));
    }
  }
  EXPECT_EQ(df.distinct("v"), ref);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DataFrameProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace recup::analysis
