// DataFrame tests: schema/type discipline, relational operations, CSV
// round trips, and property-style parameterized checks.
#include <gtest/gtest.h>

#include "analysis/dataframe.hpp"
#include "common/rng.hpp"

namespace recup::analysis {
namespace {

DataFrame sample_frame() {
  DataFrame df({{"name", ColumnType::kString},
                {"group", ColumnType::kString},
                {"value", ColumnType::kDouble},
                {"count", ColumnType::kInt64}});
  df.add_row({"a", "x", 1.5, std::int64_t{1}});
  df.add_row({"b", "x", 2.5, std::int64_t{2}});
  df.add_row({"c", "y", 3.0, std::int64_t{3}});
  df.add_row({"d", "y", 4.0, std::int64_t{4}});
  return df;
}

TEST(DataFrame, SchemaAndAccess) {
  const DataFrame df = sample_frame();
  EXPECT_EQ(df.rows(), 4u);
  EXPECT_EQ(df.width(), 4u);
  EXPECT_TRUE(df.has_column("value"));
  EXPECT_FALSE(df.has_column("missing"));
  EXPECT_EQ(df.col("name").str(0), "a");
  EXPECT_DOUBLE_EQ(df.col("value").f64(1), 2.5);
  EXPECT_EQ(df.col("count").i64(2), 3);
  // Int column widens to double through f64.
  EXPECT_DOUBLE_EQ(df.col("count").f64(3), 4.0);
  EXPECT_THROW(df.col("missing"), DataFrameError);
  EXPECT_THROW(df.col("name").f64(0), DataFrameError);
  EXPECT_THROW(df.col("value").i64(0), DataFrameError);
}

TEST(DataFrame, TypeCheckedAppend) {
  DataFrame df({{"i", ColumnType::kInt64}});
  EXPECT_THROW(df.add_row({std::string("not-int")}), DataFrameError);
  EXPECT_THROW(df.add_row({std::int64_t{1}, std::int64_t{2}}),
               DataFrameError);
  // Int accepted into double columns.
  DataFrame dd({{"d", ColumnType::kDouble}});
  dd.add_row({std::int64_t{3}});
  EXPECT_DOUBLE_EQ(dd.col("d").f64(0), 3.0);
}

TEST(DataFrame, DuplicateColumnRejected) {
  EXPECT_THROW(DataFrame({{"a", ColumnType::kInt64},
                          {"a", ColumnType::kDouble}}),
               DataFrameError);
}

TEST(DataFrame, FilterKeepsMatchingRows) {
  const DataFrame df = sample_frame();
  const DataFrame filtered = df.filter([](const DataFrame& d, std::size_t r) {
    return d.col("value").f64(r) > 2.0;
  });
  EXPECT_EQ(filtered.rows(), 3u);
  EXPECT_EQ(filtered.col("name").str(0), "b");
}

TEST(DataFrame, SortByNumericAndString) {
  const DataFrame df = sample_frame();
  const DataFrame desc = df.sort_by("value", /*ascending=*/false);
  EXPECT_EQ(desc.col("name").str(0), "d");
  EXPECT_EQ(desc.col("name").str(3), "a");
  const DataFrame by_name = df.sort_by("name");
  EXPECT_EQ(by_name.col("name").str(0), "a");
}

TEST(DataFrame, SortIsStable) {
  DataFrame df({{"k", ColumnType::kInt64}, {"tag", ColumnType::kString}});
  df.add_row({std::int64_t{1}, "first"});
  df.add_row({std::int64_t{1}, "second"});
  df.add_row({std::int64_t{0}, "zero"});
  const DataFrame sorted = df.sort_by("k");
  EXPECT_EQ(sorted.col("tag").str(1), "first");
  EXPECT_EQ(sorted.col("tag").str(2), "second");
}

TEST(DataFrame, SelectAndHead) {
  const DataFrame df = sample_frame();
  const DataFrame sel = df.select({"value", "name"});
  EXPECT_EQ(sel.width(), 2u);
  EXPECT_EQ(sel.col(0).name(), "value");
  const DataFrame top = df.head(2);
  EXPECT_EQ(top.rows(), 2u);
  EXPECT_EQ(df.head(100).rows(), 4u);
}

TEST(DataFrame, GroupByAggregates) {
  const DataFrame df = sample_frame();
  const DataFrame grouped =
      df.group_by({"group"}, {{"value", Agg::kSum, "total"},
                              {"value", Agg::kMean, "avg"},
                              {"value", Agg::kMin, "lo"},
                              {"value", Agg::kMax, "hi"},
                              {"", Agg::kCount, "n"},
                              {"name", Agg::kFirst, "first_name"}});
  EXPECT_EQ(grouped.rows(), 2u);
  const DataFrame x = grouped.filter([](const DataFrame& d, std::size_t r) {
    return d.col("group").str(r) == "x";
  });
  ASSERT_EQ(x.rows(), 1u);
  EXPECT_DOUBLE_EQ(x.col("total").f64(0), 4.0);
  EXPECT_DOUBLE_EQ(x.col("avg").f64(0), 2.0);
  EXPECT_DOUBLE_EQ(x.col("lo").f64(0), 1.5);
  EXPECT_DOUBLE_EQ(x.col("hi").f64(0), 2.5);
  EXPECT_EQ(x.col("n").i64(0), 2);
  EXPECT_EQ(x.col("first_name").str(0), "a");
}

TEST(DataFrame, GroupByStd) {
  DataFrame df({{"g", ColumnType::kString}, {"v", ColumnType::kDouble}});
  df.add_row({"a", 2.0});
  df.add_row({"a", 4.0});
  const DataFrame grouped = df.group_by({"g"}, {{"v", Agg::kStd, "sd"}});
  EXPECT_NEAR(grouped.col("sd").f64(0), std::sqrt(2.0), 1e-12);
}

TEST(DataFrame, InnerJoinMatchesKeys) {
  DataFrame left({{"id", ColumnType::kInt64}, {"l", ColumnType::kString}});
  left.add_row({std::int64_t{1}, "one"});
  left.add_row({std::int64_t{2}, "two"});
  left.add_row({std::int64_t{3}, "three"});
  DataFrame right({{"key", ColumnType::kInt64}, {"r", ColumnType::kString}});
  right.add_row({std::int64_t{2}, "TWO"});
  right.add_row({std::int64_t{3}, "THREE"});
  right.add_row({std::int64_t{3}, "TROIS"});  // multiple matches fan out
  const DataFrame joined = left.inner_join(right, {"id"}, {"key"});
  EXPECT_EQ(joined.rows(), 3u);
  EXPECT_EQ(joined.col("l").str(0), "two");
  EXPECT_EQ(joined.col("r").str(0), "TWO");
  EXPECT_EQ(joined.col("r").str(2), "TROIS");
}

TEST(DataFrame, JoinNameCollisionSuffixed) {
  DataFrame left({{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
  left.add_row({std::int64_t{1}, std::int64_t{10}});
  DataFrame right({{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}});
  right.add_row({std::int64_t{1}, std::int64_t{20}});
  const DataFrame joined = left.inner_join(right, {"id"}, {"id"});
  EXPECT_TRUE(joined.has_column("v"));
  EXPECT_TRUE(joined.has_column("v_right"));
  EXPECT_EQ(joined.col("v").i64(0), 10);
  EXPECT_EQ(joined.col("v_right").i64(0), 20);
}

TEST(DataFrame, JoinRequiresKeys) {
  const DataFrame df = sample_frame();
  EXPECT_THROW(df.inner_join(df, {}, {}), DataFrameError);
  EXPECT_THROW(df.inner_join(df, {"name"}, {"name", "group"}),
               DataFrameError);
}

TEST(DataFrame, ConcatAppendsRows) {
  const DataFrame df = sample_frame();
  const DataFrame both = df.concat(df);
  EXPECT_EQ(both.rows(), 8u);
  EXPECT_EQ(both.col("name").str(4), "a");
}

TEST(DataFrame, ColumnHelpers) {
  const DataFrame df = sample_frame();
  EXPECT_DOUBLE_EQ(df.sum("value"), 11.0);
  EXPECT_DOUBLE_EQ(df.mean("value"), 2.75);
  EXPECT_DOUBLE_EQ(df.min("count"), 1.0);
  EXPECT_DOUBLE_EQ(df.max("count"), 4.0);
  EXPECT_EQ(df.distinct("group"), (std::vector<std::string>{"x", "y"}));
}

TEST(DataFrame, CsvRoundTrip) {
  const DataFrame df = sample_frame();
  const DataFrame back = DataFrame::from_csv(df.to_csv());
  EXPECT_EQ(back.rows(), df.rows());
  EXPECT_EQ(back.col("name").str(2), "c");
  EXPECT_EQ(back.col("count").type(), ColumnType::kInt64);
  EXPECT_EQ(back.col("value").type(), ColumnType::kDouble);
  EXPECT_DOUBLE_EQ(back.col("value").f64(3), 4.0);
}

TEST(DataFrame, CsvQuotedFieldsSurvive) {
  DataFrame df({{"k", ColumnType::kString}});
  df.add_row({"('getitem-24266c', 63)"});
  df.add_row({"line\nbreak"});
  const DataFrame back = DataFrame::from_csv(df.to_csv());
  EXPECT_EQ(back.col("k").str(0), "('getitem-24266c', 63)");
  EXPECT_EQ(back.col("k").str(1), "line\nbreak");
}

TEST(DataFrame, CsvTypeInference) {
  const DataFrame df = DataFrame::from_csv("a,b,c\n1,1.5,x\n2,2.5,y\n");
  EXPECT_EQ(df.col("a").type(), ColumnType::kInt64);
  EXPECT_EQ(df.col("b").type(), ColumnType::kDouble);
  EXPECT_EQ(df.col("c").type(), ColumnType::kString);
}

TEST(DataFrame, CsvErrors) {
  EXPECT_THROW(DataFrame::from_csv(""), DataFrameError);
  EXPECT_THROW(DataFrame::from_csv("a,b\n1\n"), DataFrameError);
  EXPECT_THROW(DataFrame::from_csv_file("/no/such/file.csv"),
               DataFrameError);
}

// Property-style sweep: filter-then-count equals manual count across random
// frames of varying size.
class DataFrameProperty : public ::testing::TestWithParam<int> {};

TEST_P(DataFrameProperty, FilterCountMatchesPredicate) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()));
  DataFrame df({{"v", ColumnType::kDouble}});
  const int n = GetParam() * 37 % 200 + 1;
  int expected = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(0, 1);
    if (v > 0.5) ++expected;
    df.add_row({v});
  }
  const DataFrame filtered = df.filter([](const DataFrame& d, std::size_t r) {
    return d.col("v").f64(r) > 0.5;
  });
  EXPECT_EQ(filtered.rows(), static_cast<std::size_t>(expected));
}

TEST_P(DataFrameProperty, SortIsPermutationAndOrdered) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 999);
  DataFrame df({{"v", ColumnType::kDouble}});
  const int n = GetParam() * 53 % 150 + 2;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-100, 100);
    total += v;
    df.add_row({v});
  }
  const DataFrame sorted = df.sort_by("v");
  EXPECT_EQ(sorted.rows(), static_cast<std::size_t>(n));
  EXPECT_NEAR(sorted.sum("v"), total, 1e-9);
  for (std::size_t r = 1; r < sorted.rows(); ++r) {
    EXPECT_LE(sorted.col("v").f64(r - 1), sorted.col("v").f64(r));
  }
}

TEST_P(DataFrameProperty, GroupBySumsPartitionTotal) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 5555);
  DataFrame df({{"g", ColumnType::kString}, {"v", ColumnType::kDouble}});
  double total = 0.0;
  const int n = GetParam() * 29 % 300 + 5;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(0, 10);
    total += v;
    df.add_row({std::string(1, static_cast<char>('a' + i % 7)), v});
  }
  const DataFrame grouped = df.group_by({"g"}, {{"v", Agg::kSum, "s"}});
  EXPECT_NEAR(grouped.sum("s"), total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DataFrameProperty,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace recup::analysis
