// Unit tests for src/common: RNG streams, statistics, histograms, CSV,
// string utilities, queues, logging, and tables.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/csv.hpp"
#include "common/histogram.hpp"
#include "common/log.hpp"
#include "common/queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/time.hpp"

namespace recup {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  RngStream a(1);
  RngStream b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1000) == b.uniform_int(0, 1000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SubstreamsAreIndependentAndStable) {
  RngStream root(7);
  RngStream net1 = root.substream("network");
  RngStream net2 = root.substream("network");
  RngStream pfs = root.substream("pfs");
  EXPECT_EQ(net1.seed(), net2.seed());
  EXPECT_NE(net1.seed(), pfs.seed());
  EXPECT_NE(net1.seed(), root.seed());
}

TEST(Rng, LognormalMedianRoughlyCorrect) {
  RngStream rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.lognormal(2.0, 0.5));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 2.0, 0.1);
}

TEST(Rng, NormalRespectsFloor) {
  RngStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal(0.0, 10.0, 0.5), 0.5);
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  RngStream rng(9);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(Rng, WeightedIndexRejectsNonPositive) {
  RngStream rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  RngStream rng(5);
  std::vector<int> items = {1, 2, 3, 4, 5, 6};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Fnv, StableKnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  RngStream rng(11);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0, 10);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(RunningStats, CvZeroWhenMeanZero) {
  RunningStats s;
  s.add(-1.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(Summarize, Percentiles) {
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  const SampleSummary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 0.01);
  EXPECT_NEAR(s.p95, 95.05, 0.1);
  EXPECT_EQ(s.count, 100u);
}

TEST(Summarize, EmptyIsAllZero) {
  const SampleSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys).value(), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg).value(), -1.0, 1e-12);
}

TEST(Pearson, ConstantSideIsNullopt) {
  std::vector<double> xs = {1, 1, 1};
  std::vector<double> ys = {1, 2, 3};
  EXPECT_FALSE(pearson(xs, ys).has_value());
  EXPECT_FALSE(pearson({1.0}, {2.0}).has_value());
}

TEST(SizeHistogram, DarshanBuckets) {
  SizeHistogram h;
  h.add(50);                    // 0_100
  h.add(100);                   // 100_1K
  h.add(4 * 1024 * 1024);       // 4M_10M
  h.add(4 * 1024 * 1024 - 1);   // 1M_4M
  h.add(2ULL * 1024 * 1024 * 1024);  // 1G_PLUS
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(6), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(SizeHistogram, MergeAdds) {
  SizeHistogram a, b;
  a.add(10, 3);
  b.add(10, 2);
  a.merge(b);
  EXPECT_EQ(a.bucket(0), 5u);
}

TEST(BinnedHistogram, BinsAndOverflow) {
  BinnedHistogram h(0.0, 100.0, 10);
  h.add(5.0);
  h.add(95.0);
  h.add(150.0);   // overflow
  h.add(-1.0);    // underflow counts as overflow too
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 20.0);
}

TEST(Strings, SplitJoinTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_TRUE(starts_with("abcdef", "abc"));
  EXPECT_TRUE(ends_with("abcdef", "def"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, HexTokenAndBytes) {
  EXPECT_EQ(hex_token(0xABC, 6), "000abc");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4ULL * 1024 * 1024), "4.0 MiB");
}

TEST(Csv, EscapeRoundTrip) {
  const std::vector<std::string> fields = {"plain", "with,comma",
                                           "with\"quote", "with\nnewline"};
  const std::string row = csv_row(fields);
  EXPECT_EQ(csv_parse_row(row), fields);
}

TEST(Csv, ParseMultipleRows) {
  const auto rows = csv_parse("a,b\n1,2\n3,4\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(csv_parse("\"oops"), std::invalid_argument);
}

TEST(BoundedQueue, PushPopFifo) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueue, CloseDrainsThenNullopt) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CrossThreadHandoff) {
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, 100);
}

TEST(LogCollector, CollectsAndFilters) {
  LogCollector logs;
  logs.log(LogLevel::kInfo, "a", "hello");
  logs.log(LogLevel::kWarning, "b", "careful");
  logs.log(LogLevel::kError, "c", "boom");
  EXPECT_EQ(logs.count(), 3u);
  EXPECT_EQ(logs.records_at_least(LogLevel::kWarning).size(), 2u);
  logs.clear();
  EXPECT_EQ(logs.count(), 0u);
}

TEST(LogCollector, UsesClock) {
  double now = 1.5;
  LogCollector logs([&] { return now; });
  logs.log(LogLevel::kInfo, "x", "m1");
  now = 3.0;
  logs.log(LogLevel::kInfo, "x", "m2");
  const auto records = logs.records();
  EXPECT_DOUBLE_EQ(records[0].time, 1.5);
  EXPECT_DOUBLE_EQ(records[1].time, 3.0);
}

TEST(TextTable, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string rendered = t.render("Title");
  EXPECT_NE(rendered.find("Title"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiCharts, BarChartScalesAndShowsErrors) {
  const std::string chart =
      ascii_bar_chart({{"a", 1.0}, {"bb", 0.5}}, {0.1, 0.0}, 20);
  EXPECT_NE(chart.find("a "), std::string::npos);
  EXPECT_NE(chart.find("+/-"), std::string::npos);
}

TEST(TimeInterval, OverlapMath) {
  TimeInterval a{0.0, 10.0};
  TimeInterval b{5.0, 15.0};
  TimeInterval c{20.0, 30.0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_DOUBLE_EQ(a.overlap_length(b), 5.0);
  EXPECT_DOUBLE_EQ(a.overlap_length(c), 0.0);
  EXPECT_TRUE(a.contains(0.0));
  EXPECT_FALSE(a.contains(10.0));
}

}  // namespace
}  // namespace recup
