// Shared fixture utilities for task-runtime tests: a hand-wired miniature
// cluster (engine + platform + scheduler + workers, no client) for direct
// scheduler/worker testing, plus graph builders.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dtr/scheduler.hpp"
#include "dtr/task.hpp"
#include "dtr/vfs.hpp"
#include "dtr/worker.hpp"
#include "platform/network.hpp"
#include "platform/pfs.hpp"
#include "platform/topology.hpp"
#include "sim/engine.hpp"

namespace recup::dtr::testing {

struct MiniCluster {
  explicit MiniCluster(std::size_t nodes = 2, std::size_t workers_per_node = 2,
                       std::size_t nthreads = 2,
                       WorkerConfig worker_config = {},
                       SchedulerConfig scheduler_config = {})
      : topology(platform::make_polaris_like(nodes)),
        network(engine, topology, platform::NetworkConfig{}, RngStream(101)),
        pfs(engine, platform::PfsConfig{}, RngStream(202)),
        vfs(engine, pfs),
        scheduler(engine, network, scheduler_config, RngStream(303), logs) {
    worker_config.nthreads = nthreads;
    for (std::size_t i = 0; i < nodes * workers_per_node; ++i) {
      const auto node = static_cast<platform::NodeId>(i / workers_per_node);
      workers.push_back(std::make_unique<Worker>(
          engine, network, vfs, static_cast<WorkerId>(i), node,
          "tcp://10.0." + std::to_string(node) + ".2:" + std::to_string(9000 + i),
          worker_config, RngStream(1000 + i), logs,
          darshan::RuntimeConfig{}));
      scheduler.add_worker(workers.back().get());
    }
    scheduler.finalize_topology();
  }

  /// Submits the graph and runs the engine until it drains. Returns true if
  /// every task reached memory.
  bool run_graph(const TaskGraph& graph) {
    bool done = false;
    // Stop the scheduler from inside the completion callback so its
    // periodic stealing loop stops rescheduling and the engine can drain.
    scheduler.submit_graph(graph, [&](const std::string&) {
      done = true;
      scheduler.stop();
    });
    scheduler.start_stealing_loop();
    engine.run();
    return done;
  }

  sim::Engine engine;
  LogCollector logs;
  platform::Topology topology;
  platform::Network network;
  platform::Pfs pfs;
  Vfs vfs;
  Scheduler scheduler;
  std::vector<std::unique_ptr<Worker>> workers;
};

/// Builds a diamond graph: a -> (b, c) -> d.
inline TaskGraph diamond_graph(double compute = 0.01,
                               std::uint64_t output = 1 << 20) {
  TaskGraph g("diamond");
  TaskSpec a;
  a.key = {"source-abc123", 0};
  a.work.compute = compute;
  a.work.output_bytes = output;
  g.add_task(a);
  for (int i = 0; i < 2; ++i) {
    TaskSpec mid;
    mid.key = {"middle-abc123", i};
    mid.dependencies.push_back(a.key);
    mid.work.compute = compute;
    mid.work.output_bytes = output;
    g.add_task(mid);
  }
  TaskSpec d;
  d.key = {"sink-abc123", 0};
  d.dependencies.push_back({"middle-abc123", 0});
  d.dependencies.push_back({"middle-abc123", 1});
  d.work.compute = compute;
  d.work.output_bytes = output / 4;
  g.add_task(d);
  return g;
}

/// Builds `n` independent tasks.
inline TaskGraph independent_graph(std::size_t n, double compute = 0.01,
                                   std::uint64_t output = 1024) {
  TaskGraph g("independent");
  for (std::size_t i = 0; i < n; ++i) {
    TaskSpec t;
    t.key = {"embarrassing-def456", static_cast<std::int64_t>(i)};
    t.work.compute = compute;
    t.work.output_bytes = output;
    g.add_task(t);
  }
  return g;
}

}  // namespace recup::dtr::testing
