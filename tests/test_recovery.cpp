// Durable-control-plane tests: the segmented WAL primitive, the WAL-backed
// Mofka broker, scheduler checkpoint/restart, lease-based worker liveness,
// durable ingestor cursors, and the crash-recovery oracle.
//
// The headline oracle: a full workload -> Mofka -> LiveIngestor pipeline
// whose *processes* are attacked by a FaultPlan (broker crash mid-append,
// scheduler crash at a graph boundary, ingestor crash mid-poll) must
// produce byte-identical PERFRECUP views to the same run without crashes —
// WAL replay, checkpoint + journal recovery, and cursor restoration
// together make whole-process restarts invisible to provenance consumers.
// A non-durable broker under the same crash is demonstrably total loss,
// proving the oracle can detect missing durability.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chaos/fault.hpp"
#include "common/wal.hpp"
#include "dtr/cluster.hpp"
#include "dtr/mofka_plugins.hpp"
#include "dtr_fixture.hpp"
#include "mochi/bedrock.hpp"
#include "mofka/broker.hpp"
#include "mofka/consumer.hpp"
#include "mofka/producer.hpp"
#include "query/catalog.hpp"
#include "query/client.hpp"
#include "query/ingest.hpp"
#include "query/server.hpp"
#include "wire/codec.hpp"

namespace recup {
namespace {

using query::LiveIngestor;
using query::StoreCatalog;
using query::ViewId;

/// Unique per-test scratch directory (ctest runs each test in its own
/// process, so the pid disambiguates concurrent tests sharing a tag).
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("recup_recovery_" + tag + "_" +
                std::to_string(static_cast<long>(::getpid()))))
                  .string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::string> replay_all(const std::string& dir,
                                    wal::ReplayStats* stats = nullptr) {
  std::vector<std::string> records;
  const wal::ReplayStats s = wal::WalWriter::replay(
      dir, [&](std::string_view payload) { records.emplace_back(payload); });
  if (stats) *stats = s;
  return records;
}

std::string last_segment_path(const std::string& dir) {
  std::string best;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 &&
        (best.empty() ||
         name > std::filesystem::path(best).filename().string())) {
      best = entry.path().string();
    }
  }
  return best;
}

std::string first_segment_path(const std::string& dir) {
  std::string best;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 &&
        (best.empty() ||
         name < std::filesystem::path(best).filename().string())) {
      best = entry.path().string();
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// WAL primitive.

TEST(Wal, Crc32MatchesTheStandardCheckValue) {
  const char* check = "123456789";
  EXPECT_EQ(wal::crc32(check, 9), 0xCBF43926u);
  // Chaining via the seed equals one pass over the concatenation.
  const std::uint32_t head = wal::crc32(check, 4);
  EXPECT_EQ(wal::crc32(check + 4, 5, head), 0xCBF43926u);
}

TEST(Wal, RoundTripsBinaryRecordsInOrder) {
  TempDir dir("wal_roundtrip");
  std::vector<std::string> expected;
  expected.push_back(std::string("hello"));
  expected.push_back(std::string());  // empty record
  expected.push_back(std::string("bin\0ary\xff", 8));
  expected.push_back(std::string(1000, 'x'));
  {
    wal::WalWriter writer(dir.str());
    for (const auto& record : expected) writer.append(record);
    EXPECT_EQ(writer.records_appended(), expected.size());
  }
  wal::ReplayStats stats;
  const std::vector<std::string> got = replay_all(dir.str(), &stats);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(stats.records, expected.size());
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(Wal, RotatesSegmentsAndReplaysAcrossThem) {
  TempDir dir("wal_rotate");
  std::vector<std::string> expected;
  {
    wal::WalOptions options;
    options.segment_bytes = 64;  // ~2 records per segment
    wal::WalWriter writer(dir.str(), options);
    for (int i = 0; i < 20; ++i) {
      expected.push_back("record-" + std::to_string(i) + "-payloadpayload");
      writer.append(expected.back());
    }
  }
  wal::ReplayStats stats;
  EXPECT_EQ(replay_all(dir.str(), &stats), expected);
  EXPECT_GE(stats.segments, 2u);
  EXPECT_EQ(stats.records, 20u);
}

TEST(Wal, TornTailIsTruncatedAndTheLogResumes) {
  TempDir dir("wal_torn");
  {
    wal::WalWriter writer(dir.str());
    writer.append("one");
    writer.append("two");
  }
  {
    // A crash mid-append: a frame header promising more bytes than exist.
    std::ofstream out(last_segment_path(dir.str()),
                      std::ios::binary | std::ios::app);
    const std::uint32_t length = 100;
    const std::uint32_t crc = 0;
    out.write(reinterpret_cast<const char*>(&length), sizeof(length));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write("abc", 3);
  }
  wal::ReplayStats stats;
  EXPECT_EQ(replay_all(dir.str(), &stats),
            (std::vector<std::string>{"one", "two"}));
  EXPECT_TRUE(stats.truncated_tail);

  // Reopening repairs the tail and continues after the last valid record.
  {
    wal::WalWriter resumed(dir.str());
    resumed.append("three");
  }
  EXPECT_EQ(replay_all(dir.str(), &stats),
            (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_FALSE(stats.truncated_tail);
}

TEST(Wal, MidLogCorruptionThrowsInsteadOfSilentLoss) {
  TempDir dir("wal_corrupt");
  {
    wal::WalOptions options;
    options.segment_bytes = 64;
    wal::WalWriter writer(dir.str(), options);
    for (int i = 0; i < 8; ++i) {
      writer.append("corruptible-payload-" + std::to_string(i));
    }
  }
  wal::ReplayStats stats;
  ASSERT_GE(replay_all(dir.str(), &stats).size(), 8u);
  ASSERT_GE(stats.segments, 2u);
  {
    // Flip one payload byte in the *first* segment: not a crash artifact.
    std::fstream file(first_segment_path(dir.str()),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(10);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    file.seekp(10);
    file.write(&byte, 1);
  }
  EXPECT_THROW(replay_all(dir.str()), wal::WalError);
}

TEST(Wal, GroupCommitEveryAppendIsDurableWithFewerFsyncs) {
  TempDir dir("wal_group_commit");
  wal::WalOptions options;
  options.sync = wal::SyncPolicy::kOnAppend;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  {
    wal::WalWriter writer(dir.str(), options);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&writer, t] {
        for (int i = 0; i < kPerThread; ++i) {
          writer.append("t" + std::to_string(t) + "r" + std::to_string(i));
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(writer.records_appended(), kThreads * kPerThread);
    // Every append returned fsync-durable, yet concurrent appenders share
    // leader fsyncs — far fewer syscalls than one per record.
    EXPECT_GE(writer.fsyncs_issued(), 1u);
    EXPECT_LE(writer.fsyncs_issued(), writer.records_appended());
  }
  // Replay integrity: all records present exactly once, per-thread order
  // preserved.
  std::map<char, int> next_index;
  std::size_t total = 0;
  wal::WalWriter::replay(dir.str(), [&](std::string_view record) {
    ++total;
    const std::string s(record);
    const auto split = s.find('r');
    ASSERT_NE(split, std::string::npos);
    const char thread_tag = s[1];
    const int index = std::stoi(s.substr(split + 1));
    EXPECT_EQ(index, next_index[thread_tag]) << s;
    next_index[thread_tag] = index + 1;
  });
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(Wal, GroupCommitSingleThreadedSyncsEveryAppend) {
  TempDir dir("wal_group_commit_solo");
  wal::WalOptions options;
  options.sync = wal::SyncPolicy::kOnAppend;
  wal::WalWriter writer(dir.str(), options);
  for (int i = 0; i < 10; ++i) writer.append("solo");
  // With no concurrency there is nobody to share a leader fsync with: the
  // durability contract degenerates to one fsync per append.
  EXPECT_EQ(writer.fsyncs_issued(), 10u);
}

TEST(Wal, GroupCommitSurvivesRotationAndReset) {
  TempDir dir("wal_group_commit_rotate");
  wal::WalOptions options;
  options.sync = wal::SyncPolicy::kOnAppend;
  options.segment_bytes = 64;  // rotate every few records
  wal::WalWriter writer(dir.str(), options);
  for (int i = 0; i < 20; ++i) writer.append(std::string(24, 'a' + i % 26));
  EXPECT_EQ(replay_all(dir.str()).size(), 20u);
  writer.reset();
  writer.append("after-reset");
  EXPECT_EQ(replay_all(dir.str()), (std::vector<std::string>{"after-reset"}));
}

TEST(Wal, ResetStartsAnEmptyLog) {
  TempDir dir("wal_reset");
  wal::WalWriter writer(dir.str());
  writer.append("doomed");
  writer.reset();
  EXPECT_EQ(replay_all(dir.str()).size(), 0u);
  writer.append("fresh");
  writer.flush();
  EXPECT_EQ(replay_all(dir.str()), (std::vector<std::string>{"fresh"}));
}

TEST(Wal, CompactDropsWholeCoveredSegmentsOnly) {
  TempDir dir("wal_compact");
  std::vector<std::string> expected;
  wal::WalOptions options;
  options.segment_bytes = 64;  // 2-3 records per segment
  wal::WalWriter writer(dir.str(), options);
  for (int i = 0; i < 20; ++i) {
    expected.push_back("record-" + std::to_string(i) + "-payloadpayload");
    writer.append(expected.back());
  }
  writer.flush();

  // Nothing below record 0 is droppable.
  EXPECT_EQ(writer.compact(0), 0u);
  EXPECT_EQ(replay_all(dir.str()), expected);

  // Compacting up to record 10 deletes only whole segments whose records
  // all precede it; the survivors replay as an aligned suffix.
  const std::uint64_t dropped = writer.compact(10);
  EXPECT_GT(dropped, 0u);
  EXPECT_LE(dropped, 10u);
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir.str()) /
                                      "wal-compacted"));
  EXPECT_NE(std::filesystem::path(first_segment_path(dir.str())).filename(),
            "wal-00000000.seg");
  wal::ReplayStats stats;
  const std::vector<std::string> suffix = replay_all(dir.str(), &stats);
  EXPECT_EQ(stats.compacted_records, dropped);
  ASSERT_EQ(suffix.size(), expected.size() - dropped);
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    EXPECT_EQ(suffix[i], expected[dropped + i]) << i;
  }
  // A watermark at or below the current one is a no-op.
  EXPECT_EQ(writer.compact(dropped), 0u);

  // Compacting "everything" still never touches the active segment: the
  // log remains appendable and the tail replays.
  writer.compact(writer.records_appended());
  EXPECT_FALSE(first_segment_path(dir.str()).empty());
  writer.append("after-compact");
  writer.flush();
  const std::vector<std::string> tail = replay_all(dir.str(), &stats);
  ASSERT_FALSE(tail.empty());
  EXPECT_EQ(tail.back(), "after-compact");
  EXPECT_EQ(stats.compacted_records + stats.records, 21u);
}

TEST(Wal, CompactionMarkerMakesCrashMidDeletionInvisible) {
  TempDir dir("wal_compact_crash");
  std::vector<std::string> expected;
  wal::WalOptions options;
  options.segment_bytes = 64;
  std::uint64_t dropped = 0;
  {
    wal::WalWriter writer(dir.str(), options);
    for (int i = 0; i < 16; ++i) {
      expected.push_back("record-" + std::to_string(i) + "-payloadpayload");
      writer.append(expected.back());
    }
    dropped = writer.compact(8);
    ASSERT_GT(dropped, 0u);
  }
  // Crash mid-deletion: the marker was durably renamed into place *before*
  // any segment was unlinked, so a stale segment below the boundary can
  // reappear — here with garbage contents that would throw if scanned.
  {
    std::ofstream stale(std::filesystem::path(dir.str()) / "wal-00000000.seg",
                        std::ios::binary | std::ios::trunc);
    stale << "not a valid wal segment at all";
  }
  wal::ReplayStats stats;
  const std::vector<std::string> suffix = replay_all(dir.str(), &stats);
  EXPECT_EQ(stats.compacted_records, dropped);
  ASSERT_EQ(suffix.size(), expected.size() - dropped);
  EXPECT_EQ(suffix.front(), expected[dropped]);

  // A writer reopened over the same directory resumes past the stale
  // segment as well.
  wal::WalWriter resumed(dir.str(), options);
  resumed.append("post-crash");
  resumed.flush();
  EXPECT_EQ(replay_all(dir.str(), &stats).back(), "post-crash");
}

// ---------------------------------------------------------------------------
// WAL-backed broker.

json::Value numbered(int i) {
  json::Object o;
  o["i"] = static_cast<std::int64_t>(i);
  return json::Value(std::move(o));
}

json::Value stamped(int i, std::uint64_t pid, std::uint64_t seq) {
  json::Object o;
  o["i"] = static_cast<std::int64_t>(i);
  o["_pid"] = pid;
  o["_seq"] = seq;
  return json::Value(std::move(o));
}

TEST(BrokerWal, RebuildsFromDiskWithIdenticalOffsets) {
  TempDir dir("broker_rebuild");
  {
    mochi::KeyValueStore kv;
    mochi::BlobStore blobs;
    mofka::Broker broker(kv, blobs, {dir.str(), {}});
    EXPECT_TRUE(broker.durable());
    broker.create_topic("t", {2, nullptr, nullptr});
    std::vector<std::pair<json::Value, std::string>> p0;
    for (int i = 0; i < 10; ++i) p0.emplace_back(numbered(i), "d" + std::to_string(i));
    broker.append_batch("t", 0, p0);
    std::vector<std::pair<json::Value, std::string>> p1;
    for (int i = 0; i < 5; ++i) p1.emplace_back(numbered(100 + i), "");
    broker.append_batch("t", 1, p1);
    broker.commit_offset("t", "grp", 0, 7);
    EXPECT_GT(broker.wal_bytes(), 0u);
  }
  // A cold restart: fresh stores, same directory.
  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker rebuilt(kv, blobs, {dir.str(), {}});
  ASSERT_TRUE(rebuilt.topic_exists("t"));
  EXPECT_EQ(rebuilt.partition_count("t"), 2u);
  EXPECT_EQ(rebuilt.partition_size("t", 0), 10u);
  EXPECT_EQ(rebuilt.partition_size("t", 1), 5u);
  EXPECT_EQ(rebuilt.committed_offset("t", "grp", 0), 7u);
  for (int i = 0; i < 10; ++i) {
    const auto event = rebuilt.fetch("t", 0, static_cast<mofka::EventId>(i));
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->metadata.at("i").as_int(), i);
  }
}

TEST(BrokerWal, CrashRecoveryPreservesOffsetsAndAbsorbsRetries) {
  TempDir dir("broker_crash");
  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker broker(kv, blobs, {dir.str(), {}});
  broker.create_topic("t", {});
  std::vector<std::pair<json::Value, std::string>> batch;
  for (int i = 0; i < 12; ++i) batch.emplace_back(stamped(i, 7, i), "");
  const mofka::AppendResult first = broker.append_batch("t", 0, batch);
  EXPECT_EQ(first.duplicates, 0u);

  broker.crash_and_recover();
  EXPECT_EQ(broker.recoveries(), 1u);
  EXPECT_EQ(broker.partition_size("t", 0), 12u);

  // A producer re-sending the same batch after the restart (its ack was
  // lost in the crash) must be absorbed with the original offsets: the
  // sequence-dedup state was rebuilt from the WAL, so retry-across-restart
  // is still exactly-once.
  const mofka::AppendResult retried = broker.append_batch("t", 0, batch);
  EXPECT_EQ(retried.duplicates, batch.size());
  EXPECT_EQ(retried.offsets, first.offsets);
  EXPECT_EQ(broker.partition_size("t", 0), 12u);
  EXPECT_EQ(broker.topic_stats("t").duplicates_absorbed, batch.size());
}

TEST(BrokerWal, NonDurableCrashIsObservableTotalLoss) {
  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker broker(kv, blobs);
  EXPECT_FALSE(broker.durable());
  EXPECT_EQ(broker.wal_bytes(), 0u);
  broker.create_topic("t", {});
  broker.append_batch("t", 0, {{numbered(1), "data"}});
  broker.crash_and_recover();
  EXPECT_EQ(broker.recoveries(), 1u);
  EXPECT_FALSE(broker.topic_exists("t"));
}

// ---------------------------------------------------------------------------
// Scheduler checkpoint/restart.

template <typename Records>
std::string dump_records(const Records& records) {
  std::string out;
  for (const auto& record : records) {
    out += dtr::to_json(record).dump();
    out += '\n';
  }
  return out;
}

TEST(SchedulerDurable, ColdRestartRebuildsFullHistoryFromJournal) {
  TempDir dir("sched_cold");
  std::string transitions_a;
  std::string tasks_a;
  {
    dtr::testing::MiniCluster a;
    a.scheduler.enable_durability({dir.str(), 0, false, {}});
    ASSERT_TRUE(a.run_graph(dtr::testing::diamond_graph()));
    transitions_a = dump_records(a.scheduler.transitions());
    tasks_a = dump_records(a.scheduler.task_records());
    ASSERT_FALSE(transitions_a.empty());
  }
  // A brand-new scheduler process over the same directory: the journal is
  // full-history provenance, so the records come back byte-identical.
  dtr::testing::MiniCluster b;
  b.scheduler.enable_durability({dir.str(), 0, false, {}});
  b.scheduler.recover();
  b.engine.run();
  EXPECT_EQ(b.scheduler.recoveries(), 1u);
  EXPECT_EQ(b.scheduler.tasks_total(), 4u);
  EXPECT_TRUE(b.scheduler.in_memory({"sink-abc123", 0}));
  EXPECT_EQ(dump_records(b.scheduler.transitions()), transitions_a);
  EXPECT_EQ(dump_records(b.scheduler.task_records()), tasks_a);
}

TEST(SchedulerDurable, MidRunCrashRecoversAndCompletesTheGraph) {
  TempDir dir("sched_midrun");
  dtr::testing::MiniCluster mini;
  mini.scheduler.enable_durability({dir.str(), 0, false, {}});
  bool done = false;
  const auto finish = [&](const std::string&) {
    done = true;
    mini.scheduler.stop();
  };
  mini.scheduler.submit_graph(dtr::testing::diamond_graph(0.05), finish);
  // Crash while the source task is processing on a (surviving) worker. The
  // graph-done callback dies with the process; recovery re-adopts the
  // in-flight task and set_graph_done re-attaches the callback.
  mini.engine.schedule_after(0.02, [&] {
    mini.scheduler.crash_and_recover();
    mini.scheduler.set_graph_done("diamond", finish);
  });
  mini.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(mini.scheduler.recoveries(), 1u);
  EXPECT_EQ(mini.scheduler.tasks_total(), 4u);
  EXPECT_TRUE(mini.scheduler.in_memory({"sink-abc123", 0}));
  // Every diamond task produced at least one completion record.
  std::set<std::string> completed;
  for (const auto& record : mini.scheduler.task_records()) {
    completed.insert(record.key.to_string());
  }
  EXPECT_EQ(completed.size(), 4u);
}

TEST(SchedulerDurable, SetGraphDoneFiresImmediatelyWhenAlreadyComplete) {
  TempDir dir("sched_done");
  dtr::testing::MiniCluster mini;
  mini.scheduler.enable_durability({dir.str(), 0, false, {}});
  ASSERT_TRUE(mini.run_graph(dtr::testing::independent_graph(4)));
  bool fired = false;
  mini.scheduler.set_graph_done("independent",
                                [&](const std::string&) { fired = true; });
  EXPECT_TRUE(fired);
  EXPECT_THROW(mini.scheduler.set_graph_done("no-such-graph", nullptr),
               std::exception);
}

TEST(SchedulerDurable, CompactingCheckpointBoundsTheJournalAndStillRecovers) {
  TempDir dir("sched_compact");
  dtr::SchedulerDurability durability;
  durability.dir = dir.str();
  durability.checkpoint_every = 16;
  durability.compact_on_checkpoint = true;
  durability.wal.segment_bytes = 1024;  // a handful of records per segment
  {
    dtr::testing::MiniCluster a;
    a.scheduler.enable_durability(durability);
    int done = 0;
    const auto on_done = [&](const std::string&) {
      if (++done == 2) a.scheduler.stop();
    };
    a.scheduler.submit_graph(dtr::testing::diamond_graph(), on_done);
    a.scheduler.submit_graph(dtr::testing::independent_graph(16), on_done);
    a.scheduler.start_stealing_loop();
    a.engine.run();
    ASSERT_EQ(done, 2);
  }
  // Compaction bounded by checkpoint age really ran: the boundary marker is
  // on disk, leading segments are gone, and replay reports the dropped
  // prefix so full-log positions stay stable.
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir.str()) /
                                      "wal-compacted"));
  EXPECT_NE(std::filesystem::path(first_segment_path(dir.str())).filename(),
            "wal-00000000.seg");
  wal::ReplayStats stats;
  replay_all(dir.str(), &stats);
  EXPECT_GT(stats.compacted_records, 0u);

  // A cold restart over the truncated journal: the compacting checkpoint
  // carries every task spec its deleted prefix used to hold, so recovery is
  // self-contained — full control state, every result in memory.
  dtr::testing::MiniCluster b;
  b.scheduler.enable_durability(durability);
  b.scheduler.recover();
  b.engine.run();
  EXPECT_EQ(b.scheduler.recoveries(), 1u);
  EXPECT_EQ(b.scheduler.tasks_total(), 20u);
  EXPECT_TRUE(b.scheduler.in_memory({"sink-abc123", 0}));
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(b.scheduler.in_memory({"embarrassing-def456", i})) << i;
  }
  // The recovered scheduler is live: a brand-new graph still completes.
  dtr::TaskGraph extra("post-recovery");
  for (int i = 0; i < 4; ++i) {
    dtr::TaskSpec t;
    t.key = {"post-ff77", i};
    t.work.compute = 0.01;
    t.work.output_bytes = 2048;
    extra.add_task(t);
  }
  EXPECT_TRUE(b.run_graph(extra));
}

TEST(SchedulerDurable, MidRunCrashWithCompactionCompletesTheGraph) {
  // The aggressive configuration: checkpoint every few records, compact on
  // every checkpoint, tiny segments — then crash mid-run. Recovery must
  // stitch the spec-carrying checkpoint to the surviving journal suffix.
  TempDir dir("sched_compact_crash");
  dtr::SchedulerDurability durability;
  durability.dir = dir.str();
  durability.checkpoint_every = 4;
  durability.compact_on_checkpoint = true;
  durability.wal.segment_bytes = 256;
  dtr::testing::MiniCluster mini;
  mini.scheduler.enable_durability(durability);
  bool done = false;
  const auto finish = [&](const std::string&) {
    done = true;
    mini.scheduler.stop();
  };
  mini.scheduler.submit_graph(dtr::testing::diamond_graph(0.05), finish);
  mini.engine.schedule_after(0.02, [&] {
    mini.scheduler.crash_and_recover();
    mini.scheduler.set_graph_done("diamond", finish);
  });
  mini.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(mini.scheduler.recoveries(), 1u);
  EXPECT_EQ(mini.scheduler.tasks_total(), 4u);
  EXPECT_TRUE(mini.scheduler.in_memory({"sink-abc123", 0}));
  wal::ReplayStats stats;
  replay_all(dir.str(), &stats);
  EXPECT_GT(stats.compacted_records, 0u);
}

// ---------------------------------------------------------------------------
// Batched journal groups (DESIGN.md §11): with the batched intake every
// WAL frame is a {"t":"batch","base":N,"recs":[...]} group carrying the
// logical index of its first record, so checkpoint offsets (logical) and
// compaction watermarks (physical frames) stay consistent. A torn group is
// atomically absent — WAL truncation drops whole frames, so a crash inside
// a group can never half-apply it.

TEST(SchedulerBatchedJournal, GroupsAmortizeFramesAndCarryLogicalBases) {
  TempDir dir("sched_batch_frames");
  dtr::testing::MiniCluster mini;
  mini.scheduler.enable_durability({dir.str(), 0, false, {}});
  ASSERT_TRUE(mini.run_graph(dtr::testing::independent_graph(16)));

  // Grouping amortizes: fewer physical frames than logical records
  // (submit_graph alone batches 16 specs + 16 transitions into one frame).
  EXPECT_LT(mini.scheduler.journal_frames(), mini.scheduler.journal_records());
  EXPECT_GT(mini.scheduler.journal_frames(), 0u);

  // On-disk format: every frame is a batch group whose "base" is the
  // logical index of its first inner record, and the bases tile the
  // logical log exactly (no gaps, no overlaps).
  std::size_t next_logical = 0;
  std::size_t frames = 0;
  wal::WalWriter::replay(dir.str(), [&](std::string_view payload) {
    json::Value frame = wire::decode_value(payload);
    ASSERT_EQ(frame.get_string("t", ""), "batch");
    ASSERT_EQ(frame.get_int("base", -1),
              static_cast<std::int64_t>(next_logical));
    const json::Array& recs = frame["recs"].as_array();
    ASSERT_FALSE(recs.empty());
    next_logical += recs.size();
    ++frames;
  });
  EXPECT_EQ(frames, mini.scheduler.journal_frames());
  EXPECT_EQ(next_logical, mini.scheduler.journal_records());
}

TEST(SchedulerBatchedJournal, LegacyModeWritesOneBareFramePerRecord) {
  TempDir dir("sched_legacy_frames");
  dtr::SchedulerConfig config;
  config.legacy_intake = true;
  dtr::testing::MiniCluster mini(2, 2, 2, dtr::WorkerConfig{}, config);
  mini.scheduler.enable_durability({dir.str(), 0, false, {}});
  ASSERT_TRUE(mini.run_graph(dtr::testing::independent_graph(16)));
  EXPECT_EQ(mini.scheduler.journal_frames(), mini.scheduler.journal_records());
  wal::WalWriter::replay(dir.str(), [&](std::string_view payload) {
    const json::Value frame = wire::decode_value(payload);
    EXPECT_NE(frame.get_string("t", ""), "batch");
  });
}

TEST(SchedulerBatchedJournal, LegacyAndBatchedJournalsRecoverIdentically) {
  // The same workload journaled through bare frames and through batch
  // groups must rebuild byte-identical provenance on a cold restart: the
  // group framing is pure transport.
  TempDir legacy_dir("sched_equiv_legacy");
  TempDir batched_dir("sched_equiv_batched");
  {
    dtr::SchedulerConfig config;
    config.legacy_intake = true;
    dtr::testing::MiniCluster mini(2, 2, 2, dtr::WorkerConfig{}, config);
    mini.scheduler.enable_durability({legacy_dir.str(), 0, false, {}});
    ASSERT_TRUE(mini.run_graph(dtr::testing::diamond_graph()));
  }
  {
    dtr::SchedulerConfig config;
    config.shards = 4;
    dtr::testing::MiniCluster mini(2, 2, 2, dtr::WorkerConfig{}, config);
    mini.scheduler.enable_durability({batched_dir.str(), 0, false, {}});
    ASSERT_TRUE(mini.run_graph(dtr::testing::diamond_graph()));
  }
  dtr::testing::MiniCluster from_legacy;
  from_legacy.scheduler.enable_durability({legacy_dir.str(), 0, false, {}});
  from_legacy.scheduler.recover();
  from_legacy.engine.run();
  dtr::testing::MiniCluster from_batched;
  from_batched.scheduler.enable_durability({batched_dir.str(), 0, false, {}});
  from_batched.scheduler.recover();
  from_batched.engine.run();
  EXPECT_EQ(dump_records(from_batched.scheduler.transitions()),
            dump_records(from_legacy.scheduler.transitions()));
  EXPECT_EQ(dump_records(from_batched.scheduler.task_records()),
            dump_records(from_legacy.scheduler.task_records()));
  EXPECT_EQ(from_batched.scheduler.tasks_in_memory(),
            from_legacy.scheduler.tasks_in_memory());
}

TEST(SchedulerBatchedJournal, TornBatchGroupIsAtomicallyAbsent) {
  // Crash mid-write of a batch group: the WAL's torn-tail repair drops the
  // whole frame, so recovery sees *none* of the group's records — never a
  // prefix. The lost tail is re-derived by worker reconciliation, and no
  // record is applied twice.
  TempDir dir("sched_torn_batch");
  {
    dtr::testing::MiniCluster mini;
    mini.scheduler.enable_durability({dir.str(), 0, false, {}});
    ASSERT_TRUE(mini.run_graph(dtr::testing::independent_graph(8)));
  }
  const std::size_t intact_frames = replay_all(dir.str()).size();
  ASSERT_GT(intact_frames, 1u);
  {
    // Tear the final group: chop bytes out of the last frame's payload. In
    // a real crash the group's single write never completed, so the
    // graph-completion checkpoint that followed it never landed either.
    const std::string segment = last_segment_path(dir.str());
    const auto size = std::filesystem::file_size(segment);
    std::filesystem::resize_file(segment, size - 5);
    std::filesystem::remove(std::filesystem::path(dir.str()) /
                            "checkpoint.json");
  }
  wal::ReplayStats stats;
  const std::vector<std::string> frames = replay_all(dir.str(), &stats);
  EXPECT_TRUE(stats.truncated_tail);
  EXPECT_EQ(frames.size(), intact_frames - 1);  // whole group gone, not part

  // A cold restart over the torn journal: the surviving prefix replays
  // cleanly (interior bases still line up), the work the torn group
  // described is re-dispatched, and the graph completes.
  dtr::testing::MiniCluster restarted;
  restarted.scheduler.enable_durability({dir.str(), 0, false, {}});
  restarted.scheduler.recover();
  bool done = false;
  // Fires immediately when the torn frame held only post-completion
  // records; otherwise the re-dispatched tail completes it below.
  restarted.scheduler.set_graph_done("independent", [&](const std::string&) {
    done = true;
    restarted.scheduler.stop();
  });
  restarted.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(restarted.scheduler.recoveries(), 1u);
  EXPECT_EQ(restarted.scheduler.tasks_in_memory(), 8u);
  // No double application: every task's transition chain is still legal
  // (a replayed-then-reapplied record would fork the chain).
  std::map<std::string, std::string> last_state;
  for (const auto& t : restarted.scheduler.transitions()) {
    const std::string key = t.key.to_string();
    if (last_state.count(key)) {
      EXPECT_EQ(last_state[key], t.from_state) << key << " " << t.stimulus;
    }
    last_state[key] = t.to_state;
  }
  for (const auto& [key, state] : last_state) {
    EXPECT_EQ(state, "memory") << key;
  }
}

TEST(SchedulerBatchedJournal, MidBatchCrashNeitherDoublesNorLosesWork) {
  // Crash the scheduler *while groups are open mid-run* (auto-checkpoints
  // every few records force group flushes at awkward boundaries). The
  // buffered group dies with the process; reconciliation against surviving
  // workers must complete the graph with every task in memory exactly once.
  TempDir dir("sched_mid_batch");
  dtr::SchedulerDurability durability;
  durability.dir = dir.str();
  durability.checkpoint_every = 8;
  dtr::testing::MiniCluster mini;
  mini.scheduler.enable_durability(durability);
  bool done = false;
  const auto finish = [&](const std::string&) {
    done = true;
    mini.scheduler.stop();
  };
  mini.scheduler.submit_graph(dtr::testing::independent_graph(12, 0.05),
                              finish);
  mini.engine.schedule_after(0.03, [&] {
    mini.scheduler.crash_and_recover();
    mini.scheduler.set_graph_done("independent", finish);
  });
  mini.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(mini.scheduler.recoveries(), 1u);
  EXPECT_EQ(mini.scheduler.tasks_in_memory(), 12u);
  std::map<std::string, int> memory_entries;
  for (const auto& t : mini.scheduler.transitions()) {
    if (t.to_state == "memory") ++memory_entries[t.key.to_string()];
  }
  EXPECT_EQ(memory_entries.size(), 12u);
  for (const auto& [key, count] : memory_entries) {
    EXPECT_EQ(count, 1) << key << " applied more than once";
  }

  // And the final journal is a consistent full log: a cold second restart
  // rebuilds the exact same records.
  const std::string live = dump_records(mini.scheduler.transitions());
  dtr::testing::MiniCluster cold;
  cold.scheduler.enable_durability(durability);
  cold.scheduler.recover();
  cold.engine.run();
  EXPECT_EQ(dump_records(cold.scheduler.transitions()), live);
}

// ---------------------------------------------------------------------------
// Lease-based worker liveness: a worker that dies *silently* (no SSG death
// notification in the MiniCluster) stops heartbeating; its lease expires
// and the scheduler reclaims its in-flight tasks.

TEST(SchedulerLease, ExpiredLeaseReclaimsTasksFromAHungWorker) {
  dtr::SchedulerConfig scheduler_config;
  scheduler_config.work_stealing = false;  // isolate the lease path
  scheduler_config.heartbeat_interval = 0.05;
  scheduler_config.lease_misses = 4.0;
  dtr::WorkerConfig worker_config;
  worker_config.heartbeat_interval = 0.05;
  dtr::testing::MiniCluster mini(2, 2, 2, worker_config, scheduler_config);

  bool done = false;
  mini.scheduler.submit_graph(
      dtr::testing::independent_graph(8, /*compute=*/0.5),
      [&](const std::string&) {
        done = true;
        mini.scheduler.stop();
        for (auto& worker : mini.workers) worker->stop();
      });
  for (auto& worker : mini.workers) worker->start_heartbeats();
  mini.scheduler.start_lease_loop();
  // Silent death at t=0.1: heartbeats cease, but nobody tells the
  // scheduler. Only the lease can notice.
  mini.engine.schedule_after(0.1, [&] { mini.workers[0]->kill(); });
  mini.engine.run();

  EXPECT_TRUE(done);
  EXPECT_GE(mini.scheduler.lease_expirations(), 1u);
  EXPECT_FALSE(mini.scheduler.worker_alive(0));
  EXPECT_EQ(mini.scheduler.erred_tasks(), 0u);
  std::set<std::string> completed;
  for (const auto& record : mini.scheduler.task_records()) {
    completed.insert(record.key.to_string());
  }
  EXPECT_EQ(completed.size(), 8u);
}

// ---------------------------------------------------------------------------
// Durable ingestor cursors.

dtr::RunData produce_synthetic_run(mofka::Broker& broker,
                                   const std::string& workflow, int n) {
  dtr::RunData run;
  run.meta.workflow = workflow;
  run.meta.run_index = 0;
  for (int i = 0; i < n; ++i) {
    dtr::TaskRecord t;
    t.key = {"job-" + workflow, i};
    t.graph = "g0";
    t.prefix = "ingest";
    t.worker = static_cast<dtr::WorkerId>(i % 2);
    t.start_time = i;
    t.end_time = i + 0.5;
    run.tasks.push_back(t);
  }
  dtr::WarningRecord w;
  w.kind = "gc_collection";
  w.location = "worker-0";
  w.time = 0.25;
  run.warnings.push_back(w);

  mofka::ProducerConfig config;
  config.batch_size = 8;
  config.background_flush = false;
  mofka::Producer tasks(broker, "wms_tasks", config);
  mofka::Producer warnings(broker, "wms_warnings", config);
  for (const auto& r : run.tasks) tasks.push(dtr::to_json(r));
  for (const auto& r : run.warnings) warnings.push(dtr::to_json(r));
  tasks.flush();
  warnings.flush();
  return run;
}

TEST(IngestDurable, CursorWalSurvivesLossOfBrokerCommits) {
  TempDir dir("ingest_cursor");
  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker broker(kv, blobs);
  dtr::create_wms_topics(broker);
  const dtr::RunData run1 = produce_synthetic_run(broker, "r1", 12);
  StoreCatalog cat1;
  {
    LiveIngestor a(broker, cat1, "g", dir.str());
    a.publish(run1.meta);  // commits offsets and logs cursors to the WAL
  }
  const dtr::RunData run2 = produce_synthetic_run(broker, "r2", 7);

  // A restarted ingestor whose broker-side commits are gone (simulated by
  // a fresh consumer group) still resumes from the WAL cursors: run1's
  // events are not re-consumed into run2.
  StoreCatalog cat2;
  LiveIngestor b(broker, cat2, "g_lost", dir.str());
  b.publish(run2.meta);
  {
    const StoreCatalog::Snapshot snap = cat2.snapshot();
    EXPECT_EQ(snap.frame(ViewId::kTasks, {"r2", 0})->rows(), 7u);
  }

  // Control: the same restart *without* the cursor WAL replays everything
  // from offset zero and misattributes run1's records to run2.
  StoreCatalog cat3;
  LiveIngestor c(broker, cat3, "g_lost_no_wal");
  c.publish(run2.meta);
  {
    const StoreCatalog::Snapshot snap = cat3.snapshot();
    EXPECT_EQ(snap.frame(ViewId::kTasks, {"r2", 0})->rows(), 19u);
  }
}

TEST(IngestDurable, InjectedProcessCrashRestoresCursorsAndRepolls) {
  TempDir dir("ingest_crash");
  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker broker(kv, blobs);
  dtr::create_wms_topics(broker);
  const dtr::RunData run = produce_synthetic_run(broker, "crashy", 12);

  StoreCatalog catalog;
  LiveIngestor ingestor(broker, catalog, "g", dir.str());
  chaos::FaultPlan plan;
  plan.seed = 404;
  plan.sites[chaos::sites::kIngestorProcess].schedule.push_back(
      {1, chaos::FaultAction::kProcessCrashRestart});
  ingestor.set_fault_injector(std::make_shared<chaos::FaultInjector>(plan));

  // The first poll crashes: pending events die with the process, cursors
  // restore, and the re-poll delivers everything — nothing was committed
  // before the crash, so nothing is lost.
  EXPECT_EQ(ingestor.poll(), 0u);
  EXPECT_EQ(ingestor.recoveries(), 1u);
  ingestor.publish(run.meta);
  const StoreCatalog::Snapshot snap = catalog.snapshot();
  EXPECT_EQ(snap.frame(ViewId::kTasks, {"crashy", 0})->rows(),
            run.tasks.size());
  EXPECT_EQ(snap.frame(ViewId::kWarnings, {"crashy", 0})->rows(),
            run.warnings.size());
}

// ---------------------------------------------------------------------------
// The crash-recovery oracle: process crashes anywhere in the durable
// control plane must not change any view by a single byte.

std::vector<dtr::TaskGraph> workload() {
  dtr::TaskGraph g1("produce");
  for (int i = 0; i < 12; ++i) {
    dtr::TaskSpec t;
    t.key = {"produce-ca11", i};
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 20;
    g1.add_task(t);
  }
  dtr::TaskGraph g2("consume");
  for (int i = 0; i < 12; ++i) {
    dtr::TaskSpec t;
    t.key = {"consume-fe55", i};
    t.dependencies.push_back({"produce-ca11", i});
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 10;
    g2.add_task(t);
  }
  std::vector<dtr::TaskGraph> graphs;
  graphs.push_back(std::move(g1));
  graphs.push_back(std::move(g2));
  return graphs;
}

std::string fingerprint(const analysis::DataFrame& frame) {
  std::string out;
  for (const auto& name : frame.column_names()) {
    out += name;
    out += ',';
  }
  out += '\n';
  for (std::size_t row = 0; row < frame.rows(); ++row) {
    for (std::size_t c = 0; c < frame.width(); ++c) {
      out += frame.col(c).display(row);
      out += '|';
    }
    out += '\n';
  }
  return out;
}

struct DurableResult {
  std::size_t direct_tasks = 0;
  std::map<std::string, std::string> views;
  std::uint64_t faults = 0;
  std::uint64_t broker_recoveries = 0;
  std::uint64_t scheduler_recoveries = 0;
  std::uint64_t ingestor_recoveries = 0;
};

DurableResult run_durable_pipeline(std::uint64_t cluster_seed,
                                   const chaos::FaultPlan& plan,
                                   const std::string& dir) {
  std::filesystem::remove_all(dir);
  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = cluster_seed;
  config.enable_gpuprof = false;
  config.fault_plan = plan;
  config.producer.batch_size = 16;  // more append batches, more crash sites
  config.producer.max_retries = 32;
  config.durability_dir = dir;

  dtr::Cluster cluster(config);
  const dtr::RunData direct = cluster.run(workload(), "durable", 0);

  StoreCatalog catalog;
  LiveIngestor ingestor(cluster.broker(), catalog, "recup_query_ingest",
                        dir + "/ingest");
  if (cluster.fault_injector()) {
    ingestor.set_fault_injector(cluster.fault_injector());
  }
  ingestor.publish(direct.meta);

  DurableResult result;
  result.direct_tasks = direct.tasks.size();
  const StoreCatalog::Snapshot snap = catalog.snapshot();
  const prov::RunId id{"durable", 0};
  for (const ViewId view : {ViewId::kTasks, ViewId::kTransitions,
                            ViewId::kComms, ViewId::kWarnings,
                            ViewId::kSteals}) {
    result.views[query::view_name(view)] = fingerprint(*snap.frame(view, id));
  }
  if (cluster.fault_injector()) {
    result.faults = cluster.fault_injector()->faults_injected();
  }
  result.broker_recoveries = cluster.broker().recoveries();
  result.scheduler_recoveries = cluster.scheduler().recoveries();
  result.ingestor_recoveries = ingestor.recoveries();
  return result;
}

/// Crashes every durable component: the broker probabilistically per append
/// batch, the scheduler deterministically at the first graph boundary, the
/// ingestor on its first poll (plus probabilistically afterwards).
chaos::FaultPlan crash_everything_plan(std::uint64_t seed) {
  chaos::FaultPlan plan;
  plan.seed = seed;
  plan.sites[chaos::sites::kBrokerProcess].process_crash_restart = 0.05;
  plan.sites[chaos::sites::kSchedulerProcess].schedule.push_back(
      {1, chaos::FaultAction::kProcessCrashRestart});
  chaos::SiteSpec& ingest = plan.sites[chaos::sites::kIngestorProcess];
  ingest.schedule.push_back({1, chaos::FaultAction::kProcessCrashRestart});
  ingest.process_crash_restart = 0.05;
  return plan;
}

class CrashRecoveryOracle : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryOracle, ViewsIdenticalAcrossProcessCrashes) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const chaos::FaultPlan plan = crash_everything_plan(7000 + seed);
  TempDir dir("oracle_" + std::to_string(seed));

  const DurableResult baseline =
      run_durable_pipeline(seed, chaos::FaultPlan{}, dir.str() + "/base");
  const DurableResult crashed =
      run_durable_pipeline(seed, plan, dir.str() + "/fault");

  // The plan really crashed processes...
  EXPECT_GT(crashed.faults, 0u) << plan.describe();
  EXPECT_GE(crashed.scheduler_recoveries, 1u);
  EXPECT_GE(crashed.ingestor_recoveries, 1u);
  EXPECT_EQ(baseline.scheduler_recoveries + baseline.broker_recoveries +
                baseline.ingestor_recoveries,
            0u);
  // ...the workflow was unperturbed...
  EXPECT_EQ(crashed.direct_tasks, baseline.direct_tasks);
  // ...and every view survived byte-identical.
  ASSERT_EQ(crashed.views.size(), baseline.views.size());
  for (const auto& [name, expected] : baseline.views) {
    const auto it = crashed.views.find(name);
    ASSERT_NE(it, crashed.views.end()) << name;
    EXPECT_EQ(it->second, expected)
        << "view '" << name << "' diverged under " << plan.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryOracle, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Dead-letter flow-through: a task the chaos of the cluster dead-letters is
// queryable as a warnings-view row through the full query service.

TEST(DeadLetterQuery, DeadLetteredTaskAppearsInTheWarningsView) {
  dtr::ClusterConfig config;
  config.job.nodes = 1;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = 11;
  config.enable_gpuprof = false;
  config.scheduler.max_retries = 1;

  dtr::TaskGraph graph("doomed");
  dtr::TaskSpec bad;
  bad.key = {"doomed-aa11", 0};
  bad.work.compute = 0.01;
  bad.work.failure_probability = 1.0;  // fails every attempt
  graph.add_task(bad);
  for (int i = 1; i <= 4; ++i) {
    dtr::TaskSpec ok;
    ok.key = {"fine-bb22", i};
    ok.work.compute = 0.01;
    graph.add_task(ok);
  }

  dtr::Cluster cluster(config);
  const dtr::RunData run = cluster.run({graph}, "deadletter", 0);
  ASSERT_GE(cluster.scheduler().erred_tasks(), 1u);

  StoreCatalog catalog;
  LiveIngestor ingestor(cluster.broker(), catalog);
  ingestor.publish(run.meta);

  query::QueryServer server(catalog);
  query::QueryClient client(server);
  const query::QueryResponse response = client.query(std::string(
      R"({"from": "warnings",
          "where": [{"col": "kind", "op": "==", "value": "dead_letter"}]})"));
  ASSERT_TRUE(response.ok) << response.error;
  ASSERT_GE(response.frame.rows(), 1u);
  // The row names the doomed task.
  bool named = false;
  for (std::size_t c = 0; c < response.frame.width(); ++c) {
    for (std::size_t r = 0; r < response.frame.rows(); ++r) {
      if (response.frame.col(c).display(r).find("doomed-aa11") !=
          std::string::npos) {
        named = true;
      }
    }
  }
  EXPECT_TRUE(named);
}

// ---------------------------------------------------------------------------
// QueryClient transient retry: a client resolving the server through a
// discovery hook rides out a restart; without retries the same error is
// surfaced (marked transient) instead.

TEST(QueryRetry, ClientRetriesAcrossAServerRestart) {
  StoreCatalog catalog;
  dtr::RunData run;
  run.meta.workflow = "W";
  run.meta.run_index = 0;
  dtr::TaskRecord t;
  t.key = {"t-aaaa", 0};
  t.graph = "g";
  t.prefix = "t";
  t.worker = 0;
  t.start_time = 0.0;
  t.end_time = 1.0;
  run.tasks.push_back(t);
  catalog.add_run(run);

  query::QueryServer dead(catalog);
  dead.shutdown();
  query::QueryServer live(catalog);

  // Fail-fast control: no retries, the shutdown error comes back marked
  // retryable.
  {
    query::QueryClient client(dead);
    const query::QueryResponse response =
        client.query(std::string(R"({"from": "tasks"})"));
    EXPECT_FALSE(response.ok);
    EXPECT_TRUE(response.raw.get_bool("transient", false));
    EXPECT_EQ(client.retries(), 0u);
  }

  // Discovery resolves the dead server first, the restarted one on retry.
  std::atomic<int> resolutions{0};
  query::QueryClient::Config config;
  config.max_retries = 3;
  query::QueryClient client(
      [&]() -> query::QueryServer& {
        return resolutions.fetch_add(1) == 0 ? dead : live;
      },
      config);
  const query::QueryResponse response =
      client.query(std::string(R"({"from": "tasks"})"));
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.frame.rows(), 1u);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(resolutions.load(), 2);
}

}  // namespace
}  // namespace recup
