// Unit tests for the Mochi microservice substrate: Yokan KV, Warabi blobs,
// SSG membership/fault detection, Bedrock bootstrapping.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "mochi/bedrock.hpp"
#include "mochi/ssg.hpp"
#include "mochi/warabi.hpp"
#include "mochi/yokan.hpp"

namespace recup::mochi {
namespace {

TEST(Yokan, PutGetEraseExists) {
  KeyValueStore kv;
  kv.put("a", "1");
  EXPECT_EQ(kv.get("a").value(), "1");
  EXPECT_TRUE(kv.exists("a"));
  kv.put("a", "2");  // overwrite
  EXPECT_EQ(kv.get("a").value(), "2");
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_FALSE(kv.erase("a"));
  EXPECT_FALSE(kv.get("a").has_value());
}

TEST(Yokan, PutIfAbsent) {
  KeyValueStore kv;
  EXPECT_TRUE(kv.put_if_absent("k", "v1"));
  EXPECT_FALSE(kv.put_if_absent("k", "v2"));
  EXPECT_EQ(kv.get("k").value(), "v1");
}

TEST(Yokan, PrefixListingOrderedAndLimited) {
  KeyValueStore kv;
  kv.put("t/a/2", "y");
  kv.put("t/a/1", "x");
  kv.put("t/b/1", "z");
  kv.put("u/0", "w");
  const auto keys = kv.list_keys("t/a/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "t/a/1");
  EXPECT_EQ(keys[1], "t/a/2");
  EXPECT_EQ(kv.list_keys("t/", 1).size(), 1u);
  const auto kvs = kv.list_keyvals("t/b/");
  ASSERT_EQ(kvs.size(), 1u);
  EXPECT_EQ(kvs[0].second, "z");
}

TEST(Yokan, IncrementAtomicCounter) {
  KeyValueStore kv;
  EXPECT_EQ(kv.increment("n"), 1);
  EXPECT_EQ(kv.increment("n", 5), 6);
  EXPECT_EQ(kv.increment("n", -2), 4);
  kv.put("bad", "not-a-number");
  EXPECT_THROW(kv.increment("bad"), std::runtime_error);
}

TEST(Yokan, SaveLoadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() /
                           "recup_yokan_test.bin";
  KeyValueStore kv;
  kv.put("key with spaces", std::string("binary\0data", 11));
  kv.put("empty", "");
  kv.save(path);
  KeyValueStore loaded;
  loaded.load(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.get("key with spaces").value(),
            std::string("binary\0data", 11));
  EXPECT_EQ(loaded.get("empty").value(), "");
  std::filesystem::remove(path);
}

TEST(Yokan, LoadMissingFileThrows) {
  KeyValueStore kv;
  EXPECT_THROW(kv.load("/nonexistent/path/xyz"), std::runtime_error);
}

TEST(Yokan, ConcurrentPuts) {
  KeyValueStore kv;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&kv, t] {
      for (int i = 0; i < 250; ++i) {
        kv.put("k" + std::to_string(t) + "-" + std::to_string(i), "v");
        kv.increment("counter");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kv.size(), 1001u);  // 1000 keys + counter
  EXPECT_EQ(kv.get("counter").value(), "1000");
}

TEST(Warabi, CreateSealedReadBack) {
  BlobStore store;
  const RegionId id = store.create_sealed("hello world");
  EXPECT_EQ(store.read(id), "hello world");
  EXPECT_EQ(store.read(id, 6), "world");
  EXPECT_EQ(store.read(id, 6, 3), "wor");
  EXPECT_EQ(store.read(id, 100), "");  // past end clamps
  EXPECT_EQ(store.size(id), 11u);
  EXPECT_TRUE(store.sealed(id));
}

TEST(Warabi, AppendThenSeal) {
  BlobStore store;
  const RegionId id = store.create();
  EXPECT_EQ(store.append(id, "abc"), 0u);
  EXPECT_EQ(store.append(id, "def"), 3u);
  store.seal(id);
  EXPECT_THROW(store.append(id, "x"), std::logic_error);
  EXPECT_EQ(store.read(id), "abcdef");
}

TEST(Warabi, EraseAndUnknownRegion) {
  BlobStore store;
  const RegionId id = store.create_sealed("x");
  EXPECT_TRUE(store.exists(id));
  EXPECT_TRUE(store.erase(id));
  EXPECT_FALSE(store.exists(id));
  EXPECT_THROW(store.read(id), std::out_of_range);
  EXPECT_THROW(store.size(999), std::out_of_range);
}

TEST(Warabi, StatsTrackBytes) {
  BlobStore store;
  const RegionId id = store.create_sealed("12345678");
  store.read(id, 0, 4);
  const WarabiStats stats = store.stats();
  EXPECT_EQ(stats.bytes_written, 8u);
  EXPECT_EQ(stats.bytes_read, 4u);
  EXPECT_EQ(stats.creates, 1u);
}

// Regression pin for the locking contract documented in warabi.hpp: every
// public call serializes on the store's single internal mutex, so a read of
// an *unsealed* region concurrent with appends to it is a prefix-consistent
// snapshot — a whole number of appended records, never a torn one. Any
// change to the locking scheme (sharding the mutex, lock-free reads) must
// keep this hammer green under TSan.
TEST(Warabi, BlobStoreLockingContract) {
  BlobStore store;
  const RegionId open = store.create();
  // Records are runs of one repeated letter; a torn read would surface as a
  // run whose length is not a multiple of the record size.
  constexpr std::size_t kRecordSize = 64;
  constexpr int kRecords = 400;

  std::thread appender([&] {
    for (int i = 0; i < kRecords; ++i) {
      store.append(open, std::string(kRecordSize, static_cast<char>(
                                                      'a' + (i % 2))));
    }
    store.seal(open);
  });

  std::uint64_t snapshots = 0;
  for (;;) {
    const std::string snapshot = store.read(open);
    ++snapshots;
    // Prefix consistency: a whole number of records, and each record run is
    // intact (no interleaving or tearing within a record boundary).
    ASSERT_EQ(snapshot.size() % kRecordSize, 0u);
    for (std::size_t r = 0; r + kRecordSize <= snapshot.size();
         r += kRecordSize) {
      const char expected = static_cast<char>('a' + (r / kRecordSize) % 2);
      ASSERT_EQ(snapshot[r], expected) << "record " << r / kRecordSize;
      ASSERT_EQ(snapshot[r + kRecordSize - 1], expected)
          << "record " << r / kRecordSize;
    }
    if (snapshot.size() == kRecordSize * kRecords && store.sealed(open)) break;
  }
  appender.join();
  EXPECT_GT(snapshots, 0u);
  EXPECT_EQ(store.read(open).size(), kRecordSize * kRecords);

  // Multi-call atomicity is *not* promised for open regions: only sealing
  // freezes the region (further appends throw), after which any sequence of
  // reads is trivially consistent.
  EXPECT_THROW(store.append(open, "late"), std::logic_error);
}

TEST(Ssg, JoinLeaveMembership) {
  Group group("g");
  const MemberId a = group.join("addr-a");
  const MemberId b = group.join("addr-b");
  EXPECT_EQ(group.members().size(), 2u);
  EXPECT_EQ(group.alive_count(), 2u);
  group.leave(a);
  EXPECT_EQ(group.members().size(), 1u);
  EXPECT_EQ(group.state(b), MemberState::kAlive);
  EXPECT_THROW(group.state(a), std::out_of_range);
}

TEST(Ssg, FaultDetectionProgression) {
  Group group("g", /*suspect_after=*/2, /*dead_after=*/4);
  const MemberId a = group.join("addr-a");
  std::vector<MembershipUpdate> updates;
  group.add_observer([&](const Member&, MembershipUpdate u) {
    updates.push_back(u);
  });
  group.tick();  // consume join-round heartbeat
  group.tick();  // miss 1
  EXPECT_EQ(group.state(a), MemberState::kAlive);
  group.tick();  // miss 2 -> suspect
  EXPECT_EQ(group.state(a), MemberState::kSuspect);
  group.tick();  // miss 3
  group.tick();  // miss 4 -> dead
  EXPECT_EQ(group.state(a), MemberState::kDead);
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_EQ(updates[0], MembershipUpdate::kSuspected);
  EXPECT_EQ(updates[1], MembershipUpdate::kDied);
}

TEST(Ssg, HeartbeatRevivesSuspect) {
  Group group("g", 2, 5);
  const MemberId a = group.join("addr-a");
  group.tick();
  group.tick();
  group.tick();  // -> suspect
  EXPECT_EQ(group.state(a), MemberState::kSuspect);
  bool rejoined = false;
  group.add_observer([&](const Member&, MembershipUpdate u) {
    if (u == MembershipUpdate::kRejoined) rejoined = true;
  });
  group.heartbeat(a);
  EXPECT_EQ(group.state(a), MemberState::kAlive);
  EXPECT_TRUE(rejoined);
}

TEST(Ssg, SteadyHeartbeatsStayAlive) {
  Group group("g");
  const MemberId a = group.join("addr-a");
  for (int i = 0; i < 20; ++i) {
    group.heartbeat(a);
    group.tick();
  }
  EXPECT_EQ(group.state(a), MemberState::kAlive);
}

TEST(Ssg, InvalidThresholdsRejected) {
  EXPECT_THROW(Group("g", 0, 5), std::invalid_argument);
  EXPECT_THROW(Group("g", 5, 5), std::invalid_argument);
}

TEST(Bedrock, BootstrapFromJson) {
  auto handle = ServiceHandle::from_string(R"({
    "providers": [
      {"type": "yokan",  "name": "meta"},
      {"type": "warabi", "name": "data"},
      {"type": "ssg",    "name": "group", "suspect_after": 3,
       "dead_after": 9}
    ]
  })");
  handle.yokan("meta").put("k", "v");
  EXPECT_EQ(handle.yokan("meta").get("k").value(), "v");
  const auto id = handle.warabi("data").create_sealed("blob");
  EXPECT_EQ(handle.warabi("data").read(id), "blob");
  handle.ssg("group").join("w1");
  EXPECT_EQ(handle.ssg("group").alive_count(), 1u);
  EXPECT_TRUE(handle.has_provider("meta"));
  EXPECT_FALSE(handle.has_provider("nope"));
  EXPECT_EQ(handle.provider_names().size(), 3u);
}

TEST(Bedrock, ConfigErrors) {
  EXPECT_THROW(ServiceHandle::from_string("{}"), BedrockError);
  EXPECT_THROW(ServiceHandle::from_string(
                   R"({"providers": [{"type": "bogus", "name": "x"}]})"),
               BedrockError);
  EXPECT_THROW(ServiceHandle::from_string(
                   R"({"providers": [{"type": "yokan"}]})"),
               BedrockError);
  EXPECT_THROW(ServiceHandle::from_string(R"({"providers": [
                   {"type": "yokan", "name": "dup"},
                   {"type": "warabi", "name": "dup"}]})"),
               BedrockError);
  auto handle = ServiceHandle::from_string(
      R"({"providers": [{"type": "yokan", "name": "meta"}]})");
  EXPECT_THROW(handle.warabi("meta"), BedrockError);
  EXPECT_THROW(handle.yokan("missing"), BedrockError);
}

}  // namespace
}  // namespace recup::mochi
