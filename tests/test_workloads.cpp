// Workload generator tests: graph structure matches Table I (task graphs,
// distinct tasks, files), datasets, and parameterized scaling.
#include <gtest/gtest.h>

#include <set>

#include "workloads/datasets.hpp"
#include "workloads/image_processing.hpp"
#include "workloads/registry.hpp"
#include "workloads/resnet152.hpp"
#include "workloads/xgboost.hpp"

namespace recup::workloads {
namespace {

std::size_t total_tasks(const std::vector<dtr::TaskGraph>& graphs) {
  std::size_t total = 0;
  for (const auto& g : graphs) total += g.size();
  return total;
}

TEST(Datasets, SizesMatchPaper) {
  const auto bcss = bcss_images();
  EXPECT_EQ(bcss.size(), 151u);
  for (const auto& f : bcss) {
    EXPECT_GE(f.bytes, 80ULL << 20);
    EXPECT_LT(f.bytes, 85ULL << 20);
  }
  const auto wang = imagewang_files();
  EXPECT_EQ(wang.size(), 3929u);
  for (const auto& f : wang) {
    EXPECT_GE(f.bytes, 100ULL << 10);
    EXPECT_LT(f.bytes, 400ULL << 10);
  }
  const auto taxi = nyc_taxi_parquet();
  EXPECT_EQ(taxi.size(), 61u);
  std::uint64_t total = 0;
  for (const auto& f : taxi) total += f.bytes;
  EXPECT_NEAR(static_cast<double>(total),
              static_cast<double>(20ULL << 30), 4e9);
}

TEST(Datasets, PathsAreUniqueAndDeterministic) {
  const auto a = imagewang_files(100);
  const auto b = imagewang_files(100);
  std::set<std::string> paths;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].path, b[i].path);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    paths.insert(a[i].path);
  }
  EXPECT_EQ(paths.size(), 100u);
}

TEST(ImageProcessing, StructureMatchesTable1) {
  Workload w = make_image_processing(42);
  RngStream rng(1);
  const auto graphs = w.build_graphs(rng);
  ASSERT_EQ(graphs.size(), 3u);  // Table I: 3 task graphs
  EXPECT_EQ(total_tasks(graphs), 5440u);  // Table I: 5440 distinct tasks
  // Dependencies across graphs reference earlier graphs' outputs.
  std::vector<dtr::TaskKey> external;
  for (const auto& g : graphs) {
    g.validate(external);
    for (const auto& [key, spec] : g.tasks()) external.push_back(key);
  }
}

TEST(ImageProcessing, ReadOpsNearPaperRange) {
  Workload w = make_image_processing(42);
  RngStream rng(7);
  const auto graphs = w.build_graphs(rng);
  std::size_t reads = 0;
  std::size_t writes = 0;
  for (const auto& g : graphs) {
    for (const auto& [key, spec] : g.tasks()) {
      reads += spec.work.reads.size();
      writes += spec.work.writes.size();
    }
  }
  // Paper Table I: 5274-5287 I/O operations.
  EXPECT_GT(reads + writes, 5150u);
  EXPECT_LT(reads + writes, 5400u);
  // Figure 4: reads are 4 MB ops.
  for (const auto& [key, spec] : graphs[0].tasks()) {
    for (const auto& op : spec.work.reads) {
      EXPECT_EQ(op.length, 4ULL << 20);
    }
  }
}

TEST(ImageProcessing, IoCountVariesAcrossRunSeeds) {
  Workload w = make_image_processing(42);
  std::set<std::size_t> counts;
  for (int s = 0; s < 5; ++s) {
    RngStream rng(static_cast<std::uint64_t>(s));
    const auto graphs = w.build_graphs(rng);
    std::size_t reads = 0;
    for (const auto& g : graphs) {
      for (const auto& [key, spec] : g.tasks()) {
        reads += spec.work.reads.size();
      }
    }
    counts.insert(reads);
  }
  EXPECT_GT(counts.size(), 1u);  // run-to-run variation exists
}

TEST(ResNet152, StructureMatchesTable1) {
  Workload w = make_resnet152(42);
  RngStream rng(1);
  const auto graphs = w.build_graphs(rng);
  ASSERT_EQ(graphs.size(), 1u);  // Table I: single task graph
  EXPECT_EQ(total_tasks(graphs), 8645u);  // Table I: 8645 distinct tasks
  graphs[0].validate();
  // 3929 distinct input files referenced.
  std::set<std::string> files;
  for (const auto& [key, spec] : graphs[0].tasks()) {
    for (const auto& op : spec.work.reads) files.insert(op.path);
  }
  EXPECT_EQ(files.size(), 3929u);
}

TEST(ResNet152, DxtBudgetConfiguredForTruncation) {
  Workload w = make_resnet152(42);
  EXPECT_EQ(w.cluster.darshan.dxt.memory_budget_units, 620u);
  // Issued ops far exceed what the budget can record (8 workers x ~1250).
  RngStream rng(1);
  const auto graphs = w.build_graphs(rng);
  std::size_t reads = 0;
  for (const auto& [key, spec] : graphs[0].tasks()) {
    reads += spec.work.reads.size();
  }
  EXPECT_GT(reads, 4000u);
}

TEST(Xgboost, StructureMatchesTable1) {
  Workload w = make_xgboost(42);
  RngStream rng(1);
  const auto graphs = w.build_graphs(rng);
  ASSERT_EQ(graphs.size(), 74u);  // Table I: 74 task graphs
  EXPECT_EQ(total_tasks(graphs), 10348u);  // Table I: 10348 distinct tasks
  // 61 distinct parquet files (shuffle scratch files excluded).
  std::set<std::string> files;
  for (const auto& g : graphs) {
    for (const auto& [key, spec] : g.tasks()) {
      for (const auto& op : spec.work.reads) {
        if (op.path.rfind("/data/", 0) == 0) files.insert(op.path);
      }
    }
  }
  EXPECT_EQ(files.size(), 61u);
}

TEST(Xgboost, ReadParquetTasksAreTheHeavyCategory) {
  Workload w = make_xgboost(42);
  RngStream rng(1);
  const auto graphs = w.build_graphs(rng);
  bool found = false;
  for (const auto& [key, spec] : graphs[0].tasks()) {
    if (key.prefix() == "read_parquet-fused-assign") {
      found = true;
      EXPECT_TRUE(spec.work.blocks_event_loop);
      EXPECT_GT(spec.work.compute, 10.0);
      // Output above the recommended 128 MB chunk size (Figure 6 point).
      EXPECT_GT(spec.work.output_bytes, 128ULL << 20);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Xgboost, GraphChainIsValidAcrossSubmissions) {
  Workload w = make_xgboost(42);
  RngStream rng(1);
  const auto graphs = w.build_graphs(rng);
  std::vector<dtr::TaskKey> external;
  for (const auto& g : graphs) {
    g.validate(external);
    for (const auto& [key, spec] : g.tasks()) external.push_back(key);
  }
}

TEST(Xgboost, ScalingParamsKeepValidity) {
  XgboostParams params;
  params.partitions = 8;
  params.boosting_rounds = 5;
  params.reducers = 4;
  Workload w = make_xgboost(42, params);
  RngStream rng(1);
  const auto graphs = w.build_graphs(rng);
  EXPECT_EQ(graphs.size(), 9u);  // load + split + 5 rounds + predict + score
  std::vector<dtr::TaskKey> external;
  for (const auto& g : graphs) {
    g.validate(external);
    for (const auto& [key, spec] : g.tasks()) external.push_back(key);
  }
}

TEST(Registry, NamesAndLookup) {
  const auto names = workload_names();
  ASSERT_EQ(names.size(), 3u);
  for (const auto& name : names) {
    const Workload w = make_workload(name);
    EXPECT_EQ(w.name, name);
  }
  EXPECT_THROW(make_workload("Bogus"), std::invalid_argument);
}

TEST(Registry, GraphStructureStableAcrossRunIndexes) {
  // The task *structure* must be identical between runs; only stochastic
  // details (I/O retry counts) may differ.
  Workload w = make_image_processing(42);
  RngStream r1(1);
  RngStream r2(2);
  const auto a = w.build_graphs(r1);
  const auto b = w.build_graphs(r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    ASSERT_EQ(a[g].size(), b[g].size());
    auto it_a = a[g].tasks().begin();
    auto it_b = b[g].tasks().begin();
    for (; it_a != a[g].tasks().end(); ++it_a, ++it_b) {
      EXPECT_EQ(it_a->first, it_b->first);
      EXPECT_EQ(it_a->second.dependencies, it_b->second.dependencies);
    }
  }
}

}  // namespace
}  // namespace recup::workloads
