// Segment-store tests: columnar segment round-trip properties, canonical
// dictionary encoding, footer CRC bit-rot detection, zone-map pruning
// soundness, snapshot isolation under concurrent flush/compaction, the
// 10-seed crash-during-flush/compact cold-start oracle (byte-identity
// against in-memory re-ingestion), read replicas serving a live writer,
// fsck, and the unified DurabilityConfig mapping.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault.hpp"
#include "common/durability.hpp"
#include "dtr/scheduler.hpp"
#include "mofka/broker.hpp"
#include "query/catalog.hpp"
#include "query/ir.hpp"
#include "query/plan.hpp"
#include "query/wire.hpp"
#include "segstore/segment.hpp"
#include "segstore/store.hpp"

namespace recup {
namespace {

using analysis::Column;
using analysis::ColumnType;
using analysis::DataFrame;
using query::StoreCatalog;
using query::ViewId;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("recup_segstore_" + tag + "_" +
                std::to_string(static_cast<long>(::getpid()))))
                  .string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::string dump(const DataFrame& frame) {
  return query::frame_to_json(frame).dump();
}

/// xorshift generator: the property tests need deterministic variety, not
/// statistical quality.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next() % static_cast<std::uint64_t>(
                                                       hi - lo + 1));
  }
  double next_double() {
    return static_cast<double>(next() % 2000001) / 1000.0 - 1000.0;
  }
};

DataFrame random_frame(Rng& rng, std::size_t rows) {
  DataFrame f({{"s", ColumnType::kString},
               {"i", ColumnType::kInt64},
               {"d", ColumnType::kDouble}});
  const char* words[] = {"alpha", "beta", "gamma", "", "delta-very-long-value",
                         "epsilon"};
  for (std::size_t r = 0; r < rows; ++r) {
    const double d = (rng.next() % 17 == 0) ? std::nan("") : rng.next_double();
    f.add_row({std::string(words[rng.next() % 6]),
               rng.next_int(-1000000, 1000000), d});
  }
  return f;
}

/// Deterministic run with per-run value ranges so zone maps differ between
/// runs: run `index` holds output_bytes in [base, base + n).
dtr::RunData make_run(const std::string& workflow, std::uint32_t index,
                      int n = 8, std::int64_t bytes_base = 0) {
  dtr::RunData run;
  run.meta.workflow = workflow;
  run.meta.run_index = index;
  for (int i = 0; i < n; ++i) {
    dtr::TaskRecord t;
    t.key = {"job-" + workflow, i};
    t.graph = "g0";
    t.prefix = (i % 2 == 0) ? "ingest" : "train";
    t.worker = static_cast<dtr::WorkerId>(i % 2);
    t.worker_address = "tcp://10.0.0." + std::to_string(i % 2);
    t.thread_id = 100 + static_cast<std::uint64_t>(i);
    t.start_time = 1.0 * i;
    t.end_time = 1.0 * i + 0.5 + 0.1 * (i % 2);
    t.compute_time = 0.4;
    t.output_bytes = static_cast<std::uint64_t>(bytes_base + i);
    run.tasks.push_back(t);

    dtr::TransitionRecord tr;
    tr.key = t.key;
    tr.graph = "g0";
    tr.from_state = "processing";
    tr.to_state = "memory";
    tr.stimulus = "task-finished";
    tr.location = t.worker_address;
    tr.time = t.end_time;
    run.transitions.push_back(tr);

    if (i % 2 == 0) {
      dtr::CommRecord c;
      c.key = t.key;
      c.source = 0;
      c.destination = 1;
      c.bytes = 4096;
      c.start = t.end_time;
      c.end = t.end_time + 0.01;
      run.comms.push_back(c);
    }
  }
  dtr::WarningRecord w;
  w.kind = "gc_collection";
  w.location = "scheduler";
  w.time = 0.5;
  w.blocked_for = 0.2;
  run.warnings.push_back(w);
  return run;
}

std::vector<ViewId> all_views() {
  std::vector<ViewId> views;
  for (std::size_t i = 0; i < query::view_names().size(); ++i) {
    views.push_back(static_cast<ViewId>(i));
  }
  return views;
}

/// Every (view, run) frame of `a` must serialize identically to `b`'s.
void expect_catalogs_identical(const StoreCatalog& a, const StoreCatalog& b) {
  const auto snap_a = a.snapshot();
  const auto snap_b = b.snapshot();
  ASSERT_EQ(snap_a.epoch(), snap_b.epoch());
  const auto runs_a = snap_a.runs(std::nullopt, std::nullopt);
  const auto runs_b = snap_b.runs(std::nullopt, std::nullopt);
  ASSERT_EQ(runs_a, runs_b);
  for (const auto& id : runs_a) {
    for (ViewId view : all_views()) {
      SCOPED_TRACE(query::view_name(view) + "/" + id.workflow + "/" +
                   std::to_string(id.run_index));
      const auto fa = snap_a.frame(view, id);
      const auto fb = snap_b.frame(view, id);
      ASSERT_NE(fa, nullptr);
      ASSERT_NE(fb, nullptr);
      EXPECT_EQ(dump(*fa), dump(*fb));
      EXPECT_EQ(snap_a.estimated_rows(view, id),
                snap_b.estimated_rows(view, id));
    }
  }
}

// ---------------------------------------------------------------------------
// Segment format

TEST(SegstoreSegment, EncodeDecodeRoundTripProperty) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng{seed * 2654435761u + 1};
    std::vector<DataFrame> frames;
    std::vector<segstore::ChunkInput> chunks;
    const std::size_t n_chunks = 1 + rng.next() % 3;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      frames.push_back(random_frame(rng, rng.next() % 40));
    }
    for (std::size_t c = 0; c < n_chunks; ++c) {
      chunks.push_back(
          {segstore::RunKey{"wf", static_cast<std::uint32_t>(c)}, &frames[c]});
    }
    segstore::SegmentInfo info;
    const std::string bytes = segstore::encode_segment("tasks", chunks, &info);
    EXPECT_EQ(segstore::verify_footer(bytes),
              bytes.size() - segstore::kFooterBytes);

    const segstore::DecodedSegment decoded = segstore::decode_segment(bytes);
    ASSERT_EQ(decoded.view, "tasks");
    ASSERT_EQ(decoded.chunks.size(), n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " chunk " +
                   std::to_string(c));
      EXPECT_EQ(decoded.chunks[c].first, chunks[c].run);
      EXPECT_EQ(dump(decoded.chunks[c].second), dump(frames[c]));
      EXPECT_EQ(info.chunks[c].rows, frames[c].rows());
      // Point read touches only this chunk's payload.
      const DataFrame point =
          segstore::decode_chunk(bytes, info.chunks[c].offset,
                                 &info.chunks[c]);
      EXPECT_EQ(dump(point), dump(frames[c]));
      // Recomputed zone maps agree with the encoder's.
      EXPECT_EQ(decoded.info.chunks[c].columns, info.chunks[c].columns);
    }
  }
}

TEST(SegstoreSegment, CanonicalDictionaryMakesEqualFramesIdenticalBytes) {
  // Same logical rows, different dictionary construction histories: f1 grew
  // its dictionary by row order, f2 carries a permuted dictionary with an
  // unreferenced entry. Canonical re-encoding must emit identical bytes.
  DataFrame f1({{"s", ColumnType::kString}});
  f1.add_row({std::string("beta")});
  f1.add_row({std::string("alpha")});
  f1.add_row({std::string("beta")});

  Column permuted = Column::from_dict(
      "s", {"unused", "alpha", "beta"}, {2, 1, 2});
  const DataFrame f2 = DataFrame::from_columns({permuted});
  ASSERT_EQ(dump(f1), dump(f2));

  segstore::SegmentInfo i1;
  segstore::SegmentInfo i2;
  const segstore::RunKey run{"wf", 0};
  EXPECT_EQ(segstore::encode_segment("v", {{run, &f1}}, &i1),
            segstore::encode_segment("v", {{run, &f2}}, &i2));
}

TEST(SegstoreSegment, FooterDetectsBitRot) {
  DataFrame f({{"i", ColumnType::kInt64}});
  for (int i = 0; i < 100; ++i) f.add_row({std::int64_t{i * 7}});
  segstore::SegmentInfo info;
  std::string bytes =
      segstore::encode_segment("v", {{segstore::RunKey{"wf", 0}, &f}}, &info);
  ASSERT_NO_THROW(segstore::verify_footer(bytes));

  std::string body_flip = bytes;
  body_flip[body_flip.size() / 2] ^= 0x40;
  EXPECT_THROW(segstore::verify_footer(body_flip), segstore::SegstoreError);

  std::string truncated = bytes.substr(0, bytes.size() - 3);
  EXPECT_THROW(segstore::verify_footer(truncated), segstore::SegstoreError);

  std::string footer_flip = bytes;
  footer_flip.back() ^= 0x01;  // footer magic
  EXPECT_THROW(segstore::verify_footer(footer_flip), segstore::SegstoreError);

  EXPECT_THROW(segstore::verify_footer(std::string_view("tiny")),
               segstore::SegstoreError);
}

TEST(SegstoreSegment, StatsHandleNaNEmptyAndUnreferencedDictEntries) {
  Column with_nan("d", ColumnType::kDouble);
  with_nan.push_f64(1.0);
  with_nan.push_f64(std::nan(""));
  with_nan.push_f64(-5.0);
  const segstore::ColumnStats nan_stats = segstore::compute_stats(with_nan);
  // Any NaN row poisons the min/max range; pruning must see "no range"
  // rather than a range that silently excludes the NaN row.
  EXPECT_FALSE(nan_stats.dbl_valid);
  EXPECT_FALSE(nan_stats.numeric_range().has_value());

  const Column empty_int("i", ColumnType::kInt64);
  const segstore::ColumnStats empty_stats =
      segstore::compute_stats(empty_int);
  EXPECT_EQ(empty_stats.rows, 0u);
  EXPECT_GT(empty_stats.int_min, empty_stats.int_max);  // empty sentinel

  // String stats cover referenced values only: the unused "zzz" dictionary
  // entry must not widen the range.
  const Column strings =
      Column::from_dict("s", {"zzz", "mmm", "aaa"}, {1, 2, 1});
  const segstore::ColumnStats str_stats = segstore::compute_stats(strings);
  ASSERT_TRUE(str_stats.str_valid);
  EXPECT_EQ(str_stats.str_min, "aaa");
  EXPECT_EQ(str_stats.str_max, "mmm");
}

// ---------------------------------------------------------------------------
// Zone-map pruning

TEST(SegstorePruning, StatsMayMatchNeverPrunesAMatchingRow) {
  // Property: whenever stats_may_match says "prune", zero rows match the
  // predicate. (The reverse — may_match with zero matching rows — is
  // allowed: zone maps are conservative.)
  using query::CmpOp;
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  std::size_t pruned_checked = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng{seed * 9176423u + 3};
    const DataFrame frame = random_frame(rng, 1 + rng.next() % 12);
    for (std::size_t col = 0; col < frame.width(); ++col) {
      const Column& column = frame.col(col);
      const segstore::ColumnStats stats = segstore::compute_stats(column);
      query::Predicate pred;
      pred.column = column.name();
      pred.op = ops[rng.next() % 6];
      switch (column.type()) {
        case ColumnType::kInt64:
          pred.value = analysis::Cell(rng.next_int(-1000000, 1000000));
          break;
        case ColumnType::kDouble:
          pred.value = analysis::Cell(rng.next_double());
          break;
        case ColumnType::kString: {
          const char* probes[] = {"alpha", "beta", "zzz", "", "aa"};
          pred.value = analysis::Cell(std::string(probes[rng.next() % 5]));
          if (rng.next() % 4 == 0) pred.op = CmpOp::kContains;
          break;
        }
      }
      if (!query::stats_may_match(stats, pred)) {
        ++pruned_checked;
        EXPECT_EQ(query::apply_predicates(frame, {pred}).rows(), 0u)
            << "seed " << seed << " column " << column.name();
      }
    }
  }
  // The generator must actually exercise the prune path.
  EXPECT_GT(pruned_checked, 50u);
}

TEST(SegstorePruning, PlannerPrunesRunsByZoneMapsWithIdenticalResults) {
  TempDir dir("zoneprune");
  segstore::SegmentStoreConfig config;
  config.dir = dir.str();
  StoreCatalog durable(config);
  StoreCatalog memory;
  for (std::uint32_t r = 0; r < 3; ++r) {
    // Disjoint output_bytes ranges per run: [0,8), [100000,100008), ...
    durable.add_run(make_run("W", r, 8, 100000 * static_cast<int>(r)));
    memory.add_run(make_run("W", r, 8, 100000 * static_cast<int>(r)));
  }
  const query::Query q = query::parse_query(std::string(
      R"({"from": "tasks",
          "where": [{"col": "output_bytes", "op": ">", "value": 150000}]})"));

  const query::Plan durable_plan = query::plan_query(q, durable.snapshot());
  EXPECT_EQ(durable_plan.total_runs, 3u);
  EXPECT_EQ(durable_plan.zone_pruned, 2u);  // runs 0 and 1 can never match
  ASSERT_EQ(durable_plan.runs.size(), 1u);
  EXPECT_EQ(durable_plan.runs[0].run_index, 2u);

  // The memory backend has no zone maps: nothing pruned, same answer.
  const query::Plan memory_plan = query::plan_query(q, memory.snapshot());
  EXPECT_EQ(memory_plan.zone_pruned, 0u);
  EXPECT_EQ(memory_plan.runs.size(), 3u);

  const auto durable_result = query::execute_query(q, durable, nullptr);
  const auto memory_result = query::execute_query(q, memory, nullptr);
  EXPECT_EQ(durable_result.frame->rows(), 8u);  // run 2: bytes 200000..200007
  EXPECT_EQ(dump(*durable_result.frame), dump(*memory_result.frame));
}

// ---------------------------------------------------------------------------
// Durable catalog vs memory catalog

TEST(SegstoreCatalog, DurableBackendMatchesMemoryBackend) {
  TempDir dir("parity");
  segstore::SegmentStoreConfig config;
  config.dir = dir.str();
  StoreCatalog durable(config);
  StoreCatalog memory;
  for (std::uint32_t r = 0; r < 3; ++r) {
    durable.add_run(make_run("A", r, 6 + static_cast<int>(r)));
    memory.add_run(make_run("A", r, 6 + static_cast<int>(r)));
  }
  durable.add_run(make_run("B", 0, 5));
  memory.add_run(make_run("B", 0, 5));
  // Idempotent re-publication on both backends.
  EXPECT_FALSE(durable.add_run(make_run("B", 0, 5)));
  EXPECT_FALSE(memory.add_run(make_run("B", 0, 5)));
  expect_catalogs_identical(durable, memory);

  // The durable snapshot exposes zone maps; the memory one does not.
  const auto snap = durable.snapshot();
  const prov::RunId id{"A", 0};
  ASSERT_NE(snap.stats(ViewId::kTasks, id), nullptr);
  EXPECT_EQ(snap.stats(ViewId::kTasks, id)->rows, 6u);
  EXPECT_EQ(memory.snapshot().stats(ViewId::kTasks, id), nullptr);
}

// ---------------------------------------------------------------------------
// Snapshot isolation

TEST(SegstoreSnapshot, PinnedVersionSurvivesCompactionAndGC) {
  TempDir dir("pin");
  segstore::SegmentStoreConfig config;
  config.dir = dir.str();
  config.compact_min_segments = 2;
  StoreCatalog catalog(config);
  for (std::uint32_t r = 0; r < 4; ++r) {
    catalog.add_run(make_run("W", r, 4));
  }
  const auto pinned = catalog.snapshot();
  std::vector<std::string> before;
  for (const auto& id : pinned.runs(std::nullopt, std::nullopt)) {
    before.push_back(dump(*pinned.frame(ViewId::kTasks, id)));
  }

  EXPECT_GT(catalog.compact(), 0u);
  catalog.segment_store()->collect_garbage();

  // Compaction rewrites files, not logical content: the epoch is unchanged
  // and the pinned snapshot still serves every frame it did before.
  const auto after = catalog.snapshot();
  EXPECT_EQ(after.epoch(), pinned.epoch());
  const auto runs = pinned.runs(std::nullopt, std::nullopt);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(dump(*pinned.frame(ViewId::kTasks, runs[i])), before[i]);
    EXPECT_EQ(dump(*after.frame(ViewId::kTasks, runs[i])), before[i]);
  }
}

TEST(SegstoreSnapshot, IsolationTortureUnderConcurrentFlushAndCompact) {
  TempDir dir("torture");
  segstore::SegmentStoreConfig config;
  config.dir = dir.str();
  config.compact_min_segments = 3;
  StoreCatalog catalog(config);
  constexpr std::uint32_t kRuns = 24;
  catalog.add_run(make_run("W", 0, 4));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread writer([&] {
    for (std::uint32_t r = 1; r < kRuns; ++r) {
      catalog.add_run(make_run("W", r, 4 + static_cast<int>(r % 3)));
      if (r % 4 == 0) {
        catalog.compact();
        catalog.segment_store()->collect_garbage();
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      query::Epoch last_epoch = 0;
      while (!done.load()) {
        const auto snap = catalog.snapshot();
        // Epochs only move forward, and a snapshot's run list is exactly
        // its epoch — never a half-published state.
        ASSERT_GE(snap.epoch(), last_epoch);
        last_epoch = snap.epoch();
        const auto runs = snap.runs(std::nullopt, std::nullopt);
        ASSERT_EQ(runs.size(), snap.epoch());
        for (const auto& id : runs) {
          const auto frame = snap.frame(ViewId::kTasks, id);
          ASSERT_NE(frame, nullptr);
          ASSERT_EQ(frame->rows(),
                    4u + static_cast<std::size_t>(id.run_index % 3));
          ++reads;
        }
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(catalog.snapshot().epoch(), kRuns);
  EXPECT_TRUE(catalog.segment_store()->fsck().ok());
}

// ---------------------------------------------------------------------------
// Crash oracle

TEST(SegstoreCrashOracle, TenSeedColdStartByteIdentityUnderChaos) {
  std::uint64_t total_recoveries = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TempDir dir("oracle_" + std::to_string(seed));
    const auto runs = [&] {
      std::vector<dtr::RunData> all;
      for (std::uint32_t r = 0; r < 3; ++r) {
        all.push_back(make_run("A", r, 4 + static_cast<int>((seed + r) % 5)));
      }
      all.push_back(make_run("B", 0, 6));
      return all;
    };

    chaos::FaultPlan plan;
    plan.seed = seed;
    chaos::SiteSpec spec;
    spec.process_crash_restart = 0.10;
    spec.transient_error = 0.05;
    plan.sites[chaos::sites::kSegstoreFlush] = spec;
    plan.sites[chaos::sites::kSegstoreCompact] = spec;
    chaos::FaultInjector injector(plan);

    {
      segstore::SegmentStoreConfig config;
      config.dir = dir.str();
      config.compact_min_segments = 2;
      StoreCatalog catalog(config);
      catalog.segment_store()->set_fault_injector(&injector);
      for (auto& run : runs()) catalog.add_run(std::move(run));
      catalog.compact();
      total_recoveries += catalog.segment_store()->recoveries();
    }  // catalog destroyed; only the on-disk state survives

    // Cold start from the manifest + CRC footer scan...
    segstore::SegmentStoreConfig cold_config;
    cold_config.dir = dir.str();
    StoreCatalog cold(cold_config);
    EXPECT_TRUE(cold.segment_store()->fsck().ok());
    // ...must serve byte-for-byte what re-ingesting into memory serves.
    StoreCatalog reingested;
    for (auto& run : runs()) reingested.add_run(std::move(run));
    expect_catalogs_identical(cold, reingested);
  }
  // The plan must actually have crashed flushes/compactions somewhere
  // across the ten seeds, or this oracle proves nothing.
  EXPECT_GT(total_recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Read replicas

TEST(SegstoreReplica, TwoReplicasServeOneLiveWriterDirectory) {
  TempDir dir("replica");
  segstore::SegmentStoreConfig writer_config;
  writer_config.dir = dir.str();
  writer_config.compact_min_segments = 3;
  StoreCatalog writer(writer_config);
  constexpr std::uint32_t kRuns = 16;
  // Tasks-per-run prefix sums let a replica validate any epoch it observes.
  std::vector<std::size_t> prefix_rows{0};
  const auto run_rows = [](std::uint32_t r) {
    return 4u + static_cast<std::size_t>(r % 3);
  };
  for (std::uint32_t r = 0; r < kRuns; ++r) {
    prefix_rows.push_back(prefix_rows.back() + run_rows(r));
  }
  writer.add_run(make_run("W", 0, static_cast<int>(run_rows(0))));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> replica_reads{0};
  std::vector<std::thread> replicas;
  for (int t = 0; t < 2; ++t) {
    replicas.emplace_back([&] {
      segstore::SegmentStoreConfig replica_config;
      replica_config.dir = dir.str();
      replica_config.read_only = true;
      StoreCatalog replica(replica_config);
      const query::Query q =
          query::parse_query(std::string(R"({"from": "tasks"})"));
      while (!done.load()) {
        replica.refresh();
        const auto snap = replica.snapshot();
        ASSERT_LE(snap.epoch(), kRuns);
        ASSERT_EQ(snap.runs(std::nullopt, std::nullopt).size(), snap.epoch());
        const auto result = query::execute_query(q, replica, nullptr);
        ASSERT_NE(result.frame, nullptr);
        ASSERT_EQ(result.frame->rows(), prefix_rows[result.epoch]);
        ++replica_reads;
      }
      // Final refresh sees everything the writer committed.
      replica.refresh();
      const auto final_result = query::execute_query(q, replica, nullptr);
      EXPECT_EQ(final_result.epoch, kRuns);
      EXPECT_EQ(final_result.frame->rows(), prefix_rows[kRuns]);
    });
  }

  for (std::uint32_t r = 1; r < kRuns; ++r) {
    writer.add_run(make_run("W", r, static_cast<int>(run_rows(r))));
    if (r % 5 == 0) {
      writer.compact();
      writer.segment_store()->collect_garbage();
    }
  }
  done.store(true);
  for (auto& t : replicas) t.join();
  EXPECT_GT(replica_reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Fsck

TEST(SegstoreFsck, CleanStorePassesAndBitRotFails) {
  TempDir dir("fsck");
  {
    segstore::SegmentStoreConfig config;
    config.dir = dir.str();
    StoreCatalog catalog(config);
    for (std::uint32_t r = 0; r < 2; ++r) {
      catalog.add_run(make_run("W", r, 8));
    }
    const auto report = catalog.segment_store()->fsck();
    EXPECT_TRUE(report.ok());
    EXPECT_GT(report.segments_checked, 0u);
    EXPECT_GT(report.rows_checked, 0u);
  }

  // Flip one byte in the body of the largest segment file.
  std::string victim;
  std::uintmax_t victim_size = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.str())) {
    if (entry.path().extension() == ".rsg" &&
        entry.file_size() > victim_size) {
      victim = entry.path().string();
      victim_size = entry.file_size();
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    std::fstream file(victim, std::ios::in | std::ios::out |
                                  std::ios::binary);
    file.seekg(static_cast<std::streamoff>(victim_size / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(static_cast<std::streamoff>(victim_size / 2));
    file.write(&byte, 1);
  }

  segstore::SegmentStoreConfig lenient;
  lenient.dir = dir.str();
  lenient.read_only = true;
  lenient.verify_on_open = false;
  const segstore::SegmentStore corrupted(lenient);
  const auto report = corrupted.fsck();
  EXPECT_FALSE(report.ok());

  // The cold-start CRC footer scan refuses the corrupted store outright.
  segstore::SegmentStoreConfig strict;
  strict.dir = dir.str();
  strict.read_only = true;
  EXPECT_THROW(segstore::SegmentStore{strict}, segstore::SegstoreError);
}

// ---------------------------------------------------------------------------
// Unified durability config

TEST(UnifiedDurability, ComponentDirsAndLegacyFactories) {
  DurabilityConfig config;
  EXPECT_FALSE(config.enabled());
  EXPECT_EQ(config.broker_dir(), "");

  config.dir = "/runs/demo";
  config.scheduler.checkpoint_every = 64;
  config.scheduler.compact_on_checkpoint = true;
  config.scheduler.wal.sync = wal::SyncPolicy::kOnAppend;
  config.ingest.dir = "/fast-ssd/cursors";  // per-component override
  config.segstore.compact_min_segments = 7;
  config.segstore.mmap_reads = false;

  EXPECT_TRUE(config.enabled());
  EXPECT_EQ(config.broker_dir(), "/runs/demo/broker");
  EXPECT_EQ(config.scheduler_dir(), "/runs/demo/scheduler");
  EXPECT_EQ(config.ingest_dir(), "/fast-ssd/cursors");
  EXPECT_EQ(config.segstore_dir(), "/runs/demo/segstore");

  const mofka::BrokerDurability broker = mofka::BrokerDurability::from(config);
  EXPECT_EQ(broker.dir, "/runs/demo/broker");

  const dtr::SchedulerDurability scheduler =
      dtr::SchedulerDurability::from(config);
  EXPECT_EQ(scheduler.dir, "/runs/demo/scheduler");
  EXPECT_EQ(scheduler.checkpoint_every, 64u);
  EXPECT_TRUE(scheduler.compact_on_checkpoint);
  EXPECT_EQ(scheduler.wal.sync, wal::SyncPolicy::kOnAppend);

  const segstore::SegmentStoreConfig store =
      segstore::SegmentStoreConfig::from(config);
  EXPECT_EQ(store.dir, "/runs/demo/segstore");
  EXPECT_EQ(store.compact_min_segments, 7u);
  EXPECT_FALSE(store.mmap_reads);
  EXPECT_FALSE(store.read_only);
}

TEST(UnifiedDurability, JsonNestedShapeRoundTrips) {
  DurabilityConfig config;
  config.dir = "/runs/x";
  config.broker.wal.segment_bytes = 1024;
  config.broker.wal.sync = wal::SyncPolicy::kOnAppend;
  config.scheduler.checkpoint_every = 16;
  config.scheduler.compact_on_checkpoint = true;
  config.ingest.dir = "/elsewhere";
  config.segstore.compact_min_segments = 5;
  config.segstore.compact_max_bytes = 1 << 20;
  config.segstore.verify_on_open = false;

  const DurabilityParse parsed = durability_from_json(to_json(config));
  EXPECT_TRUE(parsed.deprecated.empty());
  const DurabilityConfig& back = parsed.config;
  EXPECT_EQ(back.dir, config.dir);
  EXPECT_EQ(back.broker.wal.segment_bytes, 1024u);
  EXPECT_EQ(back.broker.wal.sync, wal::SyncPolicy::kOnAppend);
  EXPECT_EQ(back.scheduler.checkpoint_every, 16u);
  EXPECT_TRUE(back.scheduler.compact_on_checkpoint);
  EXPECT_EQ(back.ingest.dir, "/elsewhere");
  EXPECT_EQ(back.segstore.compact_min_segments, 5u);
  EXPECT_EQ(back.segstore.compact_max_bytes, 1u << 20);
  EXPECT_FALSE(back.segstore.verify_on_open);
}

TEST(UnifiedDurability, DeprecatedFlatAliasesMapAndWarn) {
  const DurabilityParse parsed = durability_from_json(json::parse(R"({
    "durability_dir": "/old/root",
    "checkpoint_every": 9,
    "compact_on_checkpoint": true,
    "sync": "on_append",
    "segment_bytes": 2048
  })"));
  EXPECT_EQ(parsed.config.dir, "/old/root");
  EXPECT_EQ(parsed.config.scheduler.checkpoint_every, 9u);
  EXPECT_TRUE(parsed.config.scheduler.compact_on_checkpoint);
  EXPECT_EQ(parsed.config.broker.wal.sync, wal::SyncPolicy::kOnAppend);
  EXPECT_EQ(parsed.config.segstore.wal.sync, wal::SyncPolicy::kOnAppend);
  EXPECT_EQ(parsed.config.ingest.wal.segment_bytes, 2048u);
  const std::vector<std::string> expected{
      "durability_dir", "checkpoint_every", "compact_on_checkpoint", "sync",
      "segment_bytes"};
  EXPECT_EQ(parsed.deprecated, expected);

  // The nested shape wins over a conflicting alias.
  const DurabilityParse nested_wins = durability_from_json(json::parse(R"({
    "dir": "/new/root",
    "durability_dir": "/old/root",
    "scheduler": {"checkpoint_every": 3},
    "checkpoint_every": 99
  })"));
  EXPECT_EQ(nested_wins.config.dir, "/new/root");
  EXPECT_EQ(nested_wins.config.scheduler.checkpoint_every, 3u);
}

}  // namespace
}  // namespace recup
