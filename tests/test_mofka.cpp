// Unit tests for the Mofka event streaming service: topics, batching
// producer, pull consumer, data selectors, validators, partition selectors,
// consumer groups, and concurrent production.
#include <gtest/gtest.h>

#include <thread>

#include "mochi/bedrock.hpp"
#include "mofka/broker.hpp"
#include "mofka/consumer.hpp"
#include "mofka/producer.hpp"

namespace recup::mofka {
namespace {

class MofkaTest : public ::testing::Test {
 protected:
  MofkaTest() : broker_(kv_, blobs_) {}

  mochi::KeyValueStore kv_;
  mochi::BlobStore blobs_;
  Broker broker_;
};

json::Value meta(int i) {
  json::Object o;
  o["i"] = i;
  return json::Value(std::move(o));
}

TEST_F(MofkaTest, TopicLifecycle) {
  broker_.create_topic("t", TopicConfig{2, nullptr, nullptr});
  EXPECT_TRUE(broker_.topic_exists("t"));
  EXPECT_FALSE(broker_.topic_exists("u"));
  EXPECT_EQ(broker_.partition_count("t"), 2u);
  EXPECT_THROW(broker_.create_topic("t"), MofkaError);
  EXPECT_THROW(broker_.create_topic("zero", TopicConfig{0, nullptr, nullptr}),
               MofkaError);
  EXPECT_THROW(broker_.partition_count("u"), MofkaError);
}

TEST_F(MofkaTest, ProduceConsumeOrderedPerPartition) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{8, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 20; ++i) producer.push(meta(i), "d" + std::to_string(i));
  producer.flush();

  Consumer consumer(broker_, "t", "g");
  int expected = 0;
  while (auto event = consumer.pull()) {
    EXPECT_EQ(event->metadata.at("i").as_int(), expected);
    EXPECT_EQ(event->data, "d" + std::to_string(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 20);
}

TEST_F(MofkaTest, PushFutureResolvesToOffset) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{4, std::chrono::milliseconds(5), false});
  auto f0 = producer.push(meta(0));
  auto f1 = producer.push(meta(1));
  producer.flush();
  EXPECT_EQ(f0.get(), 0u);
  EXPECT_EQ(f1.get(), 1u);
}

TEST_F(MofkaTest, SizeTriggeredBatching) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{4, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 9; ++i) producer.push(meta(i));
  // Two full batches flushed by size; one partial pending.
  EXPECT_EQ(broker_.partition_size("t", 0), 8u);
  producer.flush();
  EXPECT_EQ(broker_.partition_size("t", 0), 9u);
  const ProducerStats stats = producer.stats();
  EXPECT_EQ(stats.pushed, 9u);
  EXPECT_EQ(stats.size_triggered_flushes, 2u);
  EXPECT_EQ(stats.batches_flushed, 3u);
}

TEST_F(MofkaTest, BackgroundFlushDeliversWithoutExplicitFlush) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{1000, std::chrono::milliseconds(2), true});
  auto f = producer.push(meta(1));
  // The background thread must flush this within a reasonable time.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(f.get(), 0u);
}

TEST_F(MofkaTest, DestructorFlushesPending) {
  broker_.create_topic("t");
  {
    Producer producer(broker_, "t",
                      ProducerConfig{1000, std::chrono::milliseconds(50),
                                     false});
    producer.push(meta(1));
  }
  EXPECT_EQ(broker_.partition_size("t", 0), 1u);
}

TEST_F(MofkaTest, RoundRobinPartitionSpread) {
  broker_.create_topic("t", TopicConfig{4, nullptr, nullptr});
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 8; ++i) producer.push(meta(i));
  producer.flush();
  for (PartitionIndex p = 0; p < 4; ++p) {
    EXPECT_EQ(broker_.partition_size("t", p), 2u);
  }
}

TEST_F(MofkaTest, CustomPartitionSelector) {
  TopicConfig config;
  config.partitions = 2;
  config.selector = [](const json::Value& m, PartitionIndex n) {
    return static_cast<PartitionIndex>(m.at("i").as_int() % n);
  };
  broker_.create_topic("t", std::move(config));
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 6; ++i) producer.push(meta(i));
  producer.flush();
  Consumer c0(broker_, "t", "g");
  // Partition 0 holds even i, partition 1 odd i; pull_all interleaves but
  // every event lands exactly once.
  const auto events = c0.pull_all();
  EXPECT_EQ(events.size(), 6u);
  for (const auto& e : events) {
    EXPECT_EQ(e.metadata.at("i").as_int() % 2, e.partition);
  }
}

TEST_F(MofkaTest, ValidatorRejectsBadMetadata) {
  TopicConfig config;
  config.validator = [](const json::Value& m) {
    if (!m.contains("i")) throw MofkaError("missing i");
  };
  broker_.create_topic("t", std::move(config));
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  auto ok = producer.push(meta(1));
  EXPECT_EQ(ok.get(), 0u);
  json::Object bad;
  bad["j"] = 2;
  auto fail = producer.push(json::Value(std::move(bad)));
  EXPECT_THROW(fail.get(), MofkaError);
  EXPECT_EQ(broker_.partition_size("t", 0), 1u);
}

TEST_F(MofkaTest, DataSelectorSkipsOrSlicesPayload) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  producer.push(meta(0), "0123456789");
  producer.push(meta(1), "abcdefghij");
  producer.flush();

  ConsumerConfig config;
  config.selector = [](const json::Value& m) {
    DataSelection sel;
    if (m.at("i").as_int() == 0) {
      sel.fetch = false;  // skip payload
    } else {
      sel.offset = 2;
      sel.length = 3;
    }
    return sel;
  };
  Consumer consumer(broker_, "t", "g", std::move(config));
  const auto events = consumer.pull_all();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].data, "");
  EXPECT_EQ(events[1].data, "cde");
}

TEST_F(MofkaTest, ConsumerGroupsResumeFromCommit) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 5; ++i) producer.push(meta(i));
  producer.flush();

  {
    Consumer consumer(broker_, "t", "g");
    EXPECT_TRUE(consumer.pull().has_value());
    EXPECT_TRUE(consumer.pull().has_value());
    consumer.commit();
  }
  {
    Consumer consumer(broker_, "t", "g");
    const auto event = consumer.pull();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->metadata.at("i").as_int(), 2);  // resumes at offset 2
  }
  {
    Consumer fresh(broker_, "t", "other-group");
    EXPECT_EQ(fresh.pull_all().size(), 5u);  // independent offsets
  }
}

TEST_F(MofkaTest, StatsAccumulateBytes) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{2, std::chrono::milliseconds(5), false});
  producer.push(meta(0), "xxxx");
  producer.push(meta(1), "yy");
  producer.flush();
  const TopicStats stats = broker_.topic_stats("t");
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.bytes_data, 6u);
  EXPECT_GT(stats.bytes_metadata, 0u);
  EXPECT_GE(stats.batches, 1u);
}

TEST_F(MofkaTest, ConcurrentProducersAllEventsArrive) {
  broker_.create_topic("t", TopicConfig{2, nullptr, nullptr});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  {
    std::vector<std::unique_ptr<Producer>> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.push_back(std::make_unique<Producer>(
          broker_, "t", ProducerConfig{16, std::chrono::milliseconds(1),
                                       true}));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          producers[t]->push(meta(t * kPerThread + i));
        }
        producers[t]->flush();
      });
    }
    for (auto& thread : threads) thread.join();
  }
  Consumer consumer(broker_, "t", "g");
  std::set<std::int64_t> seen;
  while (auto event = consumer.pull()) {
    seen.insert(event->metadata.at("i").as_int());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(MofkaTest, FetchOutOfRangeReturnsNullopt) {
  broker_.create_topic("t");
  EXPECT_FALSE(broker_.fetch("t", 0, 0).has_value());
  EXPECT_THROW(broker_.fetch("t", 5, 0), MofkaError);
  EXPECT_THROW(broker_.fetch("missing", 0, 0), MofkaError);
}

TEST_F(MofkaTest, EmptyBatchRejected) {
  broker_.create_topic("t");
  EXPECT_THROW(broker_.append_batch("t", 0, {}), MofkaError);
}

}  // namespace
}  // namespace recup::mofka
