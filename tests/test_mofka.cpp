// Unit tests for the Mofka event streaming service: topics, batching
// producer, pull consumer, data selectors, validators, partition selectors,
// consumer groups, and concurrent production.
#include <gtest/gtest.h>

#include <thread>

#include "mochi/bedrock.hpp"
#include "mofka/broker.hpp"
#include "mofka/consumer.hpp"
#include "mofka/producer.hpp"
#include "mofka/wire.hpp"

namespace recup::mofka {
namespace {

class MofkaTest : public ::testing::Test {
 protected:
  MofkaTest() : broker_(kv_, blobs_) {}

  mochi::KeyValueStore kv_;
  mochi::BlobStore blobs_;
  Broker broker_;
};

json::Value meta(int i) {
  json::Object o;
  o["i"] = i;
  return json::Value(std::move(o));
}

TEST_F(MofkaTest, TopicLifecycle) {
  broker_.create_topic("t", TopicConfig{2, nullptr, nullptr});
  EXPECT_TRUE(broker_.topic_exists("t"));
  EXPECT_FALSE(broker_.topic_exists("u"));
  EXPECT_EQ(broker_.partition_count("t"), 2u);
  EXPECT_THROW(broker_.create_topic("t"), MofkaError);
  EXPECT_THROW(broker_.create_topic("zero", TopicConfig{0, nullptr, nullptr}),
               MofkaError);
  EXPECT_THROW(broker_.partition_count("u"), MofkaError);
}

TEST_F(MofkaTest, ProduceConsumeOrderedPerPartition) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{8, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 20; ++i) producer.push(meta(i), "d" + std::to_string(i));
  producer.flush();

  Consumer consumer(broker_, "t", "g");
  int expected = 0;
  while (auto event = consumer.pull()) {
    EXPECT_EQ(event->metadata.at("i").as_int(), expected);
    EXPECT_EQ(event->data, "d" + std::to_string(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 20);
}

TEST_F(MofkaTest, PushFutureResolvesToOffset) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{4, std::chrono::milliseconds(5), false});
  auto f0 = producer.push(meta(0));
  auto f1 = producer.push(meta(1));
  producer.flush();
  EXPECT_EQ(f0.get(), 0u);
  EXPECT_EQ(f1.get(), 1u);
}

TEST_F(MofkaTest, SizeTriggeredBatching) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{4, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 9; ++i) producer.push(meta(i));
  // Two full batches flushed by size; one partial pending.
  EXPECT_EQ(broker_.partition_size("t", 0), 8u);
  producer.flush();
  EXPECT_EQ(broker_.partition_size("t", 0), 9u);
  const ProducerStats stats = producer.stats();
  EXPECT_EQ(stats.pushed, 9u);
  EXPECT_EQ(stats.size_triggered_flushes, 2u);
  EXPECT_EQ(stats.batches_flushed, 3u);
}

TEST_F(MofkaTest, BackgroundFlushDeliversWithoutExplicitFlush) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{1000, std::chrono::milliseconds(2), true});
  auto f = producer.push(meta(1));
  // The background thread must flush this within a reasonable time.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(f.get(), 0u);
}

TEST_F(MofkaTest, DestructorFlushesPending) {
  broker_.create_topic("t");
  {
    Producer producer(broker_, "t",
                      ProducerConfig{1000, std::chrono::milliseconds(50),
                                     false});
    producer.push(meta(1));
  }
  EXPECT_EQ(broker_.partition_size("t", 0), 1u);
}

TEST_F(MofkaTest, RoundRobinPartitionSpread) {
  broker_.create_topic("t", TopicConfig{4, nullptr, nullptr});
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 8; ++i) producer.push(meta(i));
  producer.flush();
  for (PartitionIndex p = 0; p < 4; ++p) {
    EXPECT_EQ(broker_.partition_size("t", p), 2u);
  }
}

TEST_F(MofkaTest, CustomPartitionSelector) {
  TopicConfig config;
  config.partitions = 2;
  config.selector = [](const json::Value& m, PartitionIndex n) {
    return static_cast<PartitionIndex>(m.at("i").as_int() % n);
  };
  broker_.create_topic("t", std::move(config));
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 6; ++i) producer.push(meta(i));
  producer.flush();
  Consumer c0(broker_, "t", "g");
  // Partition 0 holds even i, partition 1 odd i; pull_all interleaves but
  // every event lands exactly once.
  const auto events = c0.pull_all();
  EXPECT_EQ(events.size(), 6u);
  for (const auto& e : events) {
    EXPECT_EQ(e.metadata.at("i").as_int() % 2, e.partition);
  }
}

TEST_F(MofkaTest, ValidatorRejectsBadMetadata) {
  TopicConfig config;
  config.validator = [](const json::Value& m) {
    if (!m.contains("i")) throw MofkaError("missing i");
  };
  broker_.create_topic("t", std::move(config));
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  auto ok = producer.push(meta(1));
  EXPECT_EQ(ok.get(), 0u);
  json::Object bad;
  bad["j"] = 2;
  auto fail = producer.push(json::Value(std::move(bad)));
  EXPECT_THROW(fail.get(), MofkaError);
  EXPECT_EQ(broker_.partition_size("t", 0), 1u);
}

TEST_F(MofkaTest, DataSelectorSkipsOrSlicesPayload) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  producer.push(meta(0), "0123456789");
  producer.push(meta(1), "abcdefghij");
  producer.flush();

  ConsumerConfig config;
  config.selector = [](const json::Value& m) {
    DataSelection sel;
    if (m.at("i").as_int() == 0) {
      sel.fetch = false;  // skip payload
    } else {
      sel.offset = 2;
      sel.length = 3;
    }
    return sel;
  };
  Consumer consumer(broker_, "t", "g", std::move(config));
  const auto events = consumer.pull_all();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].data, "");
  EXPECT_EQ(events[1].data, "cde");
}

TEST_F(MofkaTest, ConsumerGroupsResumeFromCommit) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{1, std::chrono::milliseconds(5), false});
  for (int i = 0; i < 5; ++i) producer.push(meta(i));
  producer.flush();

  {
    Consumer consumer(broker_, "t", "g");
    EXPECT_TRUE(consumer.pull().has_value());
    EXPECT_TRUE(consumer.pull().has_value());
    consumer.commit();
  }
  {
    Consumer consumer(broker_, "t", "g");
    const auto event = consumer.pull();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->metadata.at("i").as_int(), 2);  // resumes at offset 2
  }
  {
    Consumer fresh(broker_, "t", "other-group");
    EXPECT_EQ(fresh.pull_all().size(), 5u);  // independent offsets
  }
}

TEST_F(MofkaTest, StatsAccumulateBytes) {
  broker_.create_topic("t");
  Producer producer(broker_, "t",
                    ProducerConfig{2, std::chrono::milliseconds(5), false});
  producer.push(meta(0), "xxxx");
  producer.push(meta(1), "yy");
  producer.flush();
  const TopicStats stats = broker_.topic_stats("t");
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.bytes_data, 6u);
  EXPECT_GT(stats.bytes_metadata, 0u);
  EXPECT_GE(stats.batches, 1u);
}

TEST_F(MofkaTest, ConcurrentProducersAllEventsArrive) {
  broker_.create_topic("t", TopicConfig{2, nullptr, nullptr});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  {
    std::vector<std::unique_ptr<Producer>> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.push_back(std::make_unique<Producer>(
          broker_, "t", ProducerConfig{16, std::chrono::milliseconds(1),
                                       true}));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          producers[t]->push(meta(t * kPerThread + i));
        }
        producers[t]->flush();
      });
    }
    for (auto& thread : threads) thread.join();
  }
  Consumer consumer(broker_, "t", "g");
  std::set<std::int64_t> seen;
  while (auto event = consumer.pull()) {
    seen.insert(event->metadata.at("i").as_int());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(MofkaTest, FetchOutOfRangeReturnsNullopt) {
  broker_.create_topic("t");
  EXPECT_FALSE(broker_.fetch("t", 0, 0).has_value());
  EXPECT_THROW(broker_.fetch("t", 5, 0), MofkaError);
  EXPECT_THROW(broker_.fetch("missing", 0, 0), MofkaError);
}

TEST_F(MofkaTest, EmptyBatchRejected) {
  broker_.create_topic("t");
  EXPECT_THROW(broker_.append_batch("t", 0, {}), MofkaError);
}

// --- Binary wire path -------------------------------------------------------

TEST_F(MofkaTest, EventFrameRoundTripsAndShrinksWithInterning) {
  wire::StreamEncoder encoder;
  wire::StreamDecoder decoder;
  std::vector<std::pair<json::Value, std::string>> events;
  for (int i = 0; i < 4; ++i) {
    json::Object o;
    o["task_state"] = std::string("TASK_COMPLETED");
    o["worker"] = std::string("nid004512");
    o["seq"] = i;
    events.emplace_back(json::Value(std::move(o)), "payload" + std::to_string(i));
  }
  const std::string f1 = encode_event_frame(encoder, events);
  const std::string f2 = encode_event_frame(encoder, events);
  EXPECT_EQ(decode_event_frame(decoder, f1), events);
  EXPECT_EQ(decode_event_frame(decoder, f2), events);
  // Second frame ships dictionary refs for the repeated keys/values.
  EXPECT_LT(f2.size(), f1.size());
  // Retried delivery of the same bytes decodes idempotently.
  EXPECT_EQ(decode_event_frame(decoder, f2), events);
}

TEST_F(MofkaTest, AppendFrameStoresEventsAndCountsWireBytes) {
  broker_.create_topic("t");
  wire::StreamEncoder encoder;
  std::vector<std::pair<json::Value, std::string>> events;
  for (int i = 0; i < 3; ++i) events.emplace_back(meta(i), "d" + std::to_string(i));
  const std::string frame = encode_event_frame(encoder, events);
  const AppendResult ack = broker_.append_frame("t", 0, /*session=*/1, frame);
  ASSERT_EQ(ack.offsets.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto event = broker_.fetch("t", 0, static_cast<EventId>(i));
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->metadata.at("i").as_int(), i);
    EXPECT_EQ(event->data, "d" + std::to_string(i));
  }
  EXPECT_EQ(broker_.topic_stats("t").bytes_wire, frame.size());
}

TEST_F(MofkaTest, MalformedFrameRejected) {
  broker_.create_topic("t");
  EXPECT_THROW(broker_.append_frame("t", 0, 1, "\x08garbage"),
               WireSessionError);
  // The poisoned session state was discarded: a clean frame on the same
  // session id decodes fine afterwards.
  wire::StreamEncoder encoder;
  const std::string frame = encode_event_frame(encoder, {{meta(0), "d"}});
  EXPECT_EQ(broker_.append_frame("t", 0, 1, frame).offsets.size(), 1u);
}

TEST_F(MofkaTest, BrokerRestartWipesWireSessions) {
  broker_.create_topic("t");
  wire::StreamEncoder encoder;
  json::Object o;
  o["shared_key_name"] = std::string("shared_value_text");
  const json::Value metadata(std::move(o));
  // Frame 1 sights the strings, frame 2 defines them, frame 3 is refs-only.
  (void)broker_.append_frame("t", 0, 7, encode_event_frame(encoder, {{metadata, ""}}));
  (void)broker_.append_frame("t", 0, 7, encode_event_frame(encoder, {{metadata, ""}}));
  broker_.crash_and_recover();
  // The restarted broker lost the session dictionary; an interned frame is
  // undecodable and must surface as WireSessionError (not TransientFault —
  // retrying the same bytes can never succeed).
  EXPECT_THROW((void)broker_.append_frame("t", 0, 7,
                                          encode_event_frame(encoder, {{metadata, ""}})),
               WireSessionError);
  // Recovery path: reset the encoder session and re-encode self-contained.
  // (This broker is non-durable, so the restart also dropped the topic.)
  broker_.create_topic("t");
  wire::StreamEncoder fresh;
  const AppendResult ack =
      broker_.append_frame("t", 0, 7, encode_event_frame(fresh, {{metadata, ""}}));
  EXPECT_EQ(ack.offsets.size(), 1u);
}

TEST_F(MofkaTest, BinaryProducerMatchesJsonProducerAndSavesWireBytes) {
  broker_.create_topic("bin");
  broker_.create_topic("json");
  ProducerConfig binary_config{8, std::chrono::milliseconds(5), false};
  binary_config.binary_wire = true;
  ProducerConfig json_config = binary_config;
  json_config.binary_wire = false;
  Producer binary_producer(broker_, "bin", binary_config);
  Producer json_producer(broker_, "json", json_config);
  std::uint64_t json_text_bytes = 0;
  for (int i = 0; i < 64; ++i) {
    json::Object o;
    o["task_state"] = std::string("TASK_RUNNING");
    o["worker"] = std::string("nid004512");
    o["i"] = i;
    const json::Value metadata(std::move(o));
    json_text_bytes += metadata.dump().size();
    binary_producer.push(metadata, "data");
    json_producer.push(metadata, "data");
  }
  binary_producer.flush();
  json_producer.flush();
  // Same events land regardless of transport. (Full metadata equality
  // cannot hold: each producer stamps its own _pid/_seq for dedup.)
  for (int i = 0; i < 64; ++i) {
    const auto a = broker_.fetch("bin", 0, static_cast<EventId>(i));
    const auto b = broker_.fetch("json", 0, static_cast<EventId>(i));
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->metadata.at("i"), b->metadata.at("i"));
    EXPECT_EQ(a->metadata.at("task_state"), b->metadata.at("task_state"));
    EXPECT_EQ(a->metadata.at("worker"), b->metadata.at("worker"));
    EXPECT_EQ(a->data, b->data);
  }
  const TopicStats stats = broker_.topic_stats("bin");
  EXPECT_GT(stats.bytes_wire, 0u);
  EXPECT_LT(stats.bytes_wire, json_text_bytes);
  EXPECT_EQ(broker_.topic_stats("json").bytes_wire, 0u);
}

}  // namespace
}  // namespace recup::mofka
