// Analysis engine tests: readers, fused views (task<->I/O attribution),
// phase breakdowns, figure computations, and variability metrics.
#include <gtest/gtest.h>

#include "analysis/figures.hpp"
#include "analysis/readers.hpp"
#include "analysis/variability.hpp"
#include "analysis/views.hpp"
#include "dtr/cluster.hpp"

namespace recup::analysis {
namespace {

dtr::ClusterConfig small_config(std::uint64_t seed) {
  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = seed;
  return config;
}

dtr::RunData io_heavy_run(std::uint64_t seed, std::uint32_t run_index = 0) {
  dtr::Cluster cluster(small_config(seed));
  cluster.vfs().register_file("/data/big", 64ULL << 20);
  dtr::TaskGraph g("io-graph");
  for (int i = 0; i < 16; ++i) {
    dtr::TaskSpec t;
    t.key = {"reader-aa11", i};
    t.work.compute = 0.05;
    t.work.output_bytes = 4 << 20;
    t.work.reads.push_back({"/data/big",
                            static_cast<std::uint64_t>(i) * (4 << 20),
                            4 << 20, false});
    g.add_task(t);
  }
  dtr::TaskGraph g2("consume-graph");
  for (int i = 0; i < 16; ++i) {
    dtr::TaskSpec t;
    t.key = {"writer-bb22", i};
    t.dependencies.push_back({"reader-aa11", i});
    t.work.compute = 0.05;
    t.work.writes.push_back({"/out/part", static_cast<std::uint64_t>(i) * 4096,
                             4096, true});
    g2.add_task(t);
  }
  std::vector<dtr::TaskGraph> graphs;
  graphs.push_back(std::move(g));
  graphs.push_back(std::move(g2));
  return cluster.run(std::move(graphs), "io-heavy", run_index);
}

class AnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { run_ = new dtr::RunData(io_heavy_run(7)); }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  static dtr::RunData* run_;
};

dtr::RunData* AnalysisTest::run_ = nullptr;

TEST_F(AnalysisTest, FramesHaveExpectedShapes) {
  EXPECT_EQ(tasks_frame(*run_).rows(), 32u);
  EXPECT_GT(transitions_frame(*run_).rows(), 32u * 3);
  const DataFrame dxt = dxt_frame(run_->darshan_logs);
  EXPECT_EQ(dxt.rows(), 32u);  // 16 reads + 16 writes
  const DataFrame posix = posix_frame(run_->darshan_logs);
  EXPECT_GE(posix.rows(), 2u);  // >= 2 distinct files across workers
  EXPECT_EQ(warnings_frame(*run_).rows(), run_->warnings.size());
  EXPECT_EQ(steals_frame(*run_).rows(), run_->steals.size());
  EXPECT_EQ(comms_frame(*run_).rows(), run_->comms.size());
}

TEST_F(AnalysisTest, AttributionAssignsEveryTaskIo) {
  const auto attributed = attribute_io(*run_);
  EXPECT_EQ(attributed.size(), 32u);
  std::size_t with_task = 0;
  for (const auto& io : attributed) {
    if (!io.task_key.empty()) {
      ++with_task;
      // The fused row's prefix is the task category.
      EXPECT_TRUE(io.prefix == "reader" || io.prefix == "writer") << io.prefix;
      if (io.prefix == "reader") EXPECT_EQ(io.op, "read");
      if (io.prefix == "writer") EXPECT_EQ(io.op, "write");
    }
  }
  EXPECT_EQ(with_task, 32u);  // no spills here: everything attributes
}

TEST_F(AnalysisTest, TaskIoFrameJoinsConsistently) {
  const DataFrame fused = task_io_frame(*run_);
  EXPECT_EQ(fused.rows(), 32u);
  // Join the fused view back against the task frame on the key.
  const DataFrame tasks = tasks_frame(*run_);
  const DataFrame joined = fused.inner_join(tasks, {"task_key"}, {"key"});
  EXPECT_EQ(joined.rows(), 32u);
}

TEST_F(AnalysisTest, PhaseBreakdownSumsArePositiveAndConsistent) {
  const PhaseBreakdown p = phase_breakdown(*run_);
  EXPECT_GT(p.io_time, 0.0);
  EXPECT_GT(p.compute_time, 0.0);
  EXPECT_GT(p.wall_time, 0.0);
  EXPECT_EQ(p.io_ops, 32u);
  EXPECT_EQ(p.comm_count, run_->comms.size());
  // Compute is ~32 x 0.05 s with noise.
  EXPECT_NEAR(p.compute_time, 1.6, 0.5);
}

TEST_F(AnalysisTest, CategoryIoSummaryPartitionsAllOps) {
  const DataFrame summary = category_io_summary(*run_);
  ASSERT_EQ(summary.rows(), 2u);  // reader (reads), writer (writes)
  EXPECT_EQ(summary.sum("io_ops"), 32.0);
  // Readers move 4 MiB per task, writers 4 KiB.
  const DataFrame readers =
      summary.filter([](const DataFrame& d, std::size_t r) {
        return d.col("category").str(r) == "reader";
      });
  ASSERT_EQ(readers.rows(), 1u);
  EXPECT_EQ(readers.col("tasks").i64(0), 16);
  EXPECT_DOUBLE_EQ(readers.col("ops_per_task").f64(0), 1.0);
  EXPECT_DOUBLE_EQ(readers.col("bytes_per_task").f64(0),
                   static_cast<double>(4 << 20));
}

TEST_F(AnalysisTest, WorkerViewFiltersByAddress) {
  const auto& address = run_->tasks.front().worker_address;
  const DataFrame view = worker_view(*run_, address);
  EXPECT_GT(view.rows(), 0u);
  EXPECT_LT(view.rows(), 33u);
  const DataFrame none = worker_view(*run_, "tcp://nowhere:1");
  EXPECT_EQ(none.rows(), 0u);
}

TEST_F(AnalysisTest, WindowViewIsChronological) {
  const DataFrame window = window_view(*run_, 0.0, run_->meta.wall_end);
  EXPECT_GT(window.rows(), 64u);
  for (std::size_t r = 1; r < window.rows(); ++r) {
    EXPECT_LE(window.col("time").f64(r - 1), window.col("time").f64(r));
  }
}

TEST_F(AnalysisTest, Figure4RowsMatchSegments) {
  const auto rows = figure4_rows(*run_);
  EXPECT_EQ(rows.size(), 32u);
  const std::string gantt = render_figure4(*run_, 60);
  EXPECT_NE(gantt.find("Fig. 4"), std::string::npos);
  EXPECT_NE(gantt.find('r') != std::string::npos ||
                gantt.find('R') != std::string::npos,
            false);
}

TEST_F(AnalysisTest, ReadPhasesDetected) {
  // Two graphs -> reads in graph 1 only; a single read phase expected.
  const auto phases = detect_read_phases(*run_, 2.0);
  EXPECT_EQ(phases.size(), 1u);
}

TEST_F(AnalysisTest, Figure5FrameHasCommRows) {
  const DataFrame comm = figure5_frame(*run_);
  EXPECT_EQ(comm.rows(), run_->comms.size());
  if (comm.rows() > 0) {
    const std::string rendered = render_figure5(*run_);
    EXPECT_NE(rendered.find("Fig. 5"), std::string::npos);
  }
}

TEST_F(AnalysisTest, Figure6CategorySummarySorted) {
  const DataFrame summary = figure6_category_summary(*run_);
  EXPECT_EQ(summary.rows(), 2u);  // reader, writer
  for (std::size_t r = 1; r < summary.rows(); ++r) {
    EXPECT_GE(summary.col("mean_duration").f64(r - 1),
              summary.col("mean_duration").f64(r));
  }
  EXPECT_NE(render_figure6(*run_).find("Task category"), std::string::npos);
}

TEST_F(AnalysisTest, Figure7HistogramCountsWarnings) {
  const WarningHistogram hist = figure7_histogram(*run_, 10.0);
  EXPECT_EQ(hist.total_unresponsive + hist.total_gc, run_->warnings.size());
  std::uint64_t binned = 0;
  for (std::size_t b = 0; b < hist.bin_starts.size(); ++b) {
    binned += hist.unresponsive[b] + hist.gc[b];
  }
  EXPECT_EQ(binned, run_->warnings.size());
}

TEST(AnalysisMultiRun, CharacterizeAndTable1) {
  std::vector<dtr::RunData> runs;
  for (std::uint32_t i = 0; i < 3; ++i) runs.push_back(io_heavy_run(50 + i, i));
  const WorkflowCharacteristics chars = characterize(runs);
  EXPECT_EQ(chars.workflow, "io-heavy");
  EXPECT_EQ(chars.runs, 3u);
  EXPECT_EQ(chars.task_graphs, 2u);
  EXPECT_EQ(chars.distinct_tasks, 32u);
  // Only dataset files under /data/ count (scratch outputs are excluded,
  // matching Table I's dataset-file semantics).
  EXPECT_EQ(chars.distinct_files, 1u);
  EXPECT_LE(chars.io_ops_min, chars.io_ops_max);
  EXPECT_LE(chars.comms_min, chars.comms_max);
  const std::string table = render_table1({chars});
  EXPECT_NE(table.find("io-heavy"), std::string::npos);
  EXPECT_NE(table.find("TABLE I"), std::string::npos);
}

TEST(AnalysisMultiRun, Figure3NormalizedStats) {
  std::vector<dtr::RunData> runs;
  for (std::uint32_t i = 0; i < 3; ++i) runs.push_back(io_heavy_run(80 + i, i));
  const PhaseStats stats = figure3_stats("io-heavy", runs);
  EXPECT_DOUBLE_EQ(stats.total_mean, 1.0);  // normalized by mean wall time
  EXPECT_GT(stats.total_std, 0.0);          // different seeds -> variability
  EXPECT_GT(stats.compute_mean, 0.0);
  EXPECT_GT(stats.wall_mean_s, 0.0);
  EXPECT_LT(stats.io_mean, 10.0);
  const std::string rendered = render_figure3({stats});
  EXPECT_NE(rendered.find("io-heavy"), std::string::npos);
  EXPECT_EQ(figure3_frame({stats}).rows(), 4u);
}

TEST(AnalysisMultiRun, RunLevelVariabilityMetrics) {
  std::vector<dtr::RunData> runs;
  for (std::uint32_t i = 0; i < 3; ++i) {
    runs.push_back(io_heavy_run(90 + i, i));
  }
  const auto metrics = run_level_variability(runs);
  ASSERT_EQ(metrics.size(), 7u);
  for (const auto& m : metrics) {
    EXPECT_GE(m.max, m.min) << m.metric;
    EXPECT_GE(m.cv, 0.0) << m.metric;
  }
  EXPECT_EQ(metrics[0].metric, "wall_time_s");
  EXPECT_GT(metrics[0].cv, 0.0);
  EXPECT_NE(render_variability(metrics).find("wall_time_s"),
            std::string::npos);
}

TEST(AnalysisMultiRun, CategoryVariabilityRanksByCv) {
  std::vector<dtr::RunData> runs;
  for (std::uint32_t i = 0; i < 3; ++i) runs.push_back(io_heavy_run(70 + i, i));
  const DataFrame cv = category_variability(runs);
  EXPECT_EQ(cv.rows(), 2u);
  for (std::size_t r = 1; r < cv.rows(); ++r) {
    EXPECT_GE(cv.col("cv").f64(r - 1), cv.col("cv").f64(r));
  }
}

TEST(AnalysisMultiRun, ScheduleSimilaritySelfIsPerfect) {
  const dtr::RunData run = io_heavy_run(5);
  const ScheduleSimilarity self = schedule_similarity(run, run);
  EXPECT_EQ(self.common_tasks, 32u);
  EXPECT_NEAR(self.order_correlation, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(self.same_worker_fraction, 1.0);
}

TEST(AnalysisMultiRun, ScheduleSimilarityAcrossSeedsImperfect) {
  const dtr::RunData a = io_heavy_run(5);
  const dtr::RunData b = io_heavy_run(6, 1);
  const ScheduleSimilarity sim = schedule_similarity(a, b);
  EXPECT_EQ(sim.common_tasks, 32u);
  EXPECT_LT(sim.order_correlation, 1.0);
  EXPECT_GT(sim.order_correlation, -1.0);
}

}  // namespace
}  // namespace recup::analysis
