// recup::datastore tests — the out-of-band data plane.
//
// Layers under test, bottom up: the warabi capacity tier (LRU eviction,
// spill/promotion, pinning), the binary proxy + fetch-frame codec, the
// DataStore's publish/fetch/ownership semantics (validation, repin on owner
// death, replica loss), a real-thread concurrency smoke for the sanitizer
// passes, and the cluster-level acceptance oracles: a fault-free run with
// the datastore enabled is byte-identical to the inline path in the paper's
// figure views while moving >= 5x fewer bytes over the scheduler path, and
// the 10-seed chaos oracle holds under randomized datastore.* faults.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/figures.hpp"
#include "chaos/fault.hpp"
#include "datastore/store.hpp"
#include "datastore/wire.hpp"
#include "dtr/cluster.hpp"
#include "mochi/warabi.hpp"
#include "query/catalog.hpp"
#include "query/ingest.hpp"
#include "wire/codec.hpp"

namespace recup {
namespace {

using datastore::DataStore;
using datastore::DataStoreConfig;
using datastore::FetchStatus;
using datastore::Proxy;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((std::filesystem::temp_directory_path() /
               ("recup_datastore_" + tag + "_" +
                std::to_string(static_cast<long>(::getpid()))))
                  .string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// Warabi capacity tier: LRU eviction, spill/promotion, pinning.

TEST(WarabiCapacity, LruEvictsOldestUnpinnedSealedRegion) {
  mochi::BlobStoreOptions options;
  options.capacity_bytes = 1000;
  mochi::BlobStore store("cap", options);
  const auto a = store.create_sealed(std::string(400, 'a'));
  const auto b = store.create_sealed(std::string(400, 'b'));
  EXPECT_EQ(store.resident_bytes(), 800u);
  // The third insert exceeds the budget; `a` (least recently used) goes.
  const auto c = store.create_sealed(std::string(400, 'c'));
  EXPECT_FALSE(store.exists(a));
  EXPECT_TRUE(store.exists(b));
  EXPECT_TRUE(store.exists(c));
  EXPECT_LE(store.resident_bytes(), 1000u);
  EXPECT_EQ(store.stats().evictions, 1u);

  // A read refreshes recency: after touching `b`, inserting `d` evicts `c`.
  (void)store.read(b);
  const auto d = store.create_sealed(std::string(400, 'd'));
  EXPECT_TRUE(store.exists(b));
  EXPECT_FALSE(store.exists(c));
  EXPECT_TRUE(store.exists(d));
}

TEST(WarabiCapacity, PinnedAndUnsealedRegionsAreNeverEvicted) {
  mochi::BlobStoreOptions options;
  options.capacity_bytes = 600;
  mochi::BlobStore store("pin", options);
  const auto pinned = store.create_sealed(std::string(300, 'p'));
  store.pin(pinned);
  const auto open = store.create();
  store.append(open, std::string(200, 'o'));  // unsealed: not evictable
  EXPECT_FALSE(store.evict_one().has_value());

  // Over-budget insert cannot evict the pinned or unsealed regions; the
  // store admits the new region (soft budget) rather than corrupting state.
  const auto extra = store.create_sealed(std::string(300, 'x'));
  EXPECT_TRUE(store.exists(pinned));
  EXPECT_TRUE(store.exists(open));
  EXPECT_TRUE(store.exists(extra));

  store.unpin(pinned);
  const auto evicted = store.evict_one();
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(*evicted == pinned || *evicted == extra);
}

TEST(WarabiCapacity, SpillDemotesToDiskAndReadPromotesBack) {
  TempDir dir("spill");
  mochi::BlobStoreOptions options;
  options.capacity_bytes = 500;
  options.spill_dir = dir.str();
  mochi::BlobStore store("spill", options);
  const std::string payload(300, 's');
  const auto a = store.create_sealed(payload);
  const auto b = store.create_sealed(std::string(300, 't'));
  // `a` was demoted to the file tier, not dropped.
  EXPECT_TRUE(store.exists(a));
  EXPECT_TRUE(store.spilled(a));
  EXPECT_FALSE(store.spilled(b));
  EXPECT_EQ(store.stats().spills, 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.str() + "/region-" +
                                      std::to_string(a) + ".blob"));

  // Reading promotes `a` back into memory (evicting/spilling `b`).
  EXPECT_EQ(store.read(a), payload);
  EXPECT_FALSE(store.spilled(a));
  EXPECT_TRUE(store.spilled(b));
  EXPECT_EQ(store.stats().promotions, 1u);
}

TEST(WarabiCapacity, LogicalSizeStandInDrivesAccounting) {
  mochi::BlobStore store("logical");
  const auto region =
      store.create_sealed("tiny-physical", /*logical_size=*/64 << 20);
  EXPECT_EQ(store.logical_size(region), 64u << 20);
  EXPECT_EQ(store.size(region), std::string("tiny-physical").size());
  EXPECT_EQ(store.resident_bytes(), 64u << 20);
}

// ---------------------------------------------------------------------------
// Proxy + fetch-frame wire codec.

TEST(DatastoreWire, ProxyRoundTripsAndRejectsTrailingBytes) {
  Proxy proxy;
  proxy.shard = 7;
  proxy.node = 3;
  proxy.region = 0x1234567890ULL;
  proxy.size = 5ULL << 30;
  proxy.fingerprint = 0xDEADBEEFCAFEF00DULL;
  const std::string bytes = datastore::encode_proxy(proxy);
  EXPECT_EQ(datastore::decode_proxy(bytes), proxy);
  // The control plane ships proxies instead of multi-GiB payloads: the
  // encoding must stay tiny.
  EXPECT_LE(bytes.size(), 64u);
  EXPECT_THROW((void)datastore::decode_proxy(bytes + "x"), wire::WireError);
}

TEST(DatastoreWire, TruncatedOrMistaggedProxyThrows) {
  const std::string bytes = datastore::encode_proxy(Proxy{1, 1, 42, 100, 99});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)datastore::decode_proxy(bytes.substr(0, cut)),
                 wire::WireError)
        << "prefix of " << cut << " bytes decoded";
  }
  std::string mistagged = bytes;
  mistagged[0] = static_cast<char>(0x7F);
  EXPECT_THROW((void)datastore::decode_proxy(mistagged), wire::WireError);
}

TEST(DatastoreWire, FetchFramesRoundTripAndRejectTruncation) {
  datastore::FetchRequest request;
  request.key = "produce-aa/3";
  request.source = 2;
  request.region = 17;
  request.offset = 128;
  request.length = 4096;
  const std::string req_frame = datastore::encode_fetch_request(request);
  std::size_t pos = 0;
  const datastore::FetchRequest req2 =
      datastore::decode_fetch_request(req_frame, pos);
  EXPECT_EQ(pos, req_frame.size());
  EXPECT_EQ(req2.key, request.key);
  EXPECT_EQ(req2.source, request.source);
  EXPECT_EQ(req2.region, request.region);
  EXPECT_EQ(req2.offset, request.offset);
  EXPECT_EQ(req2.length, request.length);

  datastore::FetchResponse response;
  response.status = FetchStatus::kOk;
  response.logical_size = 1 << 20;
  response.fingerprint = 0xABCDEF;
  response.payload = "canonical-bytes";
  const std::string resp_frame = datastore::encode_fetch_response(response);
  pos = 0;
  const datastore::FetchResponse resp2 =
      datastore::decode_fetch_response(resp_frame, pos);
  EXPECT_EQ(resp2.status, response.status);
  EXPECT_EQ(resp2.logical_size, response.logical_size);
  EXPECT_EQ(resp2.fingerprint, response.fingerprint);
  EXPECT_EQ(resp2.payload, response.payload);

  // Every strict prefix is rejected — a truncated frame can never decode
  // into a shorter-but-valid response.
  for (std::size_t cut = 0; cut < resp_frame.size(); ++cut) {
    std::size_t p = 0;
    EXPECT_THROW(
        (void)datastore::decode_fetch_response(resp_frame.substr(0, cut), p),
        wire::WireError);
  }
}

// ---------------------------------------------------------------------------
// DataStore semantics.

DataStoreConfig two_shard_config() {
  DataStoreConfig config;
  config.inline_threshold = 4096;
  return config;
}

TEST(DataStoreTest, ThresholdSplitsInlineFromOob) {
  DataStore store(two_shard_config());
  store.add_shard(0, 0);
  EXPECT_FALSE(store.oob(0));
  EXPECT_FALSE(store.oob(4095));
  EXPECT_TRUE(store.oob(4096));
  EXPECT_TRUE(store.oob(1ULL << 40));

  // Below the threshold publish is inert (inline accounting only).
  const Proxy none = store.publish("small", 0, 100);
  EXPECT_FALSE(none.valid());
  EXPECT_FALSE(store.proxy_for("small").has_value());
  store.note_inline(50);
  EXPECT_EQ(store.stats().inline_results, 2u);
  EXPECT_EQ(store.stats().inline_bytes, 150u);

  DataStoreConfig disabled = two_shard_config();
  disabled.enabled = false;
  DataStore off(disabled);
  EXPECT_FALSE(off.oob(1 << 20));
}

TEST(DataStoreTest, PublishPinsOwnerCopyAndFetchInstallsReplica) {
  DataStore store(two_shard_config());
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  const std::uint64_t bytes = 8 << 20;
  const Proxy proxy = store.publish("produce-aa/0", 0, bytes);
  ASSERT_TRUE(proxy.valid());
  EXPECT_EQ(proxy.shard, 0u);
  EXPECT_EQ(proxy.node, 0u);
  EXPECT_EQ(proxy.size, bytes);
  EXPECT_EQ(proxy.fingerprint, DataStore::fingerprint_of("produce-aa/0", bytes));
  EXPECT_TRUE(store.shard_store(0).pinned(proxy.region));
  EXPECT_EQ(store.shard_store(0).logical_size(proxy.region), bytes);

  EXPECT_EQ(store.fetch("produce-aa/0", 0, 1), FetchStatus::kOk);
  EXPECT_EQ(store.replicas("produce-aa/0"),
            (std::vector<datastore::ShardId>{0, 1}));
  // Replica copies are unpinned (evictable); the owner copy stays pinned.
  // Fetch is idempotent and a re-fetch costs no second wire round-trip.
  const auto wire_bytes = store.stats().fetch_wire_bytes;
  EXPECT_GT(wire_bytes, 0u);
  EXPECT_EQ(store.fetch("produce-aa/0", 0, 1), FetchStatus::kOk);
  EXPECT_EQ(store.stats().fetch_wire_bytes, wire_bytes);
  EXPECT_EQ(store.stats().fetches, 1u);

  // An unknown key or a source without a copy is kMissing, not a crash.
  EXPECT_EQ(store.fetch("no-such-key", 0, 1), FetchStatus::kMissing);
}

TEST(DataStoreTest, RepublishTransfersOwnershipAndDropsStaleCopies) {
  DataStore store(two_shard_config());
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  const Proxy first = store.publish("stolen-bb/0", 0, 1 << 20);
  ASSERT_TRUE(first.valid());
  // A steal lands the recompute on shard 1: it republishes, shard 0's stale
  // copy is dropped, and ownership moves.
  const Proxy second = store.publish("stolen-bb/0", 1, 1 << 20);
  ASSERT_TRUE(second.valid());
  EXPECT_EQ(second.shard, 1u);
  EXPECT_FALSE(store.shard_store(0).exists(first.region));
  ASSERT_TRUE(store.proxy_for("stolen-bb/0").has_value());
  EXPECT_EQ(store.proxy_for("stolen-bb/0")->shard, 1u);
  EXPECT_EQ(store.stats().republishes, 1u);
  EXPECT_EQ(store.stats().ownership_transfers, 1u);
}

TEST(DataStoreTest, ExplicitOwnershipTransferMovesThePin) {
  DataStore store(two_shard_config());
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  const Proxy proxy = store.publish("move-cc/0", 0, 1 << 20);
  // Transfer to a shard without a replica is refused.
  EXPECT_FALSE(store.transfer_ownership("move-cc/0", 1));
  ASSERT_EQ(store.fetch("move-cc/0", 0, 1), FetchStatus::kOk);
  EXPECT_TRUE(store.transfer_ownership("move-cc/0", 1));
  ASSERT_TRUE(store.proxy_for("move-cc/0").has_value());
  EXPECT_EQ(store.proxy_for("move-cc/0")->shard, 1u);
  // The old owner copy is unpinned (now evictable); the new owner's pinned.
  EXPECT_FALSE(store.shard_store(0).pinned(proxy.region));
  EXPECT_TRUE(
      store.shard_store(1).pinned(store.proxy_for("move-cc/0")->region));
  // Transferring to the current owner is a no-op success.
  EXPECT_TRUE(store.transfer_ownership("move-cc/0", 1));
}

TEST(DataStoreTest, OwnerDeathRepinsToSurvivingReplica) {
  DataStore store(two_shard_config());
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  store.add_shard(2, 1);
  store.publish("repin-dd/0", 0, 1 << 20);
  ASSERT_EQ(store.fetch("repin-dd/0", 0, 2), FetchStatus::kOk);
  store.kill_shard(0);
  // Ownership re-pinned to the lowest-id surviving replica.
  ASSERT_TRUE(store.proxy_for("repin-dd/0").has_value());
  const Proxy after = *store.proxy_for("repin-dd/0");
  EXPECT_EQ(after.shard, 2u);
  EXPECT_TRUE(store.shard_store(2).pinned(after.region));
  EXPECT_EQ(store.stats().repins, 1u);
  // Fetching from the dead shard reports kMissing (callers pick the new
  // owner from the refreshed proxy).
  EXPECT_EQ(store.fetch("repin-dd/0", 0, 1), FetchStatus::kMissing);
  EXPECT_EQ(store.fetch("repin-dd/0", 2, 1), FetchStatus::kOk);
}

TEST(DataStoreTest, OwnerDeathWithNoReplicaLosesTheEntry) {
  DataStore store(two_shard_config());
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  store.publish("lost-ee/0", 0, 1 << 20);
  store.kill_shard(0);
  // No surviving copy: the entry vanishes so the scheduler's lost-key
  // recovery recomputes the producer; a later publish re-creates it.
  EXPECT_FALSE(store.proxy_for("lost-ee/0").has_value());
  EXPECT_EQ(store.stats().lost_entries, 1u);
  EXPECT_EQ(store.fetch("lost-ee/0", 0, 1), FetchStatus::kMissing);
  const Proxy again = store.publish("lost-ee/0", 1, 1 << 20);
  EXPECT_TRUE(again.valid());
  EXPECT_EQ(store.proxy_for("lost-ee/0")->shard, 1u);
}

TEST(DataStoreTest, TransportFaultsAreAbsorbedAndNeverInstallTruncatedBytes) {
  chaos::FaultPlan plan;
  plan.seed = 5150;
  chaos::SiteSpec& site = plan.sites[chaos::sites::kDatastoreFetch];
  // First four wire attempts: two lost frames, two truncated responses.
  site.schedule.push_back({1, chaos::FaultAction::kDrop});
  site.schedule.push_back({2, chaos::FaultAction::kReorder});
  site.schedule.push_back({3, chaos::FaultAction::kTransientError});
  site.schedule.push_back({4, chaos::FaultAction::kReorder});
  chaos::FaultInjector injector(plan);

  DataStore store(two_shard_config(), &injector);
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  store.publish("flaky-ff/0", 0, 1 << 20);
  EXPECT_EQ(store.fetch("flaky-ff/0", 0, 1), FetchStatus::kOk);
  const auto stats = store.stats();
  EXPECT_EQ(stats.fetch_retries, 4u);
  // The two truncated responses were caught by frame/fingerprint validation
  // — the replica installed on attempt five is the full validated payload.
  EXPECT_EQ(stats.validation_failures, 2u);
  EXPECT_EQ(stats.fetches, 1u);
  EXPECT_EQ(stats.fetch_failures, 0u);
  // The installed replica holds the full validated payload: serving a
  // second consumer *from shard 1* passes fingerprint validation.
  store.add_shard(2, 2);
  EXPECT_EQ(store.fetch("flaky-ff/0", 1, 2), FetchStatus::kOk);
}

TEST(DataStoreTest, RetryBudgetExhaustionIsUnavailableNotCorrupt) {
  chaos::FaultPlan plan;
  plan.seed = 2;
  plan.sites[chaos::sites::kDatastoreFetch].drop = 1.0;  // every attempt
  chaos::FaultInjector injector(plan);
  DataStoreConfig config = two_shard_config();
  config.max_fetch_retries = 3;
  DataStore store(config, &injector);
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  store.publish("dead-link-gg/0", 0, 1 << 20);
  EXPECT_EQ(store.fetch("dead-link-gg/0", 0, 1), FetchStatus::kUnavailable);
  EXPECT_EQ(store.stats().fetch_failures, 1u);
  EXPECT_EQ(store.stats().fetch_retries, 4u);  // initial try + 3 retries
  // Nothing was installed on the requester.
  EXPECT_EQ(store.replicas("dead-link-gg/0"),
            (std::vector<datastore::ShardId>{0}));
}

TEST(DataStoreTest, ChaosEvictWithSpillTierIsNonDestructive) {
  TempDir dir("chaos_spill");
  chaos::FaultPlan plan;
  plan.seed = 3;
  // Every publish/install triggers a forced eviction.
  plan.sites[chaos::sites::kDatastoreEvict].transient_error = 1.0;
  chaos::FaultInjector injector(plan);
  DataStoreConfig config = two_shard_config();
  config.spill_dir = dir.str();
  DataStore store(config, &injector);
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  store.publish("spilly-hh/0", 0, 1 << 20);
  ASSERT_EQ(store.fetch("spilly-hh/0", 0, 1), FetchStatus::kOk);
  // The unpinned replica on shard 1 was force-evicted — demoted to the
  // spill tier, not lost; a fetch against it still serves (via promotion).
  EXPECT_EQ(store.shard_store(1).stats().spills, 1u);
  store.add_shard(2, 2);
  EXPECT_EQ(store.fetch("spilly-hh/0", 1, 2), FetchStatus::kOk);
  EXPECT_EQ(store.shard_store(1).stats().promotions, 1u);
  EXPECT_EQ(store.stats().lost_entries, 0u);
}

TEST(DataStoreTest, ChaosEvictWithoutSpillDropsReplicaAndFetchReportsMissing) {
  chaos::FaultPlan plan;
  plan.seed = 4;
  plan.sites[chaos::sites::kDatastoreEvict].transient_error = 1.0;
  chaos::FaultInjector injector(plan);
  DataStore store(two_shard_config(), &injector);
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  store.add_shard(2, 2);
  store.publish("droppy-ii/0", 0, 1 << 20);
  ASSERT_EQ(store.fetch("droppy-ii/0", 0, 1), FetchStatus::kOk);
  // The install on shard 1 triggered a forced eviction with no spill tier:
  // the fresh replica is gone and its registration was dropped (the pinned
  // owner copy on shard 0 is not evictable).
  EXPECT_EQ(store.replicas("droppy-ii/0"),
            (std::vector<datastore::ShardId>{0}));
  EXPECT_GE(store.stats().replica_drops, 1u);
  // A consumer that raced the eviction and still believes in shard 1 gets
  // kMissing and falls back to the owner.
  EXPECT_EQ(store.fetch("droppy-ii/0", 1, 2), FetchStatus::kMissing);
  EXPECT_EQ(store.fetch("droppy-ii/0", 0, 2), FetchStatus::kOk);
}

TEST(DataStoreTest, CapacityPressureEvictsReplicasButNeverTheOwnerCopy) {
  DataStoreConfig config = two_shard_config();
  config.shard_capacity_bytes = 3 << 20;
  DataStore store(config);
  store.add_shard(0, 0);
  store.add_shard(1, 1);
  // Three 1 MiB owner copies on shard 0 fill its budget exactly; they are
  // pinned, so a fourth publish succeeds without evicting any of them.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        store.publish("own-jj/" + std::to_string(i), 0, 1 << 20).valid());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(store.proxy_for("own-jj/" + std::to_string(i)).has_value());
  }
  // Shard 1 pulls all four: its budget holds three unpinned replicas, so
  // the oldest one is evicted (dropped — no spill tier) as the fourth lands.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(store.fetch("own-jj/" + std::to_string(i), 0, 1),
              FetchStatus::kOk);
  }
  EXPECT_LE(store.shard_store(1).resident_bytes(), 3u << 20);
  EXPECT_GE(store.shard_store(1).stats().evictions, 1u);
  // Every key still resolves: owner copies were untouched.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.proxy_for("own-jj/" + std::to_string(i)).has_value());
    EXPECT_EQ(store.proxy_for("own-jj/" + std::to_string(i))->shard, 0u);
  }
}

// ---------------------------------------------------------------------------
// Real-thread concurrency smoke (exercised under ASan/UBSan and TSan by
// tools/run_checks.sh): publishers, fetchers, and an evictor hammer one
// DataStore concurrently; the store's mutex plus warabi's per-shard lock
// must keep every invariant intact with no data races.

TEST(DataStoreConcurrency, ParallelPublishFetchEvictSmoke) {
  TempDir dir("conc");
  DataStoreConfig config;
  config.inline_threshold = 1024;
  config.shard_capacity_bytes = 64 << 10;
  config.spill_dir = dir.str();
  DataStore store(config);
  constexpr int kShards = 4;
  for (int s = 0; s < kShards; ++s) {
    store.add_shard(static_cast<datastore::ShardId>(s), s % 2);
  }
  constexpr int kKeys = 32;
  const auto key_name = [](int k) { return "conc-kk/" + std::to_string(k); };

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Publishers: each owns a shard and (re)publishes its slice of keys.
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&, s] {
      for (int round = 0; round < 50; ++round) {
        for (int k = s; k < kKeys; k += 2) {
          store.publish(key_name(k), static_cast<datastore::ShardId>(s),
                        4096 + static_cast<std::uint64_t>(k) * 17);
        }
      }
    });
  }
  // Fetchers: pull whatever currently resolves into shards 2 and 3.
  for (int s = 2; s < kShards; ++s) {
    threads.emplace_back([&, s] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kKeys; ++k) {
          const auto proxy = store.proxy_for(key_name(k));
          if (!proxy) continue;
          (void)store.fetch(key_name(k), proxy->shard,
                            static_cast<datastore::ShardId>(s));
        }
      }
    });
  }
  // Evictor: force capacity churn on the consumer shards.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.shard_store(2).evict_one();
      (void)store.shard_store(3).evict_one();
      std::this_thread::yield();
    }
  });

  threads[0].join();
  threads[1].join();
  stop.store(true);
  for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();

  // Terminal invariants: every key resolves to a pinned owner copy whose
  // logical size matches, and no validation failure ever fired (fetch never
  // observed torn bytes).
  for (int k = 0; k < kKeys; ++k) {
    const auto proxy = store.proxy_for(key_name(k));
    ASSERT_TRUE(proxy.has_value()) << key_name(k);
    EXPECT_TRUE(store.shard_store(proxy->shard).pinned(proxy->region));
    EXPECT_EQ(proxy->size, 4096 + static_cast<std::uint64_t>(k) * 17);
  }
  EXPECT_EQ(store.stats().validation_failures, 0u);
  EXPECT_EQ(store.stats().fetch_failures, 0u);
}

// ---------------------------------------------------------------------------
// Cluster-level acceptance: a fault-free run with the datastore enabled is
// byte-identical to the inline path in the paper's figure views, while the
// scheduler path carries >= 5x fewer bytes at the 4 KiB threshold.

std::vector<dtr::TaskGraph> cluster_workload() {
  dtr::TaskGraph g1("produce");
  for (int i = 0; i < 12; ++i) {
    dtr::TaskSpec t;
    t.key = {"produce-ca11", i};
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 20;  // >= threshold: goes out-of-band
    g1.add_task(t);
  }
  dtr::TaskGraph g2("consume");
  for (int i = 0; i < 12; ++i) {
    dtr::TaskSpec t;
    t.key = {"consume-fe55", i};
    // Fan-in across producers: the cost-based scheduler can co-locate a
    // consumer with at most one of them, so the others are fetched across
    // workers — the transfers this test is about.
    t.dependencies.push_back({"produce-ca11", i});
    t.dependencies.push_back({"produce-ca11", (i + 1) % 12});
    t.dependencies.push_back({"produce-ca11", (i + 5) % 12});
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 10;  // below threshold: stays inline
    g2.add_task(t);
  }
  std::vector<dtr::TaskGraph> graphs;
  graphs.push_back(std::move(g1));
  graphs.push_back(std::move(g2));
  return graphs;
}

dtr::ClusterConfig cluster_config(std::uint64_t seed) {
  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = seed;
  config.enable_gpuprof = false;
  return config;
}

std::string fingerprint(const analysis::DataFrame& frame) {
  std::string out;
  for (const auto& name : frame.column_names()) {
    out += name;
    out += ',';
  }
  out += '\n';
  for (std::size_t row = 0; row < frame.rows(); ++row) {
    for (std::size_t c = 0; c < frame.width(); ++c) {
      out += frame.col(c).display(row);
      out += '|';
    }
    out += '\n';
  }
  return out;
}

TEST(DataStoreCluster, OobRunIsByteIdenticalToInlineInFigureViews) {
  dtr::ClusterConfig oob_config = cluster_config(7);
  ASSERT_TRUE(oob_config.datastore.enabled);  // the default
  dtr::Cluster oob_cluster(oob_config);
  const dtr::RunData oob = oob_cluster.run(cluster_workload(), "oob", 0);

  dtr::ClusterConfig inline_config = cluster_config(7);
  inline_config.datastore.enabled = false;  // pre-datastore path
  dtr::Cluster inline_cluster(inline_config);
  const dtr::RunData base = inline_cluster.run(cluster_workload(), "oob", 0);

  // Identical timing/placement behaviour: the figure views (which carry
  // every timing, size, and locality column) match byte for byte.
  EXPECT_EQ(fingerprint(analysis::figure5_frame(oob)),
            fingerprint(analysis::figure5_frame(base)));
  EXPECT_EQ(fingerprint(analysis::figure6_frame(oob)),
            fingerprint(analysis::figure6_frame(base)));
  ASSERT_EQ(oob.tasks.size(), base.tasks.size());
  ASSERT_EQ(oob.comms.size(), base.comms.size());

  // The provenance split: every >= 4 KiB result went out-of-band, every
  // smaller one stayed inline, and at most one of the two is nonzero.
  std::uint64_t oob_bytes = 0;
  std::uint64_t inline_bytes = 0;
  for (const auto& t : oob.tasks) {
    EXPECT_TRUE(t.bytes_oob == 0 || t.bytes_inline == 0);
    EXPECT_EQ(t.bytes_oob + t.bytes_inline, t.output_bytes);
    if (t.output_bytes >= oob_config.datastore.inline_threshold) {
      EXPECT_EQ(t.bytes_oob, t.output_bytes) << t.key.to_string();
    } else {
      EXPECT_EQ(t.bytes_inline, t.output_bytes) << t.key.to_string();
    }
    oob_bytes += t.bytes_oob;
    inline_bytes += t.bytes_inline;
  }
  for (const auto& t : base.tasks) {
    EXPECT_EQ(t.bytes_oob, 0u);
    EXPECT_EQ(t.bytes_inline, t.output_bytes);
  }
  // Dependency transfers for out-of-band results are flagged in the comms
  // view (same endpoints/bytes/timing as the inline run otherwise).
  std::size_t oob_comms = 0;
  for (const auto& c : oob.comms) {
    if (c.oob) ++oob_comms;
  }
  EXPECT_GT(oob_comms, 0u);
  for (const auto& c : base.comms) EXPECT_FALSE(c.oob);

  // The acceptance ratio: scheduler-path payload bytes collapse from the
  // full result volume to (small inline results + proxy handles).
  ASSERT_NE(oob_cluster.datastore(), nullptr);
  EXPECT_EQ(inline_cluster.datastore(), nullptr);
  const datastore::DataStoreStats stats = oob_cluster.datastore()->stats();
  EXPECT_EQ(stats.oob_bytes, oob_bytes);
  const std::uint64_t inline_path_bytes = oob_bytes + inline_bytes;
  const std::uint64_t oob_path_bytes = inline_bytes + stats.proxy_wire_bytes;
  ASSERT_GT(oob_path_bytes, 0u);
  EXPECT_GE(static_cast<double>(inline_path_bytes) /
                static_cast<double>(oob_path_bytes),
            5.0)
      << "scheduler path moved " << oob_path_bytes << " of "
      << inline_path_bytes << " inline-path bytes";
  EXPECT_EQ(stats.fetch_failures, 0u);
  EXPECT_EQ(stats.validation_failures, 0u);
}

// ---------------------------------------------------------------------------
// The 10-seed chaos oracle under datastore.* faults: randomized fetch-frame
// drops/truncations plus forced evictions (spill tier configured, so forced
// eviction demotes instead of destroys) must not change any provenance view
// by a single byte — wire retries and fingerprint validation absorb every
// fault below the application.

struct PipelineResult {
  std::size_t direct_tasks = 0;
  std::map<std::string, std::string> views;
  std::uint64_t faults = 0;
  datastore::DataStoreStats datastore_stats;
};

PipelineResult run_pipeline(std::uint64_t cluster_seed,
                            const chaos::FaultPlan& plan,
                            const std::string& spill_dir) {
  dtr::ClusterConfig config = cluster_config(cluster_seed);
  config.fault_plan = plan;
  config.datastore.spill_dir = spill_dir;

  dtr::Cluster cluster(config);
  const dtr::RunData direct = cluster.run(cluster_workload(), "dchaos", 0);

  query::StoreCatalog catalog;
  query::LiveIngestor ingestor(cluster.broker(), catalog);
  ingestor.publish(direct.meta);

  PipelineResult result;
  result.direct_tasks = direct.tasks.size();
  const query::StoreCatalog::Snapshot snap = catalog.snapshot();
  const prov::RunId id{"dchaos", 0};
  for (const query::ViewId view :
       {query::ViewId::kTasks, query::ViewId::kTransitions,
        query::ViewId::kComms, query::ViewId::kWarnings,
        query::ViewId::kSteals}) {
    result.views[query::view_name(view)] = fingerprint(*snap.frame(view, id));
  }
  if (cluster.fault_injector()) {
    result.faults = cluster.fault_injector()->faults_injected();
  }
  if (cluster.datastore()) {
    result.datastore_stats = cluster.datastore()->stats();
  }
  return result;
}

class DatastoreChaosOracle : public ::testing::TestWithParam<int> {};

TEST_P(DatastoreChaosOracle, ViewsIdenticalUnderDatastoreFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  TempDir spill("oracle_" + std::to_string(seed));
  const chaos::FaultPlan plan =
      chaos::FaultPlan::randomized_datastore(4000 + seed, 0.08);

  const PipelineResult baseline =
      run_pipeline(seed, chaos::FaultPlan{}, spill.str() + "/base");
  const PipelineResult faulty =
      run_pipeline(seed, plan, spill.str() + "/faulty");

  // The plan actually attacked the data plane...
  EXPECT_GT(faulty.faults, 0u) << plan.describe();
  EXPECT_EQ(baseline.faults, 0u);
  EXPECT_GT(faulty.datastore_stats.fetch_retries, 0u);
  // ...no fetch was lost or corrupted past the wire retries...
  EXPECT_EQ(faulty.datastore_stats.fetch_failures, 0u);
  EXPECT_EQ(faulty.direct_tasks, baseline.direct_tasks);
  // ...and every provenance view survived byte-identical.
  ASSERT_EQ(faulty.views.size(), baseline.views.size());
  for (const auto& [name, expected] : baseline.views) {
    const auto it = faulty.views.find(name);
    ASSERT_NE(it, faulty.views.end()) << name;
    EXPECT_EQ(it->second, expected)
        << "view '" << name << "' diverged under " << plan.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatastoreChaosOracle, ::testing::Range(1, 11));

}  // namespace
}  // namespace recup
