// Unit tests for the JSON module: parse/dump round trips, typed access,
// error handling.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace recup::json {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("3.5").as_double(), 3.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntAndDoubleStayDistinct) {
  EXPECT_TRUE(parse("42").is_int());
  EXPECT_FALSE(parse("42").is_double());
  EXPECT_TRUE(parse("42.0").is_double());
  // Integer widens through as_double but not the reverse.
  EXPECT_DOUBLE_EQ(parse("42").as_double(), 42.0);
  EXPECT_THROW(parse("42.5").as_int(), TypeError);
}

TEST(Json, ParseNested) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_EQ(v.at("a").at(2).at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").at("e").is_null());
}

TEST(Json, StringEscapes) {
  const Value v = parse(R"("line1\nline2\t\"q\" \\ A")");
  EXPECT_EQ(v.as_string(), "line1\nline2\t\"q\" \\ A");
}

TEST(Json, UnicodeEscapeUtf8) {
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(Json, DumpRoundTrip) {
  const std::string text =
      R"({"arr":[1,2.5,"s"],"b":true,"n":null,"num":-3})";
  const Value v = parse(text);
  const Value again = parse(v.dump());
  EXPECT_EQ(v, again);
}

TEST(Json, DumpDeterministicKeyOrder) {
  Value v;
  v["zebra"] = 1;
  v["alpha"] = 2;
  EXPECT_EQ(v.dump(), R"({"alpha":2,"zebra":1})");
}

TEST(Json, PrettyPrintIndents) {
  Value v;
  v["a"] = 1;
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("{\"a\":1} extra"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
}

TEST(Json, TypeErrors) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), TypeError);
  EXPECT_THROW(v.at("key"), TypeError);
  EXPECT_THROW(v.at(5), TypeError);
  EXPECT_THROW(parse("1").size(), TypeError);
}

TEST(Json, TypedLookupsWithDefaults) {
  const Value v = parse(R"({"i": 7, "d": 2.5, "s": "x", "b": true})");
  EXPECT_EQ(v.get_int("i", -1), 7);
  EXPECT_EQ(v.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0.0), 2.5);
  EXPECT_EQ(v.get_string("s", ""), "x");
  EXPECT_EQ(v.get_bool("b", false), true);
  EXPECT_EQ(v.get_bool("missing", true), true);
}

TEST(Json, OperatorBracketBuildsObjects) {
  Value v;  // starts null
  v["outer"]["inner"] = 3;
  EXPECT_EQ(v.at("outer").at("inner").as_int(), 3);
  EXPECT_TRUE(v.contains("outer"));
  EXPECT_FALSE(v.contains("nope"));
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  Value v(std::numeric_limits<double>::infinity());
  EXPECT_EQ(v.dump(), "null");
}

TEST(Json, LargeIntegerRoundTrip) {
  const std::int64_t big = 0x7f0000000001ULL;
  Value v(big);
  EXPECT_EQ(parse(v.dump()).as_int(), big);
}

}  // namespace
}  // namespace recup::json
