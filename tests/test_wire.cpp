// Property tests for the recup::wire binary codec: round-trips against the
// JSON model for every value type, interning-dictionary behaviour across
// frames (growth, idempotent retry, ordering), and rejection of truncated
// or corrupt input.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "wire/codec.hpp"

namespace {

using recup::json::Array;
using recup::json::Object;
using recup::json::Value;
namespace wire = recup::wire;

// Random JSON value generator, depth-limited so arrays/objects terminate.
Value random_value(std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> kind_dist(0, depth > 0 ? 6 : 4);
  switch (kind_dist(rng)) {
    case 0:
      return Value(nullptr);
    case 1:
      return Value(rng() % 2 == 0);
    case 2: {
      // Bias toward small magnitudes but include full-range int64s.
      if (rng() % 4 == 0) return Value(static_cast<std::int64_t>(rng()));
      return Value(static_cast<std::int64_t>(rng() % 4096) - 2048);
    }
    case 3:
      return Value(std::uniform_real_distribution<double>(-1e12, 1e12)(rng));
    case 4: {
      const std::size_t len = rng() % 24;
      std::string s;
      for (std::size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng() % 26));
      }
      return Value(std::move(s));
    }
    case 5: {
      Array a;
      const std::size_t count = rng() % 5;
      for (std::size_t i = 0; i < count; ++i) {
        a.push_back(random_value(rng, depth - 1));
      }
      return Value(std::move(a));
    }
    default: {
      Object o;
      const std::size_t count = rng() % 5;
      for (std::size_t i = 0; i < count; ++i) {
        o["key_" + std::to_string(rng() % 8)] = random_value(rng, depth - 1);
      }
      return Value(std::move(o));
    }
  }
}

TEST(WireCodec, ScalarRoundTrip) {
  const std::vector<Value> cases = {
      Value(nullptr),
      Value(true),
      Value(false),
      Value(std::int64_t{0}),
      Value(std::int64_t{-1}),
      Value(std::numeric_limits<std::int64_t>::max()),
      Value(std::numeric_limits<std::int64_t>::min()),
      Value(0.0),
      Value(-2.5),
      Value(1e308),
      Value(std::string("hello")),
      Value(std::string("")),
  };
  for (const Value& v : cases) {
    const std::string bytes = wire::encode_value(v);
    EXPECT_EQ(wire::decode_value(bytes), v) << v.dump();
  }
}

TEST(WireCodec, RandomizedRoundTripMatchesJsonModel) {
  std::mt19937_64 rng(0xC0DEC);
  for (int i = 0; i < 500; ++i) {
    const Value v = random_value(rng, 3);
    const std::string bytes = wire::encode_value(v);
    const Value back = wire::decode_value(bytes);
    ASSERT_EQ(back, v) << v.dump();
    // The decoded value serializes identically, so binary storage is
    // transparent to every JSON consumer downstream.
    ASSERT_EQ(back.dump(), v.dump());
  }
}

TEST(WireCodec, EmptyAndHugeStrings) {
  Object o;
  o["empty"] = std::string();
  o["huge"] = std::string(1 << 20, 'x');
  std::string nul_bytes("a\0b\xff", 4);
  o["binary"] = nul_bytes;  // embedded NUL + high bytes survive
  const Value v(std::move(o));
  const Value back = wire::decode_value(wire::encode_value(v));
  EXPECT_EQ(back, v);
  EXPECT_EQ(back.at("huge").as_string().size(), 1u << 20);
  EXPECT_EQ(back.at("binary").as_string(), nul_bytes);
}

TEST(WireCodec, SelfContainedIsSmallerThanJson) {
  // Representative provenance event metadata.
  Object o;
  o["task_id"] = std::string("imageprocessing-000123-segment");
  o["state"] = std::string("RUNNING");
  o["worker"] = std::string("nid004512");
  o["ts"] = 1723200000.125;
  o["attempt"] = 1;
  const Value v(std::move(o));
  EXPECT_LT(wire::encode_value(v).size(), v.dump().size());
}

TEST(WireCodec, StreamInterningShrinksRepeatedFrames) {
  wire::StreamEncoder enc;
  wire::StreamDecoder dec;
  Object o;
  o["task_state"] = std::string("TASK_COMPLETED");
  o["hostname"] = std::string("nid004512");
  const Value v(std::move(o));

  // Frame 1: every string inline (first sighting). Frame 2: repeats get
  // str-def (second sighting, interned). Frame 3+: str-ref only.
  const std::string f1 = enc.encode(v);
  const std::string f2 = enc.encode(v);
  const std::string f3 = enc.encode(v);
  EXPECT_EQ(enc.dictionary_size(), 4u);  // 2 keys + 2 values
  EXPECT_LT(f3.size(), f1.size());
  EXPECT_EQ(dec.decode(f1), v);
  EXPECT_EQ(dec.decode(f2), v);
  EXPECT_EQ(dec.decode(f3), v);
  EXPECT_EQ(dec.dictionary_size(), 4u);
}

TEST(WireCodec, DictionaryGrowsAcrossFrames) {
  wire::StreamEncoder enc;
  wire::StreamDecoder dec;
  // Distinct strings per frame, each repeated within a later frame so they
  // all intern eventually; decode in order and verify every frame.
  std::vector<Value> values;
  std::vector<std::string> frames;
  for (int frame = 0; frame < 20; ++frame) {
    Array a;
    for (int i = 0; i <= frame; ++i) {
      a.push_back(Value("shared_string_" + std::to_string(i)));
    }
    values.emplace_back(std::move(a));
    frames.push_back(enc.encode(values.back()));
  }
  // The encoder has sighted all 20 strings; the decoder's dictionary holds
  // the 19 that were seen twice and thus shipped as definitions (the newest
  // string is still pending on the encoder side).
  EXPECT_EQ(enc.dictionary_size(), 20u);
  std::size_t last_dict = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(dec.decode(frames[i]), values[i]);
    EXPECT_GE(dec.dictionary_size(), last_dict);  // only grows
    last_dict = dec.dictionary_size();
  }
  EXPECT_EQ(dec.dictionary_size(), 19u);
}

TEST(WireCodec, RetriedFrameDecodesIdempotently) {
  wire::StreamEncoder enc;
  wire::StreamDecoder dec;
  const Value v(Array{Value("retry_me"), Value("retry_me")});
  const std::string f1 = enc.encode(v);  // second occurrence ships str-def
  const std::string f2 = enc.encode(v);  // str-ref form

  EXPECT_EQ(dec.decode(f1), v);
  const std::size_t dict_after_first = dec.dictionary_size();
  // A producer retrying after a lost ack re-sends identical bytes; the
  // str-def inside must verify against the existing entry, not re-append.
  EXPECT_EQ(dec.decode(f1), v);
  EXPECT_EQ(dec.dictionary_size(), dict_after_first);
  EXPECT_EQ(dec.decode(f2), v);
  EXPECT_EQ(dec.decode(f2), v);
}

TEST(WireCodec, OutOfOrderFrameRejected) {
  wire::StreamEncoder enc;
  const Value v(Array{Value("needs_definition"), Value("needs_definition")});
  (void)enc.encode(v);                    // frame 1 carries the str-def
  const std::string f2 = enc.encode(v);   // frame 2 is str-ref only
  wire::StreamDecoder fresh;
  EXPECT_THROW((void)fresh.decode(f2), wire::WireError);
}

TEST(WireCodec, ShortStringsNeverInterned) {
  wire::StreamEncoder enc;
  const Value v(Array{Value("a"), Value("a"), Value("a")});
  (void)enc.encode(v);
  (void)enc.encode(v);
  EXPECT_EQ(enc.dictionary_size(), 0u);
}

TEST(WireCodec, SessionTagsRejectedBySelfContainedDecoder) {
  wire::StreamEncoder enc;
  const Value v(Array{Value("session_string"), Value("session_string")});
  (void)enc.encode(v);
  const std::string interned = enc.encode(v);  // contains str-ref
  EXPECT_THROW((void)wire::decode_value(interned), wire::WireError);
}

TEST(WireCodec, EveryTruncationRejected) {
  std::mt19937_64 rng(7);
  const Value v = random_value(rng, 3);
  const std::string bytes = wire::encode_value(v);
  ASSERT_FALSE(bytes.empty());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)wire::decode_value(bytes.substr(0, cut)),
                 wire::WireError)
        << "prefix length " << cut;
  }
}

TEST(WireCodec, CorruptInputRejected) {
  // Unknown tag bytes.
  for (int tag = wire::kMaxTag + 1; tag < 0x20; ++tag) {
    const std::string bad(1, static_cast<char>(tag));
    EXPECT_THROW((void)wire::decode_value(bad), wire::WireError) << tag;
  }
  // Trailing garbage after a complete value.
  std::string bytes = wire::encode_value(Value(std::int64_t{42}));
  bytes.push_back('\x00');
  EXPECT_THROW((void)wire::decode_value(bytes), wire::WireError);
  // String length varint claiming more bytes than the buffer holds.
  std::string lying;
  lying.push_back(static_cast<char>(wire::kStr));
  wire::put_varint(lying, 1'000'000);
  lying += "short";
  EXPECT_THROW((void)wire::decode_value(lying), wire::WireError);
}

TEST(WireCodec, VarintEdgeCases) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{1} << 32, std::numeric_limits<std::uint64_t>::max()}) {
    std::string out;
    wire::put_varint(out, v);
    std::size_t pos = 0;
    EXPECT_EQ(wire::get_varint(out, pos), v);
    EXPECT_EQ(pos, out.size());
  }
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    std::string out;
    wire::put_zigzag(out, v);
    std::size_t pos = 0;
    EXPECT_EQ(wire::get_zigzag(out, pos), v);
  }
  // Truncated varint (continuation bit set on the last byte).
  const std::string truncated(1, '\x80');
  std::size_t pos = 0;
  EXPECT_THROW((void)wire::get_varint(truncated, pos), wire::WireError);
}

TEST(WireCodec, LooksBinarySniffing) {
  EXPECT_TRUE(wire::looks_binary(wire::encode_value(Value(nullptr))));
  EXPECT_TRUE(wire::looks_binary(wire::encode_value(Value("text"))));
  Object o;
  o["k"] = 1;
  EXPECT_TRUE(wire::looks_binary(wire::encode_value(Value(std::move(o)))));
  EXPECT_FALSE(wire::looks_binary("{\"k\": 1}"));
  EXPECT_FALSE(wire::looks_binary("  [1, 2]"));
  EXPECT_FALSE(wire::looks_binary("123"));
  EXPECT_FALSE(wire::looks_binary("\"str\""));
  EXPECT_FALSE(wire::looks_binary(""));
}

TEST(WireCodec, FrameRoundTripAndTruncation) {
  std::string stream;
  wire::put_frame(stream, "first payload");
  wire::put_frame(stream, "");
  wire::put_frame(stream, "third");
  std::size_t pos = 0;
  EXPECT_EQ(wire::get_frame(stream, pos), "first payload");
  EXPECT_EQ(wire::get_frame(stream, pos), "");
  EXPECT_EQ(wire::get_frame(stream, pos), "third");
  EXPECT_EQ(pos, stream.size());
  // Truncated header: fewer than 4 length bytes available.
  std::size_t p = 0;
  EXPECT_THROW((void)wire::get_frame(stream.substr(0, 2), p), wire::WireError);
  // Truncated payload: header present but the last byte is missing.
  p = 0;
  const std::string partial = stream.substr(0, stream.size() - 1);
  EXPECT_EQ(wire::get_frame(partial, p), "first payload");
  EXPECT_EQ(wire::get_frame(partial, p), "");
  EXPECT_THROW((void)wire::get_frame(partial, p), wire::WireError);
}

}  // namespace
