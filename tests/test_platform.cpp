// Unit tests for the platform models: topology, network (cold connections,
// NIC contention, hop costs), and the Lustre-like PFS (striping, stragglers,
// queueing).
#include <gtest/gtest.h>

#include "platform/network.hpp"
#include "platform/pfs.hpp"
#include "platform/sysinfo.hpp"
#include "platform/topology.hpp"

namespace recup::platform {
namespace {

TEST(Topology, PolarisLikeShape) {
  const Topology topo = make_polaris_like(4, 2);
  EXPECT_EQ(topo.node_count(), 4u);
  EXPECT_TRUE(topo.same_switch(0, 1));
  EXPECT_FALSE(topo.same_switch(1, 2));
  EXPECT_EQ(topo.hops(0, 0), 0);
  EXPECT_EQ(topo.hops(0, 1), 1);
  EXPECT_EQ(topo.hops(0, 2), 2);
}

TEST(Topology, HostnamesUniqueAndJsonComplete) {
  const Topology topo = make_polaris_like(6, 2);
  std::set<std::string> names;
  for (const auto& node : topo.nodes()) names.insert(node.hostname);
  EXPECT_EQ(names.size(), 6u);
  const auto j = topo.to_json();
  EXPECT_EQ(j.at("nodes").size(), 6u);
  EXPECT_EQ(j.at("nodes").at(0).at("cpu_model").as_string(),
            "AMD EPYC Milan 7543P");
}

TEST(Topology, RejectsBadIds) {
  std::vector<NodeSpec> nodes(2);
  nodes[0].id = 0;
  nodes[1].id = 5;  // not dense
  EXPECT_THROW(Topology(std::move(nodes)), std::invalid_argument);
  EXPECT_THROW(Topology({}), std::invalid_argument);
  const Topology topo = make_polaris_like(2);
  EXPECT_THROW(topo.node(9), std::out_of_range);
}

TEST(Network, EstimateScalesWithBytesAndHops) {
  sim::Engine engine;
  const Topology topo = make_polaris_like(4, 2);
  NetworkConfig config;
  Network net(engine, topo, config, RngStream(1));
  const Duration intra = net.estimate(0, 0, 1 << 20);
  const Duration same_switch = net.estimate(0, 1, 1 << 20);
  const Duration cross_switch = net.estimate(0, 2, 1 << 20);
  EXPECT_LT(intra, same_switch);
  EXPECT_LT(same_switch, cross_switch);
  EXPECT_LT(net.estimate(0, 2, 1 << 10), net.estimate(0, 2, 1 << 24));
}

TEST(Network, FirstTransferPaysConnectionSetup) {
  sim::Engine engine;
  const Topology topo = make_polaris_like(2, 2);
  NetworkConfig config;
  config.jitter_sigma = 0.0;
  Network net(engine, topo, config, RngStream(7));
  std::vector<TransferResult> results;
  const Endpoint a{0, 1};
  const Endpoint b{1, 2};
  net.transfer(a, b, 1024, [&](const TransferResult& r) {
    results.push_back(r);
    // Second transfer on the warm connection.
    net.transfer(a, b, 1024, [&](const TransferResult& r2) {
      results.push_back(r2);
    });
  });
  engine.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].cold_connection);
  EXPECT_FALSE(results[1].cold_connection);
  const Duration cold = results[0].end - results[0].start;
  const Duration warm = results[1].end - results[1].start;
  EXPECT_GT(cold, warm * 5);  // setup dominates small transfers
  EXPECT_EQ(net.cold_connections(), 1u);
}

TEST(Network, ConnectionIsSymmetricPerPair) {
  sim::Engine engine;
  const Topology topo = make_polaris_like(2, 2);
  Network net(engine, topo, NetworkConfig{}, RngStream(7));
  const Endpoint a{0, 1};
  const Endpoint b{1, 2};
  bool second_cold = true;
  net.transfer(a, b, 10, [&](const TransferResult&) {
    net.transfer(b, a, 10, [&](const TransferResult& r) {
      second_cold = r.cold_connection;
    });
  });
  engine.run();
  EXPECT_FALSE(second_cold);  // reverse direction reuses the connection
}

TEST(Network, IntraNodeSkipsNic) {
  sim::Engine engine;
  const Topology topo = make_polaris_like(2, 2);
  NetworkConfig config;
  config.nic_capacity = 1;
  config.jitter_sigma = 0.0;
  config.connection_setup_median = 0.0001;
  Network net(engine, topo, config, RngStream(3));
  int done = 0;
  // Many concurrent intra-node transfers should not queue behind each other.
  std::vector<TimePoint> ends;
  for (int i = 0; i < 8; ++i) {
    net.transfer(Endpoint{0, 1}, Endpoint{0, 2}, 1024,
                 [&](const TransferResult& r) {
                   ++done;
                   ends.push_back(r.end);
                 });
  }
  engine.run();
  EXPECT_EQ(done, 8);
  // All complete at (nearly) the same time: no serialization.
  EXPECT_NEAR(ends.front(), ends.back(), 0.05);
}

TEST(Network, CrossNodeMarksFlag) {
  sim::Engine engine;
  const Topology topo = make_polaris_like(2, 2);
  Network net(engine, topo, NetworkConfig{}, RngStream(3));
  bool cross = false;
  bool intra = true;
  net.transfer(Endpoint{0, 1}, Endpoint{1, 2}, 10,
               [&](const TransferResult& r) { cross = r.cross_node; });
  net.transfer(Endpoint{0, 1}, Endpoint{0, 3}, 10,
               [&](const TransferResult& r) { intra = r.cross_node; });
  engine.run();
  EXPECT_TRUE(cross);
  EXPECT_FALSE(intra);
}

TEST(Pfs, IoCompletesAndCountsOps) {
  sim::Engine engine;
  PfsConfig config;
  Pfs pfs(engine, config, RngStream(5));
  int done = 0;
  pfs.io("/data/x", 0, 4 << 20, false, [&](const IoResult&) { ++done; });
  pfs.io("/data/x", 0, 1 << 20, true, [&](const IoResult&) { ++done; });
  pfs.metadata_op([&](const IoResult&) { ++done; });
  engine.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(pfs.ops_started(), 3u);
}

TEST(Pfs, LargerIoTakesLonger) {
  // Isolated instances so the two ops don't contend on shared OSTs.
  const auto timed_read = [](std::uint64_t bytes) {
    sim::Engine engine;
    PfsConfig config;
    config.read_jitter_sigma = 0.0;
    config.straggler_probability = 0.0;
    Pfs pfs(engine, config, RngStream(5));
    Duration duration = 0.0;
    pfs.io("/f", 0, bytes, false,
           [&](const IoResult& r) { duration = r.end - r.start; });
    engine.run();
    return duration;
  };
  const Duration small = timed_read(64 << 10);
  const Duration large = timed_read(64 << 20);
  EXPECT_GT(large, small * 5);
}

TEST(Pfs, StragglersOccurAtConfiguredRate) {
  sim::Engine engine;
  PfsConfig config;
  config.straggler_probability = 0.5;
  Pfs pfs(engine, config, RngStream(5));
  int stragglers = 0;
  for (int i = 0; i < 200; ++i) {
    pfs.io("/f" + std::to_string(i), 0, 1024, false,
           [&](const IoResult& r) {
             if (r.straggler) ++stragglers;
           });
  }
  engine.run();
  EXPECT_GT(stragglers, 50);
  EXPECT_LT(stragglers, 150);
  EXPECT_GT(pfs.straggler_ops(), 0u);
}

TEST(Pfs, ZeroLengthIoCompletes) {
  sim::Engine engine;
  Pfs pfs(engine, PfsConfig{}, RngStream(5));
  bool done = false;
  pfs.io("/empty", 0, 0, false, [&](const IoResult&) { done = true; });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(Pfs, ContentionQueuesOnOsts) {
  sim::Engine engine;
  PfsConfig config;
  config.ost_count = 1;
  config.stripe_count = 1;
  config.ost_capacity = 1;
  config.read_jitter_sigma = 0.0;
  config.straggler_probability = 0.0;
  Pfs pfs(engine, config, RngStream(5));
  std::vector<Duration> spans;
  for (int i = 0; i < 4; ++i) {
    pfs.io("/same", 0, 16 << 20, false, [&](const IoResult& r) {
      spans.push_back(r.end);
    });
  }
  engine.run();
  ASSERT_EQ(spans.size(), 4u);
  // Strictly serialized on the single OST.
  EXPECT_GT(spans[3], spans[0] * 3);
  EXPECT_GT(pfs.total_queue_delay(), 0.0);
}

TEST(Pfs, RejectsInvalidConfig) {
  sim::Engine engine;
  PfsConfig config;
  config.ost_count = 0;
  EXPECT_THROW(Pfs(engine, config, RngStream(1)), std::invalid_argument);
}

TEST(Sysinfo, JsonShapes) {
  const SoftwareEnvironment sw;
  const auto sw_json = sw.to_json();
  EXPECT_TRUE(sw_json.contains("packages"));
  EXPECT_EQ(sw_json.at("packages").at("dask").as_string(), "2024.4.1");

  JobConfiguration job;
  EXPECT_EQ(job.total_workers(), 8u);
  EXPECT_EQ(job.to_json().at("threads_per_worker").as_int(), 8);

  const WmsConfiguration wms;
  EXPECT_DOUBLE_EQ(
      wms.to_json().at("event_loop_warn_threshold_s").as_double(), 3.0);
}

}  // namespace
}  // namespace recup::platform
