// Provenance tests: layered chart assembly, Figure-8 task lineage, FAIR
// store identifier lookups.
#include <gtest/gtest.h>

#include "dtr/cluster.hpp"
#include "prov/chart.hpp"
#include "prov/lineage.hpp"
#include "prov/store.hpp"

namespace recup::prov {
namespace {

dtr::RunData make_run(std::uint64_t seed = 11, std::uint32_t index = 0) {
  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = seed;
  dtr::Cluster cluster(config);
  cluster.vfs().register_file("/data/input", 16ULL << 20);

  dtr::TaskGraph g1("graph-one");
  for (int i = 0; i < 8; ++i) {
    dtr::TaskSpec t;
    t.key = {"load-abc123", i};
    t.work.compute = 0.02;
    t.work.output_bytes = 2 << 20;
    t.work.reads.push_back({"/data/input",
                            static_cast<std::uint64_t>(i) * (2 << 20),
                            2 << 20, false});
    g1.add_task(t);
  }
  dtr::TaskGraph g2("graph-two");
  for (int i = 0; i < 8; ++i) {
    dtr::TaskSpec t;
    t.key = {"getitem-24266c", i};
    t.dependencies.push_back({"load-abc123", i});
    t.dependencies.push_back({"load-abc123", (i + 1) % 8});
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 20;
    g2.add_task(t);
  }
  std::vector<dtr::TaskGraph> graphs;
  graphs.push_back(std::move(g1));
  graphs.push_back(std::move(g2));
  return cluster.run(std::move(graphs), "prov-test", index);
}

TEST(Chart, ThreeLayersPresent) {
  const dtr::RunData run = make_run();
  const json::Value chart = provenance_chart(run);
  EXPECT_TRUE(chart.contains("hardware_infrastructure"));
  EXPECT_TRUE(chart.contains("system_software_and_job"));
  EXPECT_TRUE(chart.contains("application"));
  const auto& app = chart.at("application");
  EXPECT_EQ(app.at("wms").at("tasks").as_int(), 16);
  EXPECT_EQ(app.at("wms").at("task_graphs").as_int(), 2);
  EXPECT_GT(app.at("profiler").at("dxt_segments").as_int(), 0);
  const auto& system = chart.at("system_software_and_job");
  EXPECT_TRUE(system.contains("job_configuration"));
  EXPECT_TRUE(system.contains("wms_configuration"));
  const std::string rendered = render_chart(chart);
  EXPECT_NE(rendered.find("application"), std::string::npos);
}

TEST(Lineage, FullSummaryForExecutedTask) {
  const dtr::RunData run = make_run();
  const dtr::TaskKey key{"getitem-24266c", 3};
  const auto lineage = task_lineage(run, key);
  ASSERT_TRUE(lineage.has_value());
  EXPECT_EQ(lineage->at("key").as_string(), "('getitem-24266c', 3)");
  EXPECT_EQ(lineage->at("prefix").as_string(), "getitem");
  EXPECT_EQ(lineage->at("graph").as_string(), "graph-two");

  // Dependencies resolved with status and holder.
  const auto& deps = lineage->at("dependencies").as_array();
  ASSERT_EQ(deps.size(), 2u);
  for (const auto& dep : deps) {
    EXPECT_EQ(dep.at("status").as_string(), "memory");
    EXPECT_FALSE(dep.at("worker").as_string().empty());
  }

  // States captured in chronological order, ending in-memory/memory.
  const auto& states = lineage->at("states").as_array();
  EXPECT_GE(states.size(), 4u);
  double prev = -1.0;
  for (const auto& s : states) {
    EXPECT_GE(s.at("time").as_double(), prev);
    prev = s.at("time").as_double();
    EXPECT_FALSE(s.at("location").as_string().empty());
  }

  // Execution summary fields.
  const auto& exec = lineage->at("execution");
  EXPECT_GT(exec.at("end").as_double(), exec.at("start").as_double());
  EXPECT_GT(exec.at("thread_id").as_int(), 0);

  EXPECT_GE(lineage->at("data_locations").size(), 1u);
  const std::string rendered = render_lineage(*lineage);
  EXPECT_NE(rendered.find("getitem"), std::string::npos);
}

TEST(Lineage, IoRecordsAttributedToReadingTask) {
  const dtr::RunData run = make_run();
  const dtr::TaskKey key{"load-abc123", 2};
  const auto lineage = task_lineage(run, key);
  ASSERT_TRUE(lineage.has_value());
  const auto& io = lineage->at("io_records").as_array();
  ASSERT_GE(io.size(), 1u);
  for (const auto& rec : io) {
    EXPECT_EQ(rec.at("file").as_string(), "/data/input");
    EXPECT_EQ(rec.at("type").as_string(), "read");
    EXPECT_EQ(rec.at("size").as_int(), 2 << 20);
    EXPECT_TRUE(rec.contains("offset"));
    EXPECT_TRUE(rec.contains("pfs"));
  }
}

TEST(Lineage, UnknownTaskReturnsNullopt) {
  const dtr::RunData run = make_run();
  EXPECT_FALSE(task_lineage(run, {"nonexistent-000000", 0}).has_value());
}

TEST(Lineage, DataMovementsMatchComms) {
  const dtr::RunData run = make_run();
  // Pick a task whose output was transferred at least once, if any.
  for (const auto& comm : run.comms) {
    const auto lineage = task_lineage(run, comm.key);
    if (!lineage) continue;  // dependency from within same graph only
    const auto& movements = lineage->at("data_movements").as_array();
    std::size_t expected = 0;
    for (const auto& c : run.comms) {
      if (c.key == comm.key) ++expected;
    }
    EXPECT_EQ(movements.size(), expected);
    // Replicas: locations = producer + destinations.
    EXPECT_EQ(lineage->at("data_locations").size(), 1 + expected);
    break;
  }
}

TEST(Store, AddLookupRuns) {
  ProvenanceStore store;
  store.add_run(make_run(11, 0));
  store.add_run(make_run(12, 1));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.runs().size(), 2u);
  EXPECT_EQ(store.runs_of("prov-test").size(), 2u);
  EXPECT_EQ(store.runs_of("other").size(), 0u);
  EXPECT_THROW(store.run({"missing", 9}), std::out_of_range);
  EXPECT_THROW(store.add_run(make_run(13, 0)), std::invalid_argument);
}

TEST(Store, IdentifierLookups) {
  ProvenanceStore store;
  store.add_run(make_run(11, 0));
  const RunId id{"prov-test", 0};
  const auto& run = store.run(id);

  // By key across runs of the workflow.
  const auto by_key = store.find_task("prov-test",
                                      {"load-abc123", 0});
  EXPECT_EQ(by_key.size(), 1u);

  // By thread id (pthread identifier).
  const auto& sample = run.tasks.front();
  const auto on_thread = store.tasks_on_thread(id, sample.thread_id);
  EXPECT_GE(on_thread.size(), 1u);
  for (const auto* t : on_thread) {
    EXPECT_EQ(t->thread_id, sample.thread_id);
  }

  // By timestamp.
  const double mid = (sample.start_time + sample.end_time) / 2.0;
  const auto at_time = store.tasks_at(id, mid);
  bool found = false;
  for (const auto* t : at_time) {
    if (t->key == sample.key) found = true;
  }
  EXPECT_TRUE(found);

  // By worker address.
  const auto on_worker = store.tasks_on_worker(id, sample.worker_address);
  EXPECT_GE(on_worker.size(), 1u);
}

}  // namespace
}  // namespace recup::prov
