// Query service tests: IR parsing/validation, planner explain output,
// predicate masks, catalog epochs, the result cache, wire framing, the
// concurrent server (backpressure, deadlines, drain-on-shutdown), live
// ingestion from Mofka topics, and a multi-threaded smoke test with clients
// querying while runs are being ingested.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dtr/mofka_plugins.hpp"
#include "mochi/bedrock.hpp"
#include "mofka/broker.hpp"
#include "mofka/producer.hpp"
#include "query/cache.hpp"
#include "query/catalog.hpp"
#include "query/client.hpp"
#include "query/ingest.hpp"
#include "query/ir.hpp"
#include "query/plan.hpp"
#include "query/server.hpp"
#include "query/wire.hpp"

namespace recup::query {
namespace {

using analysis::Column;
using analysis::ColumnType;
using analysis::DataFrame;

/// Synthetic run with deterministic records: `n` tasks alternating between
/// two prefixes on two workers, a transition pair per task, one comm per
/// even task, and one warning.
dtr::RunData make_run(const std::string& workflow, std::uint32_t index,
                      int n = 8) {
  dtr::RunData run;
  run.meta.workflow = workflow;
  run.meta.run_index = index;
  for (int i = 0; i < n; ++i) {
    dtr::TaskRecord t;
    t.key = {"job-" + workflow, i};
    t.graph = "g0";
    t.prefix = (i % 2 == 0) ? "ingest" : "train";
    t.worker = static_cast<dtr::WorkerId>(i % 2);
    t.worker_address = "tcp://10.0.0." + std::to_string(i % 2);
    t.thread_id = 100 + static_cast<std::uint64_t>(i);
    t.start_time = 1.0 * i;
    t.end_time = 1.0 * i + 0.5 + 0.1 * (i % 2);
    t.compute_time = 0.4;
    t.output_bytes = 1024u * static_cast<std::uint64_t>(i + 1);
    run.tasks.push_back(t);

    dtr::TransitionRecord tr;
    tr.key = t.key;
    tr.graph = "g0";
    tr.from_state = "processing";
    tr.to_state = "memory";
    tr.stimulus = "task-finished";
    tr.location = t.worker_address;
    tr.time = t.end_time;
    run.transitions.push_back(tr);
    tr.from_state = "released";
    tr.to_state = "processing";
    tr.stimulus = "compute-task";
    tr.time = t.start_time;
    run.transitions.push_back(tr);

    if (i % 2 == 0) {
      dtr::CommRecord c;
      c.key = t.key;
      c.source = 0;
      c.destination = 1;
      c.bytes = 4096;
      c.start = t.end_time;
      c.end = t.end_time + 0.01;
      run.comms.push_back(c);
    }
  }
  dtr::WarningRecord w;
  w.kind = "gc_collection";
  w.location = "scheduler";
  w.time = 0.5;
  w.blocked_for = 0.2;
  run.warnings.push_back(w);
  return run;
}

// ---------------------------------------------------------------------------
// IR parsing and canonical form

TEST(QueryIr, ParsesFullGrammar) {
  const Query q = parse_query(std::string(R"({
    "from": "tasks",
    "workflow": "XGBOOST",
    "run": 3,
    "where": [{"col": "duration", "op": ">", "value": 0.5},
              {"col": "prefix", "op": "contains", "value": "read"}],
    "group_by": ["prefix"],
    "aggregates": [{"col": "duration", "op": "mean", "as": "mean_d"},
                   {"col": "key", "op": "count_distinct", "as": "n"}],
    "order_by": {"col": "mean_d", "desc": true},
    "limit": 10,
    "select": ["prefix", "mean_d", "n"]
  })"));
  EXPECT_EQ(q.from, "tasks");
  ASSERT_TRUE(q.workflow.has_value());
  EXPECT_EQ(*q.workflow, "XGBOOST");
  ASSERT_TRUE(q.run.has_value());
  EXPECT_EQ(*q.run, 3);
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[0].op, CmpOp::kGt);
  EXPECT_EQ(q.where[1].op, CmpOp::kContains);
  ASSERT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.aggregates[1].op, analysis::Agg::kCountDistinct);
  ASSERT_TRUE(q.order_by.has_value());
  EXPECT_TRUE(q.order_by->descending);
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 10);
}

TEST(QueryIr, RejectsMalformedDocuments) {
  // Not an object / missing from.
  EXPECT_THROW(parse_query(std::string("[1,2]")), QueryError);
  EXPECT_THROW(parse_query(std::string(R"({"where": []})")), QueryError);
  // Unknown fields are rejected, not ignored.
  EXPECT_THROW(parse_query(std::string(R"({"from": "tasks", "havign": 1})")),
               QueryError);
  // Bad operator names.
  EXPECT_THROW(parse_query(std::string(
                   R"({"from": "tasks",
                       "where": [{"col": "x", "op": "===", "value": 1}]})")),
               QueryError);
  // contains needs a string value.
  EXPECT_THROW(
      parse_query(std::string(
          R"({"from": "tasks",
              "where": [{"col": "x", "op": "contains", "value": 3}]})")),
      QueryError);
  // group_by and aggregates must be used together.
  EXPECT_THROW(parse_query(std::string(
                   R"({"from": "tasks", "group_by": ["prefix"]})")),
               QueryError);
  EXPECT_THROW(
      parse_query(std::string(
          R"({"from": "tasks",
              "aggregates": [{"col": "x", "op": "sum", "as": "s"}]})")),
      QueryError);
  // Malformed asof by-pair.
  EXPECT_THROW(
      parse_query(std::string(
          R"({"from": "tasks",
              "asof_join": {"right": "comms", "left_on": "a",
                            "right_on": "b", "by": [["only_left"]]}})")),
      QueryError);
  // Negative limit / run.
  EXPECT_THROW(parse_query(std::string(R"({"from": "tasks", "limit": -1})")),
               QueryError);
  EXPECT_THROW(parse_query(std::string(R"({"from": "tasks", "run": -2})")),
               QueryError);
}

TEST(QueryIr, FingerprintIsCanonical) {
  // Same query, different JSON field order -> same fingerprint.
  const Query a = parse_query(std::string(
      R"({"from": "tasks", "limit": 5,
          "where": [{"col": "duration", "op": ">", "value": 0.5}]})"));
  const Query b = parse_query(std::string(
      R"({"where": [{"value": 0.5, "col": "duration", "op": ">"}],
          "limit": 5, "from": "tasks"})"));
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  // Round trip through the canonical form is stable.
  EXPECT_EQ(fingerprint(parse_query(to_json(a))), fingerprint(a));
  // Different query -> different fingerprint.
  const Query c = parse_query(std::string(R"({"from": "tasks", "limit": 6})"));
  EXPECT_NE(fingerprint(a), fingerprint(c));
}

// ---------------------------------------------------------------------------
// Predicate evaluation

TEST(QueryPlan, TypedPredicateMasks) {
  DataFrame df({{"name", ColumnType::kString},
                {"count", ColumnType::kInt64},
                {"score", ColumnType::kDouble}});
  df.add_row({"read_parquet", std::int64_t{1}, 0.5});
  df.add_row({"train_model", std::int64_t{2}, 1.5});
  df.add_row({"read_csv", std::int64_t{3}, 2.5});

  const auto rows = [](const DataFrame& f) { return f.rows(); };
  EXPECT_EQ(rows(apply_predicates(
                df, {{"name", CmpOp::kContains, std::string("read")}})),
            2u);
  EXPECT_EQ(rows(apply_predicates(df, {{"count", CmpOp::kGe,
                                        std::int64_t{2}}})),
            2u);
  // Double literal against an int column widens the column.
  EXPECT_EQ(rows(apply_predicates(df, {{"count", CmpOp::kGt, 1.5}})), 2u);
  EXPECT_EQ(rows(apply_predicates(df, {{"score", CmpOp::kLt, 2.0},
                                       {"name", CmpOp::kNe,
                                        std::string("train_model")}})),
            1u);
  EXPECT_THROW(
      apply_predicates(df, {{"missing", CmpOp::kEq, std::int64_t{1}}}),
      QueryError);
  EXPECT_THROW(
      apply_predicates(df, {{"count", CmpOp::kContains, std::string("1")}}),
      QueryError);
}

// ---------------------------------------------------------------------------
// Catalog

TEST(QueryCatalog, EpochAndVisibility) {
  StoreCatalog catalog;
  EXPECT_EQ(catalog.snapshot().epoch(), 0u);
  catalog.add_run(make_run("A", 0));
  catalog.add_run(make_run("A", 1));
  catalog.add_run(make_run("B", 0));
  EXPECT_EQ(catalog.snapshot().epoch(), 3u);

  const StoreCatalog::Snapshot snap = catalog.snapshot();
  EXPECT_EQ(snap.runs(std::nullopt, std::nullopt).size(), 3u);
  EXPECT_EQ(snap.runs(std::string("A"), std::nullopt).size(), 2u);
  EXPECT_EQ(snap.runs(std::string("A"), std::int64_t{1}).size(), 1u);
  EXPECT_TRUE(snap.runs(std::string("C"), std::nullopt).empty());

  const auto frame = snap.frame(ViewId::kTasks, {"A", 1});
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->rows(), 8u);
  EXPECT_EQ(frame->col("workflow").str(0), "A");
  EXPECT_EQ(frame->col("run").i64(0), 1);
  EXPECT_EQ(snap.estimated_rows(ViewId::kTransitions, {"A", 1}), 16u);
  // Memoized: the same frame object comes back.
  EXPECT_EQ(frame.get(), snap.frame(ViewId::kTasks, {"A", 1}).get());
}

TEST(QueryCatalog, ViewRegistry) {
  EXPECT_EQ(view_from_name("task_io"), ViewId::kTaskIo);
  EXPECT_THROW(view_from_name("tasksz"), QueryError);
  const DataFrame schema = empty_view_frame(ViewId::kTasks);
  EXPECT_EQ(schema.rows(), 0u);
  EXPECT_TRUE(schema.has_column("duration"));
  EXPECT_TRUE(schema.has_column("workflow"));
  EXPECT_TRUE(schema.has_column("run"));
}

// ---------------------------------------------------------------------------
// Planner

TEST(QueryPlan, ExplainShowsPushdownAndSteps) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  catalog.add_run(make_run("A", 1));
  catalog.add_run(make_run("B", 0));
  const Query q = parse_query(std::string(R"({
    "from": "tasks", "workflow": "A",
    "where": [{"col": "run", "op": "==", "value": 1},
              {"col": "duration", "op": ">", "value": 0.2}],
    "group_by": ["prefix"],
    "aggregates": [{"col": "duration", "op": "mean", "as": "mean_d"}],
    "order_by": {"col": "mean_d", "desc": true},
    "limit": 5,
    "select": ["prefix", "mean_d"]
  })"));
  const StoreCatalog::Snapshot snap = catalog.snapshot();
  const Plan plan = plan_query(q, snap);
  EXPECT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.total_runs, 3u);
  const std::string text = plan.to_string();
  EXPECT_NE(text.find("plan: tasks over 1/3 runs"), std::string::npos) << text;
  EXPECT_NE(text.find("pushdown: workflow == 'A' run == 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("filter: duration > 0.2"), std::string::npos) << text;
  EXPECT_NE(text.find("group_by: keys=[prefix]"), std::string::npos) << text;
  EXPECT_NE(text.find("sort: mean_d desc"), std::string::npos) << text;
  EXPECT_NE(text.find("limit: 5"), std::string::npos) << text;
  EXPECT_NE(text.find("project: [prefix, mean_d]"), std::string::npos) << text;

  // Contradictory pushdown prunes every run.
  const Query contradiction = parse_query(std::string(
      R"({"from": "tasks", "workflow": "A",
          "where": [{"col": "workflow", "op": "==", "value": "B"}]})"));
  const Plan empty = plan_query(contradiction, snap);
  EXPECT_TRUE(empty.runs.empty());
  EXPECT_NE(empty.to_string().find("contradictory"), std::string::npos);
}

TEST(QueryPlan, ValidationErrors) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  const StoreCatalog::Snapshot snap = catalog.snapshot();
  const auto plan_text = [&](const std::string& text) {
    return plan_query(parse_query(text), snap);
  };
  EXPECT_THROW(plan_text(R"({"from": "nope"})"), QueryError);
  EXPECT_THROW(plan_text(R"({"from": "tasks",
      "where": [{"col": "nope", "op": "==", "value": 1}]})"),
               QueryError);
  // String column with a numeric literal.
  EXPECT_THROW(plan_text(R"({"from": "tasks",
      "where": [{"col": "prefix", "op": "==", "value": 1}]})"),
               QueryError);
  EXPECT_THROW(plan_text(R"({"from": "tasks", "group_by": ["nope"],
      "aggregates": [{"col": "duration", "op": "sum", "as": "s"}]})"),
               QueryError);
  // asof left_on must be numeric.
  EXPECT_THROW(plan_text(R"({"from": "tasks",
      "asof_join": {"right": "comms", "left_on": "prefix",
                    "right_on": "start"}})"),
               QueryError);
}

// ---------------------------------------------------------------------------
// Execution

TEST(QueryExec, GroupByAggregatesMatchRecords) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  catalog.add_run(make_run("A", 1));
  const ExecutionResult result = execute_query(
      parse_query(std::string(R"({
        "from": "tasks", "workflow": "A",
        "group_by": ["prefix"],
        "aggregates": [{"col": "key", "op": "count", "as": "n"},
                       {"col": "key", "op": "count_distinct", "as": "uniq"},
                       {"col": "duration", "op": "mean", "as": "mean_d"}],
        "order_by": {"col": "prefix"}
      })")),
      catalog, nullptr);
  const DataFrame& df = *result.frame;
  ASSERT_EQ(df.rows(), 2u);
  EXPECT_EQ(df.col("prefix").str(0), "ingest");
  // 4 even tasks per run, 2 runs.
  EXPECT_EQ(df.col("n").i64(0), 8);
  // Task keys repeat across the two runs of workflow A.
  EXPECT_EQ(df.col("uniq").i64(0), 4);
  EXPECT_NEAR(df.col("mean_d").f64(0), 0.5, 1e-9);
  EXPECT_EQ(df.col("prefix").str(1), "train");
  EXPECT_NEAR(df.col("mean_d").f64(1), 0.6, 1e-9);
  EXPECT_EQ(result.epoch, 2u);
  EXPECT_FALSE(result.cached);
}

TEST(QueryExec, AsofJoinAttachesNearestEarlierRow) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0, 4));
  // For each comm (starting at task end), the nearest earlier task start on
  // the same key is that task itself.
  const ExecutionResult result = execute_query(
      parse_query(std::string(R"({
        "from": "comms",
        "asof_join": {"right": "tasks", "left_on": "start",
                      "right_on": "start_time", "by": [["key", "key"]]},
        "order_by": {"col": "start"}
      })")),
      catalog, nullptr);
  const DataFrame& df = *result.frame;
  ASSERT_EQ(df.rows(), 2u);  // comms exist for even tasks only
  ASSERT_TRUE(df.has_column("prefix"));
  EXPECT_EQ(df.col("prefix").str(0), "ingest");
  EXPECT_DOUBLE_EQ(df.col("start_time").f64(0), 0.0);
  EXPECT_DOUBLE_EQ(df.col("start_time").f64(1), 2.0);
}

TEST(QueryExec, EmptyStoreYieldsSchemaOnlyFrame) {
  StoreCatalog catalog;
  const ExecutionResult result = execute_query(
      parse_query(std::string(R"({"from": "warnings"})")), catalog, nullptr);
  EXPECT_EQ(result.frame->rows(), 0u);
  EXPECT_TRUE(result.frame->has_column("kind"));
  EXPECT_EQ(result.epoch, 0u);
}

// ---------------------------------------------------------------------------
// Result cache

TEST(QueryCache, HitRefreshAndEpochSeparation) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  const StoreCatalog::Snapshot snap1 = catalog.snapshot();
  catalog.add_run(make_run("A", 1));
  const StoreCatalog::Snapshot snap2 = catalog.snapshot();
  ResultCache cache;
  auto frame = std::make_shared<const DataFrame>(
      DataFrame({{"x", ColumnType::kInt64}}));
  cache.put("q1", snap1, frame);
  EXPECT_EQ(cache.get("q1", snap1).get(), frame.get());
  // Another snapshot is another key.
  EXPECT_EQ(cache.get("q1", snap2), nullptr);
  EXPECT_EQ(cache.get("q2", snap1), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCache, ByteBudgetEvictsLru) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  const StoreCatalog::Snapshot snap = catalog.snapshot();
  ResultCache::Config config;
  config.shards = 1;
  DataFrame big({{"x", ColumnType::kInt64}});
  for (int i = 0; i < 100; ++i) big.add_row({std::int64_t{i}});
  const std::size_t entry = approx_frame_bytes(big);
  config.byte_budget = entry * 3 + entry / 2;  // room for three entries
  ResultCache cache(config);
  for (int i = 0; i < 4; ++i) {
    cache.put("q" + std::to_string(i), snap,
              std::make_shared<const DataFrame>(big));
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  // q0 was least recently used.
  EXPECT_EQ(cache.get("q0", snap), nullptr);
  EXPECT_NE(cache.get("q3", snap), nullptr);
  EXPECT_LE(cache.stats().bytes, config.byte_budget);
}

// ---------------------------------------------------------------------------
// Wire framing

TEST(QueryWire, FrameRoundTrip) {
  DataFrame df({{"name", ColumnType::kString},
                {"count", ColumnType::kInt64},
                {"score", ColumnType::kDouble}});
  df.add_row({"a", std::int64_t{1}, 0.25});
  df.add_row({"b", std::int64_t{-7}, 1e9});
  const DataFrame back = frame_from_json(frame_to_json(df));
  ASSERT_EQ(back.rows(), 2u);
  ASSERT_EQ(back.width(), 3u);
  EXPECT_EQ(back.col("count").type(), ColumnType::kInt64);
  EXPECT_EQ(back.col("name").str(1), "b");
  EXPECT_EQ(back.col("count").i64(1), -7);
  EXPECT_DOUBLE_EQ(back.col("score").f64(1), 1e9);
  EXPECT_THROW(frame_from_json(json::parse("[]")), QueryError);
}

TEST(QueryWire, BinaryFrameRoundTrip) {
  DataFrame df({{"name", ColumnType::kString},
                {"count", ColumnType::kInt64},
                {"score", ColumnType::kDouble}});
  df.add_row({"alpha", std::int64_t{1}, 0.25});
  df.add_row({"beta", std::int64_t{-7}, 1e9});
  df.add_row({"alpha", std::int64_t{1} << 40, -0.0});
  const std::string bytes = frame_to_binary(df);
  const DataFrame back = frame_from_binary(bytes);
  ASSERT_EQ(back.rows(), 3u);
  ASSERT_EQ(back.width(), 3u);
  EXPECT_EQ(back.col("name").str(0), "alpha");
  EXPECT_EQ(back.col("name").str(2), "alpha");
  EXPECT_EQ(back.col("count").i64(2), std::int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(back.col("score").f64(1), 1e9);
  // Repeated strings ship once (dictionary), so binary beats the JSON text.
  EXPECT_LT(bytes.size(), frame_to_json(df).dump().size());
  // Zero-row frames keep their schema.
  DataFrame empty({{"only", ColumnType::kDouble}});
  const DataFrame empty_back = frame_from_binary(frame_to_binary(empty));
  EXPECT_EQ(empty_back.rows(), 0u);
  EXPECT_EQ(empty_back.width(), 1u);
  EXPECT_EQ(empty_back.col("only").type(), ColumnType::kDouble);
}

TEST(QueryWire, BinaryFrameRejectsCorruptInput) {
  DataFrame df({{"k", ColumnType::kString}, {"v", ColumnType::kInt64}});
  df.add_row({"x", std::int64_t{5}});
  const std::string bytes = frame_to_binary(df);
  // Every truncation fails loudly rather than yielding a partial frame.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW((void)frame_from_binary(bytes.substr(0, cut)), QueryError)
        << "prefix " << cut;
  }
  // Trailing garbage is rejected too.
  EXPECT_THROW((void)frame_from_binary(bytes + "!"), QueryError);
  EXPECT_THROW((void)frame_from_binary("not a frame"), QueryError);
}

TEST(QueryWire, FromDictValidatesCodes) {
  const Column col = Column::from_dict("states", {"DONE", "FAILED"},
                                       {0, 1, 1, 0});
  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col.str(2), "FAILED");
  EXPECT_THROW((void)Column::from_dict("bad", {"only"}, {0, 1}),
               analysis::DataFrameError);
}

// ---------------------------------------------------------------------------
// Server + client

TEST(QueryServer, ExecutesAndCachesWithEpochTags) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  QueryServer server(catalog);
  QueryClient client(server);

  const std::string q =
      R"({"from": "tasks", "group_by": ["prefix"],
          "aggregates": [{"col": "duration", "op": "mean", "as": "m"}],
          "order_by": {"col": "prefix"}})";
  const QueryResponse first = client.query(q);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_FALSE(first.cached);
  ASSERT_EQ(first.frame.rows(), 2u);

  const QueryResponse second = client.query(q);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.epoch, 1u);

  // Ingesting a run bumps the epoch and invalidates the cached entry.
  catalog.add_run(make_run("A", 1));
  const QueryResponse third = client.query(q);
  ASSERT_TRUE(third.ok);
  EXPECT_FALSE(third.cached);
  EXPECT_EQ(third.epoch, 2u);

  const QueryResponse plan = client.explain(parse_query(q));
  ASSERT_TRUE(plan.ok);
  EXPECT_NE(plan.explain.find("plan: tasks"), std::string::npos);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

TEST(QueryServer, NegotiatesBinaryResultsAndFallsBackToJson) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  QueryServer server(catalog);

  json::Object request;
  request["id"] = 1;
  request["query"] = json::parse(
      R"({"from": "tasks", "group_by": ["prefix"],
          "aggregates": [{"col": "duration", "op": "mean", "as": "m"}],
          "order_by": {"col": "prefix"}})");
  // Default (no "accept") stays on the JSON result for old clients.
  const json::Value json_response =
      server.submit(json::Value(json::Object(request))).get();
  ASSERT_TRUE(json_response.get_bool("ok", false)) << json_response.dump();
  EXPECT_TRUE(json_response.contains("result"));
  EXPECT_FALSE(json_response.contains("result_bin"));

  // "accept": "binary" switches the payload to the columnar frame.
  request["id"] = 2;
  request["accept"] = std::string("binary");
  const json::Value bin_response =
      server.submit(json::Value(std::move(request))).get();
  ASSERT_TRUE(bin_response.get_bool("ok", false)) << bin_response.dump();
  EXPECT_FALSE(bin_response.contains("result"));
  ASSERT_TRUE(bin_response.contains("result_bin"));
  const DataFrame via_binary =
      frame_from_binary(bin_response.at("result_bin").as_string());
  const DataFrame via_json = frame_from_json(json_response.at("result"));
  ASSERT_EQ(via_binary.rows(), via_json.rows());
  ASSERT_EQ(via_binary.width(), via_json.width());
  for (std::size_t r = 0; r < via_binary.rows(); ++r) {
    EXPECT_EQ(via_binary.col("prefix").str(r), via_json.col("prefix").str(r));
    EXPECT_DOUBLE_EQ(via_binary.col("m").f64(r), via_json.col("m").f64(r));
  }
}

TEST(QueryServer, ErrorsComeBackAsResponses) {
  StoreCatalog catalog;
  QueryServer server(catalog);
  QueryClient client(server);

  const QueryResponse bad = client.query(json::parse(R"({"from": "nope"})"));
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("nope"), std::string::npos);

  // A request without a query field is an error, not a crash.
  json::Object raw;
  raw["id"] = 42;
  const json::Value response = server.submit(json::Value(raw)).get();
  EXPECT_FALSE(response.get_bool("ok", true));
  EXPECT_EQ(response.get_int("id", 0), 42);
  EXPECT_TRUE(response.contains("epoch"));
  EXPECT_GE(server.stats().failed, 2u);
}

TEST(QueryServer, BackpressureRejectsWhenQueueIsFull) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0, 512));
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.cache.byte_budget = 0;  // force every query to execute
  QueryServer server(catalog, config);

  const json::Value query = json::parse(
      R"({"from": "transitions", "group_by": ["key"],
          "aggregates": [{"col": "time", "op": "max", "as": "t"}]})");
  std::vector<std::future<json::Value>> futures;
  for (int i = 0; i < 64; ++i) {
    json::Object request;
    request["id"] = i;
    request["query"] = query;
    futures.push_back(server.submit(json::Value(std::move(request))));
  }
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  for (auto& f : futures) {
    const json::Value response = f.get();
    if (response.get_bool("ok", false)) {
      ++ok;
    } else {
      EXPECT_NE(response.get_string("error", "").find("overloaded"),
                std::string::npos);
      ++overloaded;
    }
    EXPECT_TRUE(response.contains("epoch"));
  }
  EXPECT_EQ(ok + overloaded, 64u);
  EXPECT_GT(overloaded, 0u);
  EXPECT_EQ(server.stats().rejected_overload, overloaded);
}

TEST(QueryServer, QueuedRequestPastDeadlineTimesOut) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0, 512));
  ServerConfig config;
  config.workers = 1;
  config.cache.byte_budget = 0;
  QueryServer server(catalog, config);

  const json::Value heavy = json::parse(
      R"({"from": "transitions", "group_by": ["key"],
          "aggregates": [{"col": "time", "op": "max", "as": "t"}]})");
  std::vector<std::future<json::Value>> futures;
  for (int i = 0; i < 8; ++i) {
    json::Object request;
    request["query"] = heavy;
    futures.push_back(server.submit(json::Value(std::move(request))));
  }
  json::Object probe;
  probe["query"] = json::parse(R"({"from": "warnings"})");
  probe["timeout_ms"] = 0.01;  // expires while queued behind the heavy ones
  const json::Value response = server.submit(json::Value(probe)).get();
  EXPECT_FALSE(response.get_bool("ok", true));
  EXPECT_NE(response.get_string("error", "").find("deadline"),
            std::string::npos);
  EXPECT_EQ(server.stats().timed_out, 1u);
  for (auto& f : futures) f.wait();
}

TEST(QueryServer, ShutdownDrainsThenRejects) {
  StoreCatalog catalog;
  catalog.add_run(make_run("A", 0));
  QueryServer server(catalog);
  std::vector<std::future<json::Value>> futures;
  for (int i = 0; i < 16; ++i) {
    json::Object request;
    request["query"] = json::parse(R"({"from": "tasks"})");
    futures.push_back(server.submit(json::Value(std::move(request))));
  }
  server.shutdown();
  EXPECT_FALSE(server.running());
  // Every accepted request was drained, not dropped.
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().contains("ok"));
  }
  json::Object late;
  late["query"] = json::parse(R"({"from": "tasks"})");
  const json::Value response = server.submit(json::Value(late)).get();
  EXPECT_FALSE(response.get_bool("ok", true));
  EXPECT_NE(response.get_string("error", "").find("shut down"),
            std::string::npos);
  server.shutdown();  // idempotent
}

// ---------------------------------------------------------------------------
// Live ingestion

class QueryIngestTest : public ::testing::Test {
 protected:
  QueryIngestTest() : broker_(kv_, blobs_) {
    dtr::create_wms_topics(broker_);
  }

  /// Replays a run's records into the WMS topics, as the Mofka plugins
  /// would during execution.
  void produce(const dtr::RunData& run) {
    const mofka::ProducerConfig config{16, std::chrono::milliseconds(5),
                                       false};
    mofka::Producer transitions(broker_, "wms_transitions", config);
    mofka::Producer tasks(broker_, "wms_tasks", config);
    mofka::Producer comms(broker_, "wms_comms", config);
    mofka::Producer warnings(broker_, "wms_warnings", config);
    for (const auto& r : run.transitions) transitions.push(dtr::to_json(r));
    for (const auto& r : run.tasks) tasks.push(dtr::to_json(r));
    for (const auto& r : run.comms) comms.push(dtr::to_json(r));
    for (const auto& r : run.warnings) warnings.push(dtr::to_json(r));
    transitions.flush();
    tasks.flush();
    comms.flush();
    warnings.flush();
  }

  mochi::KeyValueStore kv_;
  mochi::BlobStore blobs_;
  mofka::Broker broker_;
  StoreCatalog catalog_;
};

TEST_F(QueryIngestTest, TailsTopicsAcrossRuns) {
  LiveIngestor ingestor(broker_, catalog_);
  const dtr::RunData run0 = make_run("A", 0);
  produce(run0);
  EXPECT_GT(ingestor.poll(), 0u);
  EXPECT_EQ(ingestor.pending_events(),
            run0.transitions.size() + run0.tasks.size() + run0.comms.size() +
                run0.warnings.size());
  EXPECT_EQ(ingestor.publish(run0.meta), 1u);
  EXPECT_EQ(ingestor.pending_events(), 0u);

  // The same consumer group keeps tailing: a second run's events arrive
  // after the first publish and land in the second run only.
  const dtr::RunData run1 = make_run("A", 1, 4);
  produce(run1);
  EXPECT_EQ(ingestor.publish(run1.meta), 2u);

  const StoreCatalog::Snapshot snap = catalog_.snapshot();
  EXPECT_EQ(snap.frame(ViewId::kTasks, {"A", 0})->rows(), run0.tasks.size());
  EXPECT_EQ(snap.frame(ViewId::kTasks, {"A", 1})->rows(), run1.tasks.size());
  EXPECT_EQ(snap.frame(ViewId::kWarnings, {"A", 1})->rows(),
            run1.warnings.size());
  const IngestStats stats = ingestor.stats();
  EXPECT_EQ(stats.runs_published, 2u);
  EXPECT_GT(stats.events_consumed, 0u);
}

// The headline concurrency test: >= 8 client threads issue mixed queries
// (aggregations, filters, explains, and invalid queries) against the server
// while runs are being produced, tailed by the background ingestor thread,
// and published. Run under RECUP_SANITIZE to check for races.
TEST_F(QueryIngestTest, ConcurrentClientsDuringLiveIngestion) {
  ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 256;
  QueryServer server(catalog_, config);
  LiveIngestor ingestor(broker_, catalog_);
  ingestor.start(std::chrono::milliseconds(1));

  constexpr int kRuns = 4;
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 12;

  std::atomic<bool> producing{true};
  std::thread producer([&] {
    for (int r = 0; r < kRuns; ++r) {
      const dtr::RunData run = make_run("Live", static_cast<std::uint32_t>(r));
      produce(run);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ingestor.publish(run.meta);
    }
    producing.store(false);
  });

  const std::vector<std::string> queries = {
      R"({"from": "tasks", "group_by": ["prefix"],
          "aggregates": [{"col": "duration", "op": "mean", "as": "m"}]})",
      R"({"from": "tasks", "where": [{"col": "duration", "op": ">",
                                      "value": 0.55}]})",
      R"({"from": "transitions", "group_by": ["to"],
          "aggregates": [{"col": "key", "op": "count_distinct", "as": "n"}]})",
      R"({"from": "warnings"})",
  };
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      QueryClient client(server);
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const int pick = (c + i) % (static_cast<int>(queries.size()) + 2);
        if (pick == static_cast<int>(queries.size())) {
          // Deliberately invalid: must come back as an error response.
          const QueryResponse r = client.query(std::string(
              R"({"from": "no_such_view"})"));
          EXPECT_FALSE(r.ok);
          failures.fetch_add(1);
        } else if (pick == static_cast<int>(queries.size()) + 1) {
          const QueryResponse r =
              client.explain(json::parse(queries[0]));
          EXPECT_TRUE(r.ok) << r.error;
          successes.fetch_add(1);
        } else {
          const QueryResponse r = client.query(queries[pick]);
          ASSERT_TRUE(r.ok) << r.error;
          // Every response is tagged with a plausible epoch.
          EXPECT_LE(r.epoch, static_cast<Epoch>(kRuns));
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  producer.join();
  ingestor.stop();

  EXPECT_EQ(successes.load() + failures.load(),
            static_cast<std::uint64_t>(kClients * kQueriesPerClient));
  EXPECT_EQ(catalog_.snapshot().epoch(), static_cast<Epoch>(kRuns));

  // Settled state: a query at the final epoch is served and then cached.
  QueryClient client(server);
  const QueryResponse cold = client.query(std::string(
      R"({"from": "tasks", "group_by": ["workflow"],
          "aggregates": [{"col": "key", "op": "count", "as": "n"}]})"));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_EQ(cold.epoch, static_cast<Epoch>(kRuns));
  ASSERT_EQ(cold.frame.rows(), 1u);
  EXPECT_EQ(cold.frame.col("n").i64(0), 8 * kRuns);
  const QueryResponse warm = client.query(std::string(
      R"({"from": "tasks", "group_by": ["workflow"],
          "aggregates": [{"col": "key", "op": "count", "as": "n"}]})"));
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.completed + stats.failed + stats.timed_out +
                                static_cast<std::uint64_t>(
                                    server.stats().queue_depth));
}

}  // namespace
}  // namespace recup::query
