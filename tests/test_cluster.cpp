// Cluster-level tests: full wiring (client, scheduler, workers, Mofka
// plugins, SSG, Darshan), RunData assembly, determinism, and run-directory
// round trip.
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/readers.hpp"
#include "dtr/cluster.hpp"

namespace recup::dtr {
namespace {

ClusterConfig small_config(std::uint64_t seed = 42) {
  ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = seed;
  return config;
}

std::vector<TaskGraph> small_graphs() {
  TaskGraph g1("stage-one");
  for (int i = 0; i < 20; ++i) {
    TaskSpec t;
    t.key = {"produce-aa11", i};
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 20;
    if (i % 4 == 0) t.work.kernels = {{"gemm", 0.01, 1}};
    g1.add_task(t);
  }
  TaskGraph g2("stage-two");
  for (int i = 0; i < 20; ++i) {
    TaskSpec t;
    t.key = {"consume-bb22", i};
    t.dependencies.push_back({"produce-aa11", i});
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 10;
    g2.add_task(t);
  }
  std::vector<TaskGraph> graphs;
  graphs.push_back(std::move(g1));
  graphs.push_back(std::move(g2));
  return graphs;
}

TEST(Cluster, RunsMultiGraphWorkflow) {
  Cluster cluster(small_config());
  const RunData run = cluster.run(small_graphs(), "test-workflow", 0);
  EXPECT_EQ(run.meta.workflow, "test-workflow");
  EXPECT_EQ(run.graph_count, 2u);
  EXPECT_EQ(run.tasks.size(), 40u);
  EXPECT_GT(run.meta.wall_time(), 0.0);
  EXPECT_GT(run.coordination_time, 0.0);
  EXPECT_EQ(run.darshan_logs.size(), 4u);  // one per worker
  EXPECT_FALSE(run.transitions.empty());
  EXPECT_FALSE(run.logs.empty());
  EXPECT_TRUE(run.environment.contains("hardware"));
  EXPECT_TRUE(run.environment.contains("wms_config"));
}

TEST(Cluster, GraphsRunStrictlyInSequence) {
  Cluster cluster(small_config());
  const RunData run = cluster.run(small_graphs(), "seq", 0);
  TimePoint g1_max_end = 0.0;
  TimePoint g2_min_start = kTimeInfinity;
  for (const auto& t : run.tasks) {
    if (t.graph == "stage-one") g1_max_end = std::max(g1_max_end, t.end_time);
    if (t.graph == "stage-two") {
      g2_min_start = std::min(g2_min_start, t.start_time);
    }
  }
  EXPECT_GE(g2_min_start, g1_max_end);
}

TEST(Cluster, DeterministicForSameSeed) {
  const auto run_once = [] {
    Cluster cluster(small_config(123));
    return cluster.run(small_graphs(), "det", 0);
  };
  const RunData a = run_once();
  const RunData b = run_once();
  EXPECT_DOUBLE_EQ(a.meta.wall_time(), b.meta.wall_time());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].key, b.tasks[i].key);
    EXPECT_DOUBLE_EQ(a.tasks[i].start_time, b.tasks[i].start_time);
    EXPECT_EQ(a.tasks[i].worker, b.tasks[i].worker);
  }
  EXPECT_EQ(a.comms.size(), b.comms.size());
}

TEST(Cluster, DifferentSeedsProduceVariation) {
  Cluster a(small_config(1));
  Cluster b(small_config(2));
  const RunData ra = a.run(small_graphs(), "var", 0);
  const RunData rb = b.run(small_graphs(), "var", 1);
  EXPECT_NE(ra.meta.wall_time(), rb.meta.wall_time());
}

TEST(Cluster, MofkaTopicsReceiveStreamedProvenance) {
  Cluster cluster(small_config());
  const RunData run = cluster.run(small_graphs(), "mofka", 0);
  auto records = analysis::read_wms_topics(cluster.broker());
  // Streamed records match the directly collected ones.
  EXPECT_EQ(records.tasks.size(), run.tasks.size());
  EXPECT_EQ(records.transitions.size(), run.transitions.size());
  EXPECT_EQ(records.comms.size(), run.comms.size());
  // Spot-check field equality through the JSON round trip.
  ASSERT_FALSE(records.tasks.empty());
  bool found = false;
  for (const auto& t : records.tasks) {
    if (t.key == run.tasks.front().key) {
      EXPECT_EQ(t.worker, run.tasks.front().worker);
      EXPECT_DOUBLE_EQ(t.start_time, run.tasks.front().start_time);
      EXPECT_EQ(t.dependencies.size(),
                run.tasks.front().dependencies.size());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cluster, MofkaCanBeDisabled) {
  ClusterConfig config = small_config();
  config.enable_mofka = false;
  Cluster cluster(config);
  const RunData run = cluster.run(small_graphs(), "nomofka", 0);
  EXPECT_EQ(run.tasks.size(), 40u);
  EXPECT_EQ(cluster.broker().partition_size("wms_tasks", 0), 0u);
}

TEST(Cluster, SsgGroupSeesAllWorkersAlive) {
  Cluster cluster(small_config());
  cluster.run(small_graphs(), "ssg", 0);
  EXPECT_EQ(cluster.worker_group().alive_count(), 4u);
}

TEST(Cluster, RunTwiceThrows) {
  Cluster cluster(small_config());
  cluster.run(small_graphs(), "once", 0);
  EXPECT_THROW(cluster.run(small_graphs(), "twice", 1), std::logic_error);
}

TEST(Cluster, RunDirRoundTrip) {
  Cluster cluster(small_config());
  const RunData run = cluster.run(small_graphs(), "persist", 3);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "recup_run_dir_test")
          .string();
  std::filesystem::remove_all(dir);
  write_run_dir(run, dir);
  const RunData back = read_run_dir(dir);

  EXPECT_EQ(back.meta.workflow, "persist");
  EXPECT_EQ(back.meta.run_index, 3u);
  EXPECT_NEAR(back.meta.wall_time(), run.meta.wall_time(), 1e-6);
  EXPECT_EQ(back.graph_count, 2u);
  ASSERT_EQ(back.tasks.size(), run.tasks.size());
  EXPECT_EQ(back.tasks.front().key, run.tasks.front().key);
  EXPECT_EQ(back.tasks.front().dependencies.size(),
            run.tasks.front().dependencies.size());
  EXPECT_EQ(back.transitions.size(), run.transitions.size());
  EXPECT_EQ(back.comms.size(), run.comms.size());
  EXPECT_EQ(back.warnings.size(), run.warnings.size());
  EXPECT_EQ(back.logs.size(), run.logs.size());
  EXPECT_EQ(back.darshan_logs.size(), run.darshan_logs.size());
  EXPECT_EQ(back.job.nodes, run.job.nodes);
  ASSERT_EQ(back.kernels.size(), run.kernels.size());
  ASSERT_FALSE(back.kernels.empty());
  EXPECT_EQ(back.kernels.front().kernel_name,
            run.kernels.front().kernel_name);
  EXPECT_EQ(back.kernels.front().thread_id, run.kernels.front().thread_id);
  std::filesystem::remove_all(dir);
}

TEST(Cluster, TaskRecordsCoverEveryGraphTask) {
  Cluster cluster(small_config());
  const RunData run = cluster.run(small_graphs(), "coverage", 0);
  std::set<std::string> keys;
  for (const auto& t : run.tasks) keys.insert(t.key.to_string());
  EXPECT_EQ(keys.size(), 40u);
  for (const auto& t : run.tasks) {
    EXPECT_GE(t.ready_time, t.received_time);
    EXPECT_GE(t.start_time, t.ready_time);
    EXPECT_GT(t.end_time, t.start_time);
    EXPECT_FALSE(t.worker_address.empty());
    EXPECT_NE(t.thread_id, 0u);
  }
}

}  // namespace
}  // namespace recup::dtr
