// Fault-tolerance tests: worker death detected through SSG heartbeats, task
// requeue, lost-key recomputation, resubmission caps with dead-letter
// records, and provenance delivery under combined worker + transport faults.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "chaos/fault.hpp"
#include "dtr/cluster.hpp"
#include "dtr/foreman.hpp"
#include "dtr_fixture.hpp"
#include "query/catalog.hpp"
#include "query/ingest.hpp"
#include "query/ir.hpp"
#include "query/plan.hpp"

namespace recup::dtr {
namespace {

ClusterConfig ft_config(std::uint64_t seed = 33) {
  ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = seed;
  return config;
}

TEST(FaultTolerance, WorkflowCompletesDespiteWorkerDeath) {
  Cluster cluster(ft_config());
  TaskGraph g("long");
  for (int i = 0; i < 60; ++i) {
    TaskSpec t;
    t.key = {"work-aa11", i};
    t.work.compute = 1.0;
    t.work.output_bytes = 1 << 20;
    g.add_task(t);
  }
  // Kill one worker mid-run (workers connect ~6-10 s in, tasks run ~8 s).
  cluster.fail_worker_at(1, 12.0);
  const RunData run = cluster.run({g}, "ft", 0);

  EXPECT_EQ(run.tasks.size(), 60u);
  EXPECT_FALSE(cluster.scheduler().worker_alive(1));
  // SSG observed the death.
  std::size_t dead = 0;
  for (const auto& member : cluster.worker_group().members()) {
    if (member.state == mochi::MemberState::kDead) ++dead;
  }
  EXPECT_EQ(dead, 1u);
  // Some tasks were requeued with the failure stimulus.
  bool requeued = false;
  for (const auto& tr : run.transitions) {
    if (tr.stimulus == "worker-failed") requeued = true;
  }
  EXPECT_TRUE(requeued);
  // Nothing ran on the dead worker after its death was detected (allow the
  // detection window of a few heartbeat rounds).
  for (const auto& t : run.tasks) {
    if (t.worker == 1) {
      EXPECT_LT(t.start_time, 20.0);
    }
  }
}

TEST(FaultTolerance, LostResultsAreRecomputedForDependents) {
  Cluster cluster(ft_config(44));
  TaskGraph g1("producers");
  for (int i = 0; i < 8; ++i) {
    TaskSpec t;
    t.key = {"produce-bb22", i};
    t.work.compute = 0.2;
    t.work.output_bytes = 4 << 20;
    g1.add_task(t);
  }
  TaskGraph g2("consumers");
  for (int i = 0; i < 8; ++i) {
    TaskSpec t;
    t.key = {"consume-cc33", i};
    t.dependencies.push_back({"produce-bb22", i});
    // Long tasks so the failure lands while consumers still need inputs.
    t.work.compute = 8.0;
    t.work.output_bytes = 1024;
    g2.add_task(t);
  }
  cluster.fail_worker_at(2, 14.0);
  const RunData run = cluster.run({g1, g2}, "recompute", 0);

  // All consumers completed; any producer whose only replica lived on
  // worker 2 was recomputed (visible via the recompute stimulus).
  std::size_t consumers_done = 0;
  for (const auto& t : run.tasks) {
    if (t.prefix == "consume") ++consumers_done;
  }
  EXPECT_EQ(consumers_done, 8u);
  bool any_recompute = false;
  for (const auto& tr : run.transitions) {
    if (tr.stimulus == "recompute" || tr.stimulus == "worker-failed") {
      any_recompute = true;
    }
  }
  EXPECT_TRUE(any_recompute);
  EXPECT_EQ(cluster.scheduler().erred_tasks(), 0u);
}

TEST(FaultTolerance, SurvivingWorkersAbsorbTheLoad) {
  Cluster cluster(ft_config(55));
  TaskGraph g("spread");
  for (int i = 0; i < 120; ++i) {
    TaskSpec t;
    t.key = {"spread-dd44", i};
    t.work.compute = 2.0;
    g.add_task(t);
  }
  cluster.fail_worker_at(0, 13.0);
  const RunData run = cluster.run({g}, "absorb", 0);
  EXPECT_EQ(run.tasks.size(), 120u);
  // Death detection takes a few heartbeat rounds (~5 s); everything started
  // after that must avoid the dead worker, and the rest of the cluster
  // keeps making progress.
  std::set<WorkerId> used_after_death;
  for (const auto& t : run.tasks) {
    if (t.start_time > 20.0) used_after_death.insert(t.worker);
  }
  EXPECT_EQ(used_after_death.count(0), 0u);
  EXPECT_GE(used_after_death.size(), 3u);
}

TEST(FaultTolerance, ResubmissionCapExhaustionDeadLettersAndIsQueryable) {
  // With the cap at zero, the first worker failure a processing task sees
  // exhausts its resubmission budget: the scheduler must dead-letter it with
  // a warning row instead of retrying forever or crashing the run.
  ClusterConfig config = ft_config(77);
  config.scheduler.max_resubmissions = 0;
  Cluster cluster(config);
  TaskGraph g("capped");
  for (int i = 0; i < 16; ++i) {
    TaskSpec t;
    t.key = {"capped-ff66", i};
    t.work.compute = 8.0;  // long enough to be in flight at the failure
    t.work.output_bytes = 1 << 16;
    g.add_task(t);
  }
  cluster.fail_worker_at(1, 14.0);
  const RunData run = cluster.run({g}, "capped", 0);

  std::vector<std::string> dead_letters;
  for (const auto& w : run.warnings) {
    if (w.kind != "dead_letter") continue;
    EXPECT_EQ(w.location, "scheduler");
    EXPECT_NE(w.message.find("resubmission cap"), std::string::npos)
        << w.message;
    dead_letters.push_back(w.message);
  }
  ASSERT_GT(dead_letters.size(), 0u);
  // Independent tasks: everything not dead-lettered completed, and nothing
  // was lost in between.
  EXPECT_EQ(run.tasks.size() + dead_letters.size(), 16u);
  EXPECT_EQ(cluster.scheduler().erred_tasks(), dead_letters.size());

  // The dead-letter records flow through the streaming pipeline into the
  // warnings view and are reachable through the query layer.
  query::StoreCatalog catalog;
  query::LiveIngestor ingestor(cluster.broker(), catalog);
  ingestor.publish(run.meta);
  const query::ExecutionResult result = query::execute_query(
      query::parse_query(std::string(R"({
        "from": "warnings",
        "where": [{"col": "kind", "op": "==", "value": "dead_letter"}]
      })")),
      catalog, nullptr);
  EXPECT_EQ(result.frame->rows(), dead_letters.size());
}

TEST(FaultTolerance, WorkerDeathMidFlushLosesNoProvenance) {
  // Transport faults on every broker push combined with a worker death: the
  // producers' retries plus broker-side dedup must still land one copy of
  // every provenance record, so the ingested views match the run exactly.
  ClusterConfig config = ft_config(88);
  chaos::FaultPlan plan;
  plan.seed = 909;
  plan.sites[chaos::sites::kMofkaPush].drop = 0.1;
  plan.sites[chaos::sites::kMofkaPush].duplicate = 0.1;
  config.fault_plan = plan;
  Cluster cluster(config);
  TaskGraph g("flushy");
  for (int i = 0; i < 40; ++i) {
    TaskSpec t;
    t.key = {"flushy-ab99", i};
    t.work.compute = 1.0;
    t.work.output_bytes = 1 << 20;
    g.add_task(t);
  }
  cluster.fail_worker_at(2, 12.0);
  const RunData run = cluster.run({g}, "flushy", 0);

  EXPECT_EQ(run.tasks.size(), 40u);
  ASSERT_TRUE(cluster.fault_injector());
  EXPECT_GT(cluster.fault_injector()->hits(chaos::sites::kMofkaPush), 0u);

  query::StoreCatalog catalog;
  query::LiveIngestor ingestor(cluster.broker(), catalog);
  ingestor.publish(run.meta);
  const query::StoreCatalog::Snapshot snap = catalog.snapshot();
  // Every completed task's provenance arrived despite drops, injected
  // duplicates, and the mid-run death: no loss, no double-counting.
  EXPECT_EQ(snap.frame(query::ViewId::kTasks, {"flushy", 0})->rows(),
            run.tasks.size());
  EXPECT_EQ(snap.frame(query::ViewId::kWarnings, {"flushy", 0})->rows(),
            run.warnings.size());
  EXPECT_EQ(snap.frame(query::ViewId::kComms, {"flushy", 0})->rows(),
            run.comms.size());
}

TEST(FaultTolerance, ProxyOwnerDeathMidGatherFallsBackOrRecomputes) {
  // Out-of-band results whose owner dies while consumers are still
  // gathering dependencies: each affected consumer must either be
  // redirected to a surviving replica or wait for a recompute — and no
  // truncated payload may ever be installed as dependency data.
  Cluster cluster(ft_config(99));
  ASSERT_NE(cluster.datastore(), nullptr);  // enabled by default
  TaskGraph g1("producers");
  for (int i = 0; i < 8; ++i) {
    TaskSpec t;
    t.key = {"produce-aa77", i};
    // Staggered completions spread the consumers' gather window across the
    // kill time below.
    t.work.compute = 0.5 + 1.5 * i;
    t.work.output_bytes = 8 << 20;  // >= threshold: travels as a proxy
    g1.add_task(t);
  }
  TaskGraph g2("consumers");
  for (int i = 0; i < 6; ++i) {
    TaskSpec t;
    t.key = {"consume-bb88", i};
    for (int d = 0; d < 8; ++d) t.dependencies.push_back({"produce-aa77", d});
    t.work.compute = 4.0;
    t.work.output_bytes = 1024;
    g2.add_task(t);
  }
  // Worker 1 dies while the last producers finish and the consumers gather
  // their eight proxies.
  cluster.fail_worker_at(1, 13.0);
  const RunData run = cluster.run({g1, g2}, "proxy-death", 0);

  std::size_t consumers_done = 0;
  for (const auto& t : run.tasks) {
    if (t.prefix == "consume") ++consumers_done;
  }
  EXPECT_EQ(consumers_done, 6u);
  EXPECT_EQ(cluster.scheduler().erred_tasks(), 0u);
  // The failure actually touched the data plane: the dead shard's copies
  // were lost (forcing recompute), re-pinned to a replica, or dropped.
  const datastore::DataStoreStats ds = cluster.datastore()->stats();
  EXPECT_GT(ds.lost_entries + ds.repins + ds.replica_drops, 0u);
  bool recovered = false;
  for (const auto& tr : run.transitions) {
    if (tr.stimulus == "recompute" || tr.stimulus == "worker-failed") {
      recovered = true;
    }
  }
  EXPECT_TRUE(recovered);
  // The hard guarantee: every installed dependency passed size+fingerprint
  // validation — a truncated or corrupt payload was never handed to a task.
  EXPECT_EQ(ds.validation_failures, 0u);
  EXPECT_EQ(ds.fetch_failures, 0u);
  // Out-of-band gathers happened (this workload's producers are all above
  // the inline threshold).
  EXPECT_GT(ds.fetches, 0u);
  std::size_t oob_comms = 0;
  for (const auto& c : run.comms) {
    if (c.oob) ++oob_comms;
  }
  EXPECT_GT(oob_comms, 0u);
}

TEST(FaultTolerance, FailureOfIdleWorkerIsHarmless) {
  Cluster cluster(ft_config(66));
  TaskGraph g("tiny");
  for (int i = 0; i < 4; ++i) {
    TaskSpec t;
    t.key = {"tiny-ee55", i};
    t.work.compute = 30.0;  // keep the run alive past detection
    g.add_task(t);
  }
  cluster.fail_worker_at(3, 15.0);
  const RunData run = cluster.run({g}, "idle-death", 0);
  EXPECT_EQ(run.tasks.size(), 4u);
  EXPECT_FALSE(cluster.scheduler().worker_alive(3));
}

// ---------------------------------------------------------------------------
// Foreman-tier fault tolerance (DESIGN.md §11): the root detects a dead
// foreman purely from missed beats, re-homes its pool onto the next
// surviving foreman (or direct-to-root), replays the pool's unacked
// completion reports, and re-dispatches assignments that died in the
// foreman's inbox.

testing::MiniCluster make_foreman_cluster(std::uint32_t foremen,
                                          Duration window) {
  SchedulerConfig scheduler_config;
  scheduler_config.shards = 2;
  scheduler_config.foremen = foremen;
  scheduler_config.foreman_window = window;  // > 0: workers retain unacked
  scheduler_config.work_stealing = false;
  scheduler_config.heartbeat_interval = 0.05;
  scheduler_config.lease_misses = 4.0;  // foreman silence budget: 0.2 s
  WorkerConfig worker_config;
  worker_config.heartbeat_interval = 0.05;
  return testing::MiniCluster(2, 2, 2, worker_config, scheduler_config);
}

TEST(ForemanFault, DeadForemanPoolIsReHomedAndUnackedReportsReplayed) {
  testing::MiniCluster mini = make_foreman_cluster(2, 0.05);
  ASSERT_EQ(mini.scheduler.foremen().size(), 2u);

  bool done = false;
  mini.scheduler.submit_graph(testing::independent_graph(16, /*compute=*/0.3),
                              [&](const std::string&) {
                                done = true;
                                mini.scheduler.stop();
                                for (auto& worker : mini.workers) {
                                  worker->stop();
                                }
                              });
  for (auto& worker : mini.workers) worker->start_heartbeats();
  mini.scheduler.start_lease_loop();
  // Foreman 0 dies silently mid-run: its beats stop, buffered reports die
  // with it, in-flight deliveries to its pool are dropped. Nobody tells
  // the root — only beat silence can reveal it.
  mini.engine.schedule_at(0.12, [&] { mini.scheduler.foremen()[0]->kill(); });
  mini.engine.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(mini.scheduler.foreman_failures(), 1u);
  // The orphaned pool was adopted by the survivor: its pool now holds all
  // four workers.
  EXPECT_EQ(mini.scheduler.foremen()[1]->pool().size(), 4u);
  // Pool workers survived the reclaim — only their foreman died.
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_TRUE(mini.scheduler.worker_alive(w)) << w;
  }
  // At-least-once replay of the unacked tail never double-applies: every
  // task reached memory exactly once.
  EXPECT_EQ(mini.scheduler.tasks_in_memory(), 16u);
  EXPECT_EQ(mini.scheduler.erred_tasks(), 0u);
  std::map<std::string, int> memory_entries;
  for (const auto& tr : mini.scheduler.transitions()) {
    if (tr.to_state == "memory") ++memory_entries[tr.key.to_string()];
  }
  EXPECT_EQ(memory_entries.size(), 16u);
  for (const auto& [key, count] : memory_entries) {
    EXPECT_EQ(count, 1) << key << " applied more than once";
  }
}

TEST(ForemanFault, LastForemanDeathFallsBackToDirectRootWiring) {
  testing::MiniCluster mini = make_foreman_cluster(2, 0.05);
  bool done = false;
  mini.scheduler.submit_graph(testing::independent_graph(16, /*compute=*/0.3),
                              [&](const std::string&) {
                                done = true;
                                mini.scheduler.stop();
                                for (auto& worker : mini.workers) {
                                  worker->stop();
                                }
                              });
  for (auto& worker : mini.workers) worker->start_heartbeats();
  mini.scheduler.start_lease_loop();
  // Both foremen die: no successor survives, so both pools must fall back
  // to direct-to-root report wiring with fresh root-side leases.
  mini.engine.schedule_at(0.12, [&] { mini.scheduler.foremen()[0]->kill(); });
  mini.engine.schedule_at(0.15, [&] { mini.scheduler.foremen()[1]->kill(); });
  mini.engine.run();

  EXPECT_TRUE(done);
  EXPECT_EQ(mini.scheduler.foreman_failures(), 2u);
  EXPECT_EQ(mini.scheduler.tasks_in_memory(), 16u);
  EXPECT_EQ(mini.scheduler.erred_tasks(), 0u);
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_TRUE(mini.scheduler.worker_alive(w)) << w;
  }
}

}  // namespace
}  // namespace recup::dtr
