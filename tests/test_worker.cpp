// Worker tests: lane execution, thread-id stability, I/O accounting through
// the VFS into Darshan, event-loop warnings, GC, and spilling.
#include <gtest/gtest.h>

#include "dtr_fixture.hpp"

namespace recup::dtr {
namespace {

using testing::MiniCluster;
using testing::independent_graph;

TEST(Worker, LaneConcurrencyBoundedByThreads) {
  MiniCluster mini(1, 1, 2);  // one worker, two lanes
  mini.run_graph(independent_graph(8, 0.1));
  // With 2 lanes and 8 tasks of 0.1 s, at most 2 may execute at any instant.
  // Sweep start/end events to find the maximum concurrency.
  const auto& records = mini.scheduler.task_records();
  ASSERT_EQ(records.size(), 8u);
  std::vector<std::pair<double, int>> events;
  for (const auto& r : records) {
    events.emplace_back(r.start_time, +1);
    events.emplace_back(r.end_time, -1);
  }
  std::sort(events.begin(), events.end());
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  EXPECT_EQ(peak, 2);
}

TEST(Worker, ThreadIdsAreStablePerLane) {
  MiniCluster mini(1, 1, 4);
  mini.run_graph(independent_graph(40, 0.01));
  std::map<std::uint32_t, std::uint64_t> lane_to_tid;
  for (const auto& r : mini.scheduler.task_records()) {
    const auto it = lane_to_tid.find(r.lane);
    if (it == lane_to_tid.end()) {
      lane_to_tid[r.lane] = r.thread_id;
    } else {
      EXPECT_EQ(it->second, r.thread_id);
    }
  }
  // Distinct lanes have distinct thread ids.
  std::set<std::uint64_t> tids;
  for (const auto& [lane, tid] : lane_to_tid) tids.insert(tid);
  EXPECT_EQ(tids.size(), lane_to_tid.size());
}

TEST(Worker, IoFlowsIntoDarshanWithTaskThreadId) {
  MiniCluster mini(1, 1, 1);
  mini.vfs.register_file("/data/input", 8 << 20);
  TaskGraph g("io");
  TaskSpec t;
  t.key = {"reader-c0ffee", 0};
  t.work.compute = 0.01;
  t.work.reads.push_back({"/data/input", 0, 4 << 20, false});
  t.work.reads.push_back({"/data/input", 4 << 20, 4 << 20, false});
  t.work.writes.push_back({"/out/result", 0, 1 << 20, true});
  g.add_task(t);
  EXPECT_TRUE(mini.run_graph(g));

  const auto& darshan = mini.workers[0]->darshan();
  EXPECT_EQ(darshan.total_reads(), 2u);
  EXPECT_EQ(darshan.total_writes(), 1u);
  EXPECT_EQ(darshan.total_bytes_read(), static_cast<std::uint64_t>(8 << 20));
  EXPECT_EQ(darshan.total_bytes_written(),
            static_cast<std::uint64_t>(1 << 20));

  const auto& record = mini.scheduler.task_records().front();
  for (const auto& dxt : darshan.dxt_records()) {
    for (const auto& seg : dxt.segments) {
      EXPECT_EQ(seg.thread_id, record.thread_id);
      EXPECT_GE(seg.start, record.start_time);
      EXPECT_LE(seg.end, record.end_time + 1e-9);
    }
  }
  EXPECT_GT(record.io_time, 0.0);
  EXPECT_EQ(record.bytes_read, static_cast<std::uint64_t>(8 << 20));
}

TEST(Worker, DxtSegmentBytesMatchPosixCounters) {
  MiniCluster mini(1, 2, 2);
  mini.vfs.register_file("/data/a", 16 << 20);
  TaskGraph g("io2");
  for (int i = 0; i < 10; ++i) {
    TaskSpec t;
    t.key = {"reader-c0ffee", i};
    t.work.compute = 0.005;
    t.work.reads.push_back(
        {"/data/a", static_cast<std::uint64_t>(i) << 20, 1 << 20, false});
    g.add_task(t);
  }
  EXPECT_TRUE(mini.run_graph(g));
  for (const auto& w : mini.workers) {
    std::uint64_t dxt_bytes = 0;
    for (const auto& rec : w->darshan().dxt_records()) {
      for (const auto& seg : rec.segments) {
        if (seg.op == darshan::IoOp::kRead) dxt_bytes += seg.length;
      }
    }
    EXPECT_EQ(dxt_bytes, w->darshan().total_bytes_read());
  }
}

TEST(Worker, BlockingTaskEmitsUnresponsiveWarnings) {
  WorkerConfig config;
  config.event_loop_warn_threshold = 1.0;
  config.event_loop_warn_repeat = 1.0;
  MiniCluster mini(1, 1, 2, config);
  TaskGraph g("blocking");
  TaskSpec t;
  t.key = {"gil-hog-00ff", 0};
  t.work.compute = 5.0;
  t.work.compute_noise_sigma = 0.0;
  t.work.blocks_event_loop = true;
  g.add_task(t);
  EXPECT_TRUE(mini.run_graph(g));
  const auto& warnings = mini.workers[0]->warnings();
  // Blocked ~5 s, monitor first fires at 1 s then every 1 s: ~5 warnings.
  ASSERT_GE(warnings.size(), 4u);
  ASSERT_LE(warnings.size(), 6u);
  for (const auto& w : warnings) {
    EXPECT_EQ(w.kind, "event_loop_unresponsive");
    EXPECT_GT(w.blocked_for, 0.9);
  }
  // Reported block durations increase while stuck.
  EXPECT_GT(warnings.back().blocked_for, warnings.front().blocked_for);
}

TEST(Worker, NonBlockingTaskEmitsNoWarnings) {
  WorkerConfig config;
  config.event_loop_warn_threshold = 0.5;
  MiniCluster mini(1, 1, 2, config);
  TaskGraph g("calm");
  TaskSpec t;
  t.key = {"calm-0abc", 0};
  t.work.compute = 3.0;  // long but yields the loop
  g.add_task(t);
  EXPECT_TRUE(mini.run_graph(g));
  EXPECT_TRUE(mini.workers[0]->warnings().empty());
}

TEST(Worker, GcTriggersOnAllocationPressure) {
  WorkerConfig config;
  config.gc_threshold_bytes = 100ULL << 20;
  config.gc_warn_threshold = 0.0;  // log every collection
  MiniCluster mini(1, 1, 2, config);
  TaskGraph g("alloc");
  for (int i = 0; i < 10; ++i) {
    TaskSpec t;
    t.key = {"alloc-dd00", i};
    t.work.compute = 0.01;
    t.work.scratch_bytes = 30ULL << 20;
    g.add_task(t);
  }
  EXPECT_TRUE(mini.run_graph(g));
  int gc_warnings = 0;
  for (const auto& w : mini.workers[0]->warnings()) {
    if (w.kind == "gc_collection") ++gc_warnings;
  }
  // 10 x 30 MiB of scratch against a 100 MiB threshold: ~3 collections.
  EXPECT_GE(gc_warnings, 2);
  EXPECT_LE(gc_warnings, 4);
}

TEST(Worker, SpillsWhenOverMemoryBudgetAndIoIsVisible) {
  WorkerConfig config;
  config.spill_threshold_bytes = 64ULL << 20;
  config.spill_chunk_bytes = 16ULL << 20;
  MiniCluster mini(1, 1, 1, config);
  TaskGraph g("memory-hog");
  // Chain so results stay resident: each produces 40 MiB.
  for (int i = 0; i < 5; ++i) {
    TaskSpec t;
    t.key = {"hog-ee11", i};
    t.work.compute = 0.01;
    t.work.output_bytes = 40ULL << 20;
    g.add_task(t);
  }
  EXPECT_TRUE(mini.run_graph(g));
  const auto& w = *mini.workers[0];
  EXPECT_LE(w.memory_bytes(), 64ULL << 20);
  // Spill writes appear in the Darshan data.
  EXPECT_GT(w.darshan().total_writes(), 0u);
  bool spill_file_seen = false;
  for (const auto& rec : w.darshan().posix_records()) {
    if (rec.file_path.find("/local/scratch/") == 0) spill_file_seen = true;
  }
  EXPECT_TRUE(spill_file_seen);
}

TEST(Worker, UnspillsDependenciesBeforeUse) {
  WorkerConfig config;
  config.spill_threshold_bytes = 64ULL << 20;
  MiniCluster mini(1, 1, 1, config);

  TaskGraph g1("fill");
  for (int i = 0; i < 4; ++i) {
    TaskSpec t;
    t.key = {"filler-bb11", i};
    t.work.compute = 0.01;
    t.work.output_bytes = 35ULL << 20;
    g1.add_task(t);
  }
  EXPECT_TRUE(mini.run_graph(g1));
  const std::uint64_t reads_before = mini.workers[0]->darshan().total_reads();
  // 4 x 35 MiB against a 64 MiB budget: the oldest results were spilled.
  ASSERT_TRUE(mini.workers[0]->has_data({"filler-bb11", 0}));
  ASSERT_LE(mini.workers[0]->memory_bytes(), 64ULL << 20);

  // A dependent of the spilled oldest result must read it back from scratch.
  TaskGraph g2("use");
  TaskSpec consumer;
  consumer.key = {"consumer-cc22", 0};
  consumer.dependencies.push_back({"filler-bb11", 0});
  consumer.work.compute = 0.01;
  g2.add_task(consumer);
  bool done = false;
  mini.scheduler.submit_graph(g2, [&](const std::string&) { done = true; });
  mini.engine.run();
  EXPECT_TRUE(done);
  EXPECT_GT(mini.workers[0]->darshan().total_reads(), reads_before);
}

TEST(Worker, StolenFlagPropagates) {
  MiniCluster mini(1, 1, 1);
  TaskGraph g("one");
  TaskSpec t;
  t.key = {"task-ff00", 0};
  t.work.compute = 0.01;
  g.add_task(t);
  mini.run_graph(g);
  EXPECT_FALSE(mini.scheduler.task_records().front().stolen);
}

TEST(Worker, DataAccessAndDrop) {
  MiniCluster mini(1, 1, 1);
  auto& w = *mini.workers[0];
  const TaskKey key{"k-1234ab", 0};
  EXPECT_FALSE(w.has_data(key));
  EXPECT_THROW(w.data_size(key), std::out_of_range);
  w.put_data(key, 4096);
  EXPECT_TRUE(w.has_data(key));
  EXPECT_EQ(w.data_size(key), 4096u);
  EXPECT_EQ(w.serve_data(key), 4096u);
  EXPECT_EQ(w.memory_bytes(), 4096u);
  w.drop_data(key);
  EXPECT_FALSE(w.has_data(key));
  EXPECT_EQ(w.memory_bytes(), 0u);
  w.drop_data(key);  // idempotent
}

}  // namespace
}  // namespace recup::dtr
