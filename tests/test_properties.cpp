// Property-based tests: randomized task graphs and configurations swept via
// parameterized gtest, asserting the runtime's global invariants — the
// properties the provenance analysis relies on being true of the collected
// data.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/views.hpp"
#include "common/strings.hpp"
#include "dtr/cluster.hpp"
#include "mofka/producer.hpp"
#include "mofka/sequence.hpp"

namespace recup::dtr {
namespace {

/// Builds a random layered DAG: `layers` layers of `width` tasks, each task
/// depending on 0-3 tasks of the previous layer, with randomized compute,
/// output sizes, and optional I/O.
TaskGraph random_graph(RngStream& rng, std::size_t layers, std::size_t width,
                       Vfs& vfs) {
  vfs.register_file("/data/random", 256ULL << 20);
  TaskGraph g("random");
  for (std::size_t layer = 0; layer < layers; ++layer) {
    const std::string group =
        "layer" + std::to_string(layer) + "-" + hex_token(layer * 7 + 1, 4);
    for (std::size_t i = 0; i < width; ++i) {
      TaskSpec t;
      t.key = {group, static_cast<std::int64_t>(i)};
      t.work.compute = rng.uniform(0.001, 0.1);
      t.work.output_bytes =
          static_cast<std::uint64_t>(rng.uniform_int(1024, 8 << 20));
      if (layer > 0) {
        const auto deps = static_cast<std::size_t>(rng.uniform_int(0, 3));
        std::set<std::int64_t> chosen;
        for (std::size_t d = 0; d < deps; ++d) {
          chosen.insert(rng.uniform_int(0, static_cast<std::int64_t>(width) -
                                               1));
        }
        const std::string prev_group =
            "layer" + std::to_string(layer - 1) + "-" +
            hex_token((layer - 1) * 7 + 1, 4);
        for (const auto dep : chosen) {
          t.dependencies.push_back({prev_group, dep});
        }
      }
      if (rng.chance(0.3)) {
        t.work.reads.push_back(
            {"/data/random",
             static_cast<std::uint64_t>(rng.uniform_int(0, 63)) << 20,
             1 << 20, false});
      }
      if (rng.chance(0.2)) {
        t.work.writes.push_back(
            {"/out/random",
             static_cast<std::uint64_t>(rng.uniform_int(0, 63)) << 16,
             1 << 16, true});
      }
      g.add_task(t);
    }
  }
  return g;
}

class RuntimeInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeInvariants, HoldOnRandomGraphs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  RngStream rng(seed * 1337 + 1);

  ClusterConfig config;
  config.job.nodes = 1 + seed % 3;
  config.job.workers_per_node = 1 + (seed / 3) % 3;
  config.job.threads_per_worker = 1 + (seed / 9) % 4;
  config.seed = seed;
  Cluster cluster(config);
  const TaskGraph graph = random_graph(
      rng, 3 + seed % 3, 10 + (seed % 5) * 10, cluster.vfs());
  const std::size_t expected = graph.size();
  const RunData run = cluster.run({graph}, "random", 0);

  // 1. Every task executed exactly once and produced a record.
  std::set<std::string> keys;
  for (const auto& t : run.tasks) keys.insert(t.key.to_string());
  EXPECT_EQ(keys.size(), expected);
  EXPECT_EQ(run.tasks.size(), expected);

  // 2. Temporal sanity per record.
  for (const auto& t : run.tasks) {
    EXPECT_LE(t.received_time, t.ready_time);
    EXPECT_LE(t.ready_time, t.start_time);
    EXPECT_LT(t.start_time, t.end_time);
    EXPECT_LE(t.end_time, run.meta.wall_end + 1e-9);
    EXPECT_GE(t.compute_time, 0.0);
    EXPECT_GE(t.io_time, 0.0);
  }

  // 3. Dependencies finished before dependents started.
  std::map<std::string, const TaskRecord*> by_key;
  for (const auto& t : run.tasks) by_key[t.key.to_string()] = &t;
  for (const auto& t : run.tasks) {
    for (const auto& dep : t.dependencies) {
      const auto it = by_key.find(dep.to_string());
      ASSERT_NE(it, by_key.end());
      EXPECT_LE(it->second->end_time, t.start_time + 1e-9)
          << dep.to_string() << " -> " << t.key.to_string();
    }
  }

  // 4. Scheduler transition chains are well-formed and end in memory.
  std::map<std::string, std::string> last_state;
  std::map<std::string, int> memory_count;
  for (const auto& tr : run.transitions) {
    if (tr.location != "scheduler") continue;
    const std::string key = tr.key.to_string();
    if (last_state.count(key)) {
      EXPECT_EQ(last_state[key], tr.from_state) << key;
    }
    last_state[key] = tr.to_state;
    if (tr.to_state == "memory") ++memory_count[key];
  }
  for (const auto& [key, count] : memory_count) EXPECT_EQ(count, 1) << key;

  // 5. Every transfer matches a real dependency relationship and has
  //    positive duration.
  for (const auto& c : run.comms) {
    EXPECT_GT(c.end, c.start);
    EXPECT_NE(c.source, c.destination);
    EXPECT_TRUE(by_key.count(c.key.to_string())) << c.key.to_string();
  }

  // 6. Darshan per-worker totals equal the sum over task records.
  std::uint64_t task_bytes_read = 0;
  for (const auto& t : run.tasks) task_bytes_read += t.bytes_read;
  std::uint64_t darshan_bytes_read = 0;
  for (const auto& log : run.darshan_logs) {
    for (const auto& rec : log.posix) darshan_bytes_read += rec.bytes_read;
  }
  EXPECT_EQ(darshan_bytes_read, task_bytes_read);

  // 7. Attribution: with no spilling configured, every DXT segment maps to
  //    exactly one task.
  for (const auto& io : analysis::attribute_io(run)) {
    EXPECT_FALSE(io.task_key.empty());
  }

  // 8. Wall time covers the last event.
  EXPECT_GT(run.meta.wall_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RuntimeInvariants, ::testing::Range(1, 11));

class FailureInjection : public ::testing::TestWithParam<int> {};

TEST_P(FailureInjection, RetriesPreserveInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = seed;
  Cluster cluster(config);
  TaskGraph g("flaky");
  for (int i = 0; i < 40; ++i) {
    TaskSpec t;
    t.key = {"flaky-ab01", i};
    t.work.compute = 0.01;
    t.work.output_bytes = 4096;
    t.work.failure_probability = 0.3;
    g.add_task(t);
  }
  const RunData run = cluster.run({g}, "flaky", 0);

  // Completion records exist only for final successes; their retry counts
  // are consistent with the erred transitions observed.
  std::size_t erred_transitions = 0;
  for (const auto& tr : run.transitions) {
    if (tr.location == "scheduler" && tr.to_state == "erred") {
      ++erred_transitions;
    }
  }
  std::uint64_t total_retries = 0;
  for (const auto& t : run.tasks) total_retries += t.retries;
  // Every erred transition is either a retry that eventually succeeded or a
  // terminal failure.
  EXPECT_GE(erred_transitions, total_retries);
  // All 40 keys reached a terminal state.
  EXPECT_EQ(run.tasks.size() +
                static_cast<std::size_t>(
                    cluster.scheduler().erred_tasks()),
            40u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FailureInjection, ::testing::Range(1, 6));

class WorkloadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadDeterminism, IdenticalSeedsIdenticalRuns) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 97;
  const auto run_once = [seed] {
    ClusterConfig config;
    config.job.nodes = 2;
    config.job.workers_per_node = 2;
    config.job.threads_per_worker = 2;
    config.seed = seed;
    Cluster cluster(config);
    cluster.vfs().register_file("/data/d", 8 << 20);
    TaskGraph g("det");
    for (int i = 0; i < 30; ++i) {
      TaskSpec t;
      t.key = {"det-cd02", i};
      t.work.compute = 0.02;
      t.work.output_bytes = 1 << 20;
      if (i >= 10) t.dependencies.push_back({"det-cd02", i % 10});
      t.work.reads.push_back({"/data/d", 0, 1 << 20, false});
      g.add_task(t);
    }
    return cluster.run({g}, "det", 0);
  };
  const RunData a = run_once();
  const RunData b = run_once();
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].key, b.tasks[i].key);
    EXPECT_EQ(a.tasks[i].worker, b.tasks[i].worker);
    EXPECT_DOUBLE_EQ(a.tasks[i].start_time, b.tasks[i].start_time);
    EXPECT_DOUBLE_EQ(a.tasks[i].end_time, b.tasks[i].end_time);
  }
  EXPECT_EQ(a.comms.size(), b.comms.size());
  EXPECT_EQ(a.warnings.size(), b.warnings.size());
  EXPECT_DOUBLE_EQ(a.meta.wall_time(), b.meta.wall_time());
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkloadDeterminism, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Delivery-layer properties: the sequence bookkeeping and retry backoff that
// the at-least-once pipeline (src/mofka) builds its exactly-once effects on.

/// Applies an arbitrary interleaving of duplicate / reorder / drop faults to
/// the sequence 0..n-1: every kept seq appears >=1 time, order is shuffled.
std::vector<std::uint64_t> faulted_arrivals(RngStream& rng, std::uint64_t n,
                                            double duplicate_p, double drop_p) {
  std::vector<std::uint64_t> arrivals;
  for (std::uint64_t seq = 0; seq < n; ++seq) {
    if (rng.chance(drop_p)) continue;
    arrivals.push_back(seq);
    while (rng.chance(duplicate_p)) arrivals.push_back(seq);
  }
  rng.shuffle(arrivals);
  return arrivals;
}

class SequenceProperties : public ::testing::TestWithParam<int> {};

TEST_P(SequenceProperties, TrackerAcceptsEachSequenceExactlyOnce) {
  RngStream rng(4000u + static_cast<unsigned>(GetParam()));
  const std::uint64_t n = 200;
  const auto arrivals = faulted_arrivals(rng, n, 0.4, 0.0);

  mofka::SequenceTracker tracker;
  std::map<std::uint64_t, int> accepted;
  for (const std::uint64_t seq : arrivals) {
    if (tracker.accept(seq)) accepted[seq] += 1;
  }
  // No matter the interleaving, each sequence number is accepted exactly
  // once — reordering must never make an early arrival look like a dup.
  ASSERT_EQ(accepted.size(), n);
  for (const auto& [seq, count] : accepted) EXPECT_EQ(count, 1) << seq;
  // With the full range seen, the watermark advanced past it and the
  // ahead-set fully collapsed (bounded memory).
  EXPECT_EQ(tracker.watermark(), n);
  EXPECT_EQ(tracker.ahead_size(), 0u);
  for (std::uint64_t seq = 0; seq < n; ++seq) EXPECT_TRUE(tracker.seen(seq));
}

TEST_P(SequenceProperties, ResequencerReconstructsOriginalOrder) {
  RngStream rng(5000u + static_cast<unsigned>(GetParam()));
  const std::uint64_t n = 150;
  const auto arrivals = faulted_arrivals(rng, n, 0.3, 0.0);

  mofka::Resequencer<std::uint64_t> reseq;
  std::vector<std::uint64_t> released;
  for (const std::uint64_t seq : arrivals) {
    for (const std::uint64_t value : reseq.push(seq, seq)) {
      released.push_back(value);
    }
  }
  // Arbitrary duplicate+reorder interleavings reconstruct the exact
  // original sequence: 0..n-1 in order, each exactly once.
  ASSERT_EQ(released.size(), n);
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(released[i], i);
  EXPECT_EQ(reseq.next_expected(), n);
  EXPECT_EQ(reseq.held(), 0u);
}

TEST_P(SequenceProperties, ResequencerHoldsBackEverythingPastADrop) {
  RngStream rng(6000u + static_cast<unsigned>(GetParam()));
  const std::uint64_t n = 100;
  const auto arrivals = faulted_arrivals(rng, n, 0.2, 0.1);
  std::set<std::uint64_t> kept(arrivals.begin(), arrivals.end());
  std::uint64_t first_missing = n;
  for (std::uint64_t seq = 0; seq < n; ++seq) {
    if (kept.count(seq) == 0) {
      first_missing = seq;
      break;
    }
  }

  mofka::Resequencer<std::uint64_t> reseq;
  std::vector<std::uint64_t> released;
  for (const std::uint64_t seq : arrivals) {
    for (const std::uint64_t value : reseq.push(seq, seq)) {
      released.push_back(value);
    }
  }
  // In-order release may not skip a gap: exactly the contiguous prefix
  // below the first dropped sequence comes out, the rest is held for a
  // retry to fill the hole.
  ASSERT_EQ(released.size(), first_missing);
  for (std::uint64_t i = 0; i < first_missing; ++i) EXPECT_EQ(released[i], i);
  EXPECT_EQ(reseq.next_expected(), first_missing);
  EXPECT_EQ(reseq.held(), kept.size() - first_missing);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SequenceProperties, ::testing::Range(1, 11));

TEST(BackoffProperties, MonotoneBoundedAndOverflowSafe) {
  mofka::ProducerConfig config;
  config.backoff_base = std::chrono::microseconds{50};
  config.backoff_max = std::chrono::microseconds{2000};

  EXPECT_EQ(mofka::retry_backoff(0, config), config.backoff_base);
  std::chrono::microseconds previous{0};
  for (std::size_t attempt = 0; attempt < 100; ++attempt) {
    const auto delay = mofka::retry_backoff(attempt, config);
    EXPECT_GE(delay, previous) << "backoff not monotone at " << attempt;
    EXPECT_GE(delay, config.backoff_base);
    EXPECT_LE(delay, config.backoff_max);
    previous = delay;
  }
  // Far past the doubling range the shift is clamped: no overflow, still
  // capped at the max.
  EXPECT_EQ(mofka::retry_backoff(1'000'000, config), config.backoff_max);
}

TEST(BackoffProperties, CapRespectedForAnyBaseAndMax) {
  RngStream rng(7001);
  for (int round = 0; round < 50; ++round) {
    mofka::ProducerConfig config;
    config.backoff_base =
        std::chrono::microseconds{rng.uniform_int(1, 10'000)};
    config.backoff_max = std::chrono::microseconds{
        config.backoff_base.count() + rng.uniform_int(0, 100'000)};
    std::chrono::microseconds previous{0};
    for (std::size_t attempt = 0; attempt < 70; ++attempt) {
      const auto delay = mofka::retry_backoff(attempt, config);
      EXPECT_GE(delay, previous);
      EXPECT_LE(delay, config.backoff_max);
      previous = delay;
    }
  }
}

}  // namespace
}  // namespace recup::dtr
