// GPU profiler tests: device contention, collector summaries, and
// kernel-to-task attribution through the cluster.
#include <gtest/gtest.h>

#include "analysis/readers.hpp"
#include "dtr/cluster.hpp"
#include "gpuprof/collector.hpp"
#include "gpuprof/gpu.hpp"

namespace recup::gpuprof {
namespace {

TEST(GpuSet, KernelsCompleteWithJitteredDuration) {
  sim::Engine engine;
  GpuConfig config;
  config.jitter_sigma = 0.0;
  GpuSet gpus(engine, 2, config, RngStream(1));
  KernelRecord done;
  gpus.launch(0, {"gemm", 0.5, 1}, 42,
              [&](const KernelRecord& r) { done = r; });
  engine.run();
  EXPECT_EQ(done.kernel_name, "gemm");
  EXPECT_EQ(done.thread_id, 42u);
  EXPECT_EQ(done.node, 0u);
  EXPECT_NEAR(done.duration(), 0.5, 1e-4);
  EXPECT_EQ(gpus.kernels_launched(), 1u);
}

TEST(GpuSet, SpreadsAcrossDevices) {
  sim::Engine engine;
  GpuConfig config;
  config.devices_per_node = 4;
  config.streams_per_device = 1;
  config.jitter_sigma = 0.0;
  GpuSet gpus(engine, 1, config, RngStream(1));
  std::set<DeviceIndex> devices;
  for (int i = 0; i < 4; ++i) {
    gpus.launch(0, {"k", 0.1, 1}, 1,
                [&](const KernelRecord& r) { devices.insert(r.device); });
  }
  engine.run();
  EXPECT_EQ(devices.size(), 4u);  // least-loaded spreads over all devices
}

TEST(GpuSet, ContentionQueuesKernels) {
  sim::Engine engine;
  GpuConfig config;
  config.devices_per_node = 1;
  config.streams_per_device = 1;
  config.jitter_sigma = 0.0;
  GpuSet gpus(engine, 1, config, RngStream(1));
  std::vector<KernelRecord> records;
  for (int i = 0; i < 3; ++i) {
    gpus.launch(0, {"k", 1.0, 1}, 1,
                [&](const KernelRecord& r) { records.push_back(r); });
  }
  engine.run();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_NEAR(records[1].queue_delay(), 1.0, 0.01);
  EXPECT_NEAR(records[2].queue_delay(), 2.0, 0.01);
}

TEST(GpuSet, RejectsBadNodeAndConfig) {
  sim::Engine engine;
  GpuSet gpus(engine, 1, GpuConfig{}, RngStream(1));
  EXPECT_THROW(gpus.launch(5, {"k", 0.1, 1}, 1, nullptr),
               std::out_of_range);
  GpuConfig bad;
  bad.devices_per_node = 0;
  EXPECT_THROW(GpuSet(engine, 1, bad, RngStream(1)), std::invalid_argument);
}

TEST(Collector, SummariesAggregateByKernel) {
  Collector collector;
  collector.record({0, 0, "gemm", 1, 0.0, 0.0, 1.0});
  collector.record({0, 1, "gemm", 1, 1.0, 1.5, 2.0});
  collector.record({1, 0, "conv", 1, 0.0, 0.0, 5.0});
  const auto by_kernel = collector.by_kernel();
  ASSERT_EQ(by_kernel.size(), 2u);
  EXPECT_EQ(by_kernel[0].kernel_name, "conv");  // sorted by total time
  EXPECT_EQ(by_kernel[1].launches, 2u);
  EXPECT_NEAR(by_kernel[1].total_time, 1.5, 1e-12);
  EXPECT_NEAR(by_kernel[1].total_queue_delay, 0.5, 1e-12);
  const auto busy = collector.device_busy_time();
  EXPECT_EQ(busy.size(), 3u);
  EXPECT_NEAR(busy.at({1, 0}), 5.0, 1e-12);
}

TEST(GpuIntegration, KernelsAttributedToGpuTasks) {
  dtr::ClusterConfig config;
  config.job.nodes = 1;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = 5;
  dtr::Cluster cluster(config);
  dtr::TaskGraph g("gpu-graph");
  for (int i = 0; i < 6; ++i) {
    dtr::TaskSpec t;
    t.key = {"infer-aa11", i};
    t.work.compute = 0.05;
    t.work.kernels = {{"conv", 0.2, 2}, {"gemm", 0.1, 1}};
    g.add_task(t);
  }
  const dtr::RunData run = cluster.run({g}, "gpu-test", 0);

  ASSERT_EQ(run.kernels.size(), 6u * 3u);
  // Every kernel's launching thread id matches a task that was executing.
  for (const auto& k : run.kernels) {
    bool matched = false;
    for (const auto& t : run.tasks) {
      if (t.thread_id == k.thread_id && k.queued >= t.start_time - 1e-9 &&
          k.queued <= t.end_time + 1e-9) {
        matched = true;
      }
    }
    EXPECT_TRUE(matched);
  }
  // Task records account the GPU time.
  for (const auto& t : run.tasks) {
    EXPECT_GT(t.gpu_time, 0.4);  // 2x0.2 + 0.1 plus queueing
  }
  // Analysis frame shape.
  const analysis::DataFrame frame = analysis::kernels_frame(run);
  EXPECT_EQ(frame.rows(), 18u);
  EXPECT_GT(frame.sum("duration"), 0.0);
}

TEST(GpuIntegration, DisabledGpuprofYieldsNoKernels) {
  dtr::ClusterConfig config;
  config.job.nodes = 1;
  config.job.workers_per_node = 1;
  config.job.threads_per_worker = 1;
  config.enable_gpuprof = false;
  dtr::Cluster cluster(config);
  dtr::TaskGraph g("gpu-graph");
  dtr::TaskSpec t;
  t.key = {"infer-aa11", 0};
  t.work.compute = 0.01;
  t.work.kernels = {{"conv", 0.2, 1}};
  g.add_task(t);
  const dtr::RunData run = cluster.run({g}, "gpu-off", 0);
  EXPECT_TRUE(run.kernels.empty());
  EXPECT_DOUBLE_EQ(run.tasks.front().gpu_time, 0.0);
}

}  // namespace
}  // namespace recup::gpuprof
