// LDMS-analog tests: periodic sampling on the virtual clock and the
// cluster-integrated system metrics source.
#include <gtest/gtest.h>

#include "analysis/readers.hpp"
#include "dtr/cluster.hpp"
#include "ldms/sampler.hpp"

namespace recup::ldms {
namespace {

TEST(Sampler, PollsAllProvidersOnTheGrid) {
  sim::Engine engine;
  Sampler sampler(engine, SamplerConfig{1.0});
  int calls_a = 0;
  int calls_b = 0;
  sampler.add_provider([&] {
    ++calls_a;
    MetricSample s;
    s.cpu_utilization = 0.5;
    return s;
  });
  sampler.add_provider([&] {
    ++calls_b;
    MetricSample s;
    s.cpu_utilization = 1.0;
    return s;
  });
  sampler.start();
  engine.schedule_at(5.5, [&] { sampler.stop(); });
  engine.run();
  EXPECT_EQ(calls_a, 5);
  EXPECT_EQ(calls_b, 5);
  EXPECT_EQ(sampler.sample_count(), 10u);
  // Node ids assigned by registration order; timestamps on the grid.
  for (const auto& s : sampler.node_series(0)) {
    EXPECT_DOUBLE_EQ(s.cpu_utilization, 0.5);
    EXPECT_NEAR(std::fmod(s.time, 1.0), 0.0, 1e-9);
  }
  const auto means = sampler.mean_utilization();
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 0.5);
  EXPECT_DOUBLE_EQ(means[1], 1.0);
}

TEST(Sampler, CsvHasHeaderAndRows) {
  sim::Engine engine;
  Sampler sampler(engine, SamplerConfig{0.5});
  sampler.add_provider([] { return MetricSample{}; });
  sampler.start();
  engine.schedule_at(2.1, [&] { sampler.stop(); });
  engine.run();
  const std::string csv = sampler.to_csv();
  EXPECT_NE(csv.find("node,time,cpu"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 5);
}

TEST(Sampler, InvalidIntervalRejected) {
  sim::Engine engine;
  EXPECT_THROW(Sampler(engine, SamplerConfig{0.0}), std::invalid_argument);
}

TEST(LdmsIntegration, ClusterCollectsSystemMetrics) {
  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = 3;
  config.enable_ldms = true;
  config.ldms.interval = 0.5;
  dtr::Cluster cluster(config);
  dtr::TaskGraph g("busy");
  for (int i = 0; i < 40; ++i) {
    dtr::TaskSpec t;
    t.key = {"busy-aa11", i};
    t.work.compute = 0.5;
    t.work.output_bytes = 1 << 20;
    g.add_task(t);
  }
  const dtr::RunData run = cluster.run({g}, "ldms", 0);

  ASSERT_FALSE(run.system_metrics.empty());
  // Two nodes sampled each round.
  std::set<std::uint32_t> nodes;
  double peak_cpu = 0.0;
  std::uint64_t last_pfs = 0;
  for (const auto& s : run.system_metrics) {
    nodes.insert(s.node);
    peak_cpu = std::max(peak_cpu, s.cpu_utilization);
    EXPECT_LE(s.cpu_utilization, 1.0);
    EXPECT_GE(s.network_transfers, 0u);
    last_pfs = std::max(last_pfs, s.pfs_ops);
  }
  EXPECT_EQ(nodes.size(), 2u);
  EXPECT_GT(peak_cpu, 0.5);  // the burst saturates the lanes at some point

  const analysis::DataFrame frame = analysis::system_metrics_frame(run);
  EXPECT_EQ(frame.rows(), run.system_metrics.size());
  EXPECT_GT(frame.max("cpu"), 0.5);
}

TEST(LdmsIntegration, DisabledByDefault) {
  dtr::ClusterConfig config;
  config.job.nodes = 1;
  config.job.workers_per_node = 1;
  config.job.threads_per_worker = 1;
  dtr::Cluster cluster(config);
  dtr::TaskGraph g("one");
  dtr::TaskSpec t;
  t.key = {"t-aa11", 0};
  t.work.compute = 0.01;
  g.add_task(t);
  const dtr::RunData run = cluster.run({g}, "noldms", 0);
  EXPECT_TRUE(run.system_metrics.empty());
}

}  // namespace
}  // namespace recup::ldms
