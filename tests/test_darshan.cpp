// Unit tests for the Darshan-analog: POSIX counters, DXT tracing with
// thread ids, buffer-limit truncation, log format round trip, report API.
#include <gtest/gtest.h>

#include <filesystem>

#include "darshan/heatmap.hpp"
#include "darshan/log_format.hpp"
#include "darshan/report.hpp"
#include "darshan/runtime.hpp"

namespace recup::darshan {
namespace {

TEST(Runtime, PosixCountersAccumulate) {
  Runtime rt(3, "nid001");
  rt.on_open("/f", 11, 0.0, 0.001);
  rt.on_read("/f", 11, 0, 4096, 0.01, 0.02);
  rt.on_read("/f", 11, 4096, 4096, 0.03, 0.05);
  rt.on_write("/f", 12, 0, 100, 0.06, 0.07);
  rt.on_close("/f", 11, 0.08, 0.081);

  const auto records = rt.posix_records();
  ASSERT_EQ(records.size(), 1u);
  const PosixRecord& rec = records[0];
  EXPECT_EQ(rec.file_path, "/f");
  EXPECT_EQ(rec.process_id, 3u);
  EXPECT_EQ(rec.hostname, "nid001");
  EXPECT_EQ(rec.opens, 1u);
  EXPECT_EQ(rec.reads, 2u);
  EXPECT_EQ(rec.writes, 1u);
  EXPECT_EQ(rec.bytes_read, 8192u);
  EXPECT_EQ(rec.bytes_written, 100u);
  EXPECT_EQ(rec.max_byte_read, 8192u);
  EXPECT_NEAR(rec.read_time, 0.03, 1e-12);
  EXPECT_NEAR(rec.write_time, 0.01, 1e-12);
  EXPECT_GT(rec.meta_time, 0.0);
  EXPECT_DOUBLE_EQ(rec.first_read, 0.01);
  EXPECT_DOUBLE_EQ(rec.last_write, 0.07);
  EXPECT_EQ(rec.read_sizes.bucket(2), 2u);  // 4 KiB ops in 1K_10K
}

TEST(Runtime, DxtCapturesThreadIds) {
  Runtime rt(0, "host");
  rt.on_read("/f", 0xAA, 0, 10, 0.0, 0.1);
  rt.on_write("/f", 0xBB, 0, 20, 0.2, 0.3);
  const auto records = rt.dxt_records();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].segments.size(), 2u);
  EXPECT_EQ(records[0].segments[0].thread_id, 0xAAu);
  EXPECT_EQ(records[0].segments[0].op, IoOp::kRead);
  EXPECT_EQ(records[0].segments[1].thread_id, 0xBBu);
  EXPECT_EQ(records[0].segments[1].op, IoOp::kWrite);
}

TEST(Runtime, ModulesCanBeDisabled) {
  RuntimeConfig config;
  config.enable_posix = false;
  Runtime rt(0, "host", config);
  rt.on_read("/f", 1, 0, 10, 0.0, 0.1);
  EXPECT_TRUE(rt.posix_records().empty());
  EXPECT_EQ(rt.dxt_records().size(), 1u);

  RuntimeConfig config2;
  config2.enable_dxt = false;
  Runtime rt2(0, "host", config2);
  rt2.on_read("/f", 1, 0, 10, 0.0, 0.1);
  EXPECT_TRUE(rt2.dxt_records().empty());
  EXPECT_EQ(rt2.posix_records().size(), 1u);
}

TEST(Dxt, PerRecordTruncation) {
  DxtConfig config;
  config.max_segments_per_record = 3;
  DxtModule dxt(config);
  for (int i = 0; i < 5; ++i) {
    dxt.record(0, "h", "/f", DxtSegment{IoOp::kRead, 0, 1, 0.0, 0.1, 1});
  }
  const auto records = dxt.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].segments.size(), 3u);
  EXPECT_TRUE(records[0].truncated);
  EXPECT_EQ(records[0].dropped_segments, 2u);
  EXPECT_EQ(dxt.total_dropped(), 2u);
}

TEST(Dxt, MemoryBudgetSharedWithRecordOverhead) {
  // Budget 10 units, overhead 2/record: 2 files cost 4 units, leaving 6
  // segment slots in total (the paper's footnote-9 mechanism).
  DxtConfig config;
  config.memory_budget_units = 10;
  config.record_overhead_units = 2;
  DxtModule dxt(config);
  for (int i = 0; i < 10; ++i) {
    const std::string file = i % 2 == 0 ? "/a" : "/b";
    dxt.record(0, "h", file, DxtSegment{IoOp::kRead, 0, 1, 0.0, 0.1, 1});
  }
  EXPECT_EQ(dxt.total_segments(), 6u);
  EXPECT_EQ(dxt.total_dropped(), 4u);
}

TEST(Dxt, BudgetBlocksNewRecordsEntirely) {
  DxtConfig config;
  config.memory_budget_units = 3;  // one record (2) + one segment (1)
  config.record_overhead_units = 2;
  DxtModule dxt(config);
  dxt.record(0, "h", "/a", DxtSegment{IoOp::kRead, 0, 1, 0.0, 0.1, 1});
  dxt.record(0, "h", "/b", DxtSegment{IoOp::kRead, 0, 1, 0.0, 0.1, 1});
  // /b gets only an empty, truncated marker record.
  const auto records = dxt.records();
  ASSERT_EQ(records.size(), 2u);
  const auto& b = records[0].file_path == "/b" ? records[0] : records[1];
  EXPECT_TRUE(b.segments.empty());
  EXPECT_TRUE(b.truncated);
  EXPECT_EQ(dxt.total_dropped(), 1u);
  EXPECT_EQ(dxt.total_segments(), 1u);
}

TEST(Dxt, BudgetIsPerProcess) {
  DxtConfig config;
  config.memory_budget_units = 3;
  config.record_overhead_units = 2;
  DxtModule dxt(config);
  dxt.record(0, "h", "/a", DxtSegment{IoOp::kRead, 0, 1, 0.0, 0.1, 1});
  dxt.record(1, "h", "/a", DxtSegment{IoOp::kRead, 0, 1, 0.0, 0.1, 1});
  EXPECT_EQ(dxt.total_segments(), 2u);  // separate budgets
}

LogFile make_log() {
  LogFile log;
  log.job.job_id = "job-42";
  log.job.executable = "wf";
  log.job.nprocs = 8;
  log.job.start_time = 0.0;
  log.job.end_time = 123.5;
  log.job.run_seed = 999;

  Runtime rt(2, "nid007");
  rt.on_open("/data/x", 5, 0.0, 0.001);
  rt.on_read("/data/x", 5, 0, 4 << 20, 0.01, 0.2);
  rt.on_write("/out/y", 6, 0, 1024, 0.3, 0.31);
  log.posix = rt.posix_records();
  log.dxt = rt.dxt_records();
  return log;
}

TEST(LogFormat, SerializeRoundTrip) {
  const LogFile log = make_log();
  const LogFile back = deserialize_log(serialize_log(log));
  EXPECT_EQ(back.job.job_id, "job-42");
  EXPECT_EQ(back.job.nprocs, 8u);
  EXPECT_EQ(back.job.run_seed, 999u);
  ASSERT_EQ(back.posix.size(), 2u);
  ASSERT_EQ(back.dxt.size(), 2u);
  EXPECT_EQ(back.posix[0].file_path, "/data/x");
  EXPECT_EQ(back.posix[0].reads, 1u);
  EXPECT_EQ(back.posix[0].bytes_read, static_cast<std::uint64_t>(4 << 20));
  // Histograms round-trip by bucket count.
  EXPECT_EQ(back.posix[0].read_sizes.bucket(6), 1u);  // 4M_10M
  ASSERT_EQ(back.dxt[0].segments.size(), 1u);
  EXPECT_EQ(back.dxt[0].segments[0].thread_id, 5u);
}

TEST(LogFormat, FileRoundTrip) {
  const std::string path =
      std::filesystem::temp_directory_path() / "recup_test.rdshan";
  write_log(path, make_log());
  const LogFile back = read_log(path);
  EXPECT_EQ(back.posix.size(), 2u);
  std::filesystem::remove(path);
}

TEST(LogFormat, CorruptionDetected) {
  std::string bytes = serialize_log(make_log());
  EXPECT_THROW(deserialize_log(bytes.substr(0, bytes.size() / 2)),
               LogFormatError);
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_log(bytes), LogFormatError);
  EXPECT_THROW(deserialize_log(serialize_log(make_log()) + "junk"),
               LogFormatError);
  EXPECT_THROW(read_log("/nonexistent.rdshan"), LogFormatError);
}

TEST(Report, TotalsAndFiles) {
  Report report({make_log(), make_log()});
  const IoTotals totals = report.totals();
  EXPECT_EQ(totals.reads, 2u);
  EXPECT_EQ(totals.writes, 2u);
  EXPECT_EQ(totals.operations(), 4u);
  EXPECT_GT(totals.io_time(), 0.0);
  EXPECT_EQ(report.distinct_files().size(), 2u);
  EXPECT_FALSE(report.any_truncated());
}

TEST(Report, ThreadSummaries) {
  Report report({make_log()});
  const auto threads = report.thread_summaries();
  ASSERT_EQ(threads.size(), 2u);  // threads 5 and 6
  const auto& t5 = threads[0].thread_id == 5 ? threads[0] : threads[1];
  EXPECT_EQ(t5.reads, 1u);
  EXPECT_EQ(t5.writes, 0u);
  EXPECT_EQ(t5.bytes_read, static_cast<std::uint64_t>(4 << 20));
  EXPECT_GT(t5.busy_time, 0.0);
}

TEST(Report, SegmentsSortedByStart) {
  Report report({make_log()});
  const auto segments = report.all_segments_sorted();
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_LE(segments[0].second.start, segments[1].second.start);
}

TEST(Report, SizeHistograms) {
  Report report({make_log()});
  EXPECT_EQ(report.read_size_histogram().bucket(6), 1u);
  EXPECT_EQ(report.write_size_histogram().bucket(2), 1u);  // 1 KiB in 1K_10K
}

TEST(Heatmap, SingleBinAccumulation) {
  Heatmap h(HeatmapConfig{1.0, 100});
  h.add(0, IoOp::kRead, 1000, 0.2, 0.8);
  h.add(0, IoOp::kRead, 500, 0.1, 0.9);
  h.add(0, IoOp::kWrite, 200, 0.5, 0.6);
  EXPECT_DOUBLE_EQ(h.bytes(0, IoOp::kRead, 0), 1500.0);
  EXPECT_DOUBLE_EQ(h.bytes(0, IoOp::kWrite, 0), 200.0);
  EXPECT_EQ(h.bin_count(), 1u);
}

TEST(Heatmap, SpansSpreadProportionally) {
  Heatmap h(HeatmapConfig{1.0, 100});
  // 4 bytes over [0.5, 2.5): 0.5s in bin0, 1s in bin1, 0.5s in bin2.
  h.add(3, IoOp::kRead, 4, 0.5, 2.5);
  EXPECT_NEAR(h.bytes(3, IoOp::kRead, 0), 1.0, 1e-9);
  EXPECT_NEAR(h.bytes(3, IoOp::kRead, 1), 2.0, 1e-9);
  EXPECT_NEAR(h.bytes(3, IoOp::kRead, 2), 1.0, 1e-9);
  EXPECT_NEAR(h.grand_total(IoOp::kRead), 4.0, 1e-9);
}

TEST(Heatmap, ZeroDurationOpLandsInOneBin) {
  Heatmap h;
  h.add(0, IoOp::kWrite, 100, 5.0, 5.0);
  EXPECT_DOUBLE_EQ(h.bytes(0, IoOp::kWrite, 5), 100.0);
}

TEST(Heatmap, MaxBinsFoldsTail) {
  Heatmap h(HeatmapConfig{1.0, 4});
  h.add(0, IoOp::kRead, 10, 100.0, 100.5);  // beyond max_bins
  EXPECT_DOUBLE_EQ(h.bytes(0, IoOp::kRead, 3), 10.0);
  EXPECT_EQ(h.bin_count(), 4u);
}

TEST(Heatmap, FromDxtConservesBytes) {
  Runtime rt(1, "host");
  rt.on_read("/a", 7, 0, 4096, 0.1, 0.3);
  rt.on_read("/a", 7, 4096, 4096, 1.1, 1.2);
  rt.on_write("/b", 8, 0, 1024, 2.0, 2.4);
  const Heatmap h = Heatmap::from_dxt(rt.dxt_records());
  EXPECT_NEAR(h.grand_total(IoOp::kRead), 8192.0, 1e-6);
  EXPECT_NEAR(h.grand_total(IoOp::kWrite), 1024.0, 1e-6);
  EXPECT_NEAR(h.total_bytes(IoOp::kRead, 0) + h.total_bytes(IoOp::kRead, 1),
              8192.0, 1e-6);
}

TEST(Heatmap, RenderProducesRowPerProcess) {
  Heatmap h;
  h.add(0, IoOp::kRead, 1 << 20, 0.0, 1.0);
  h.add(2, IoOp::kWrite, 1 << 10, 3.0, 4.0);
  const std::string rendered = h.render(20);
  EXPECT_NE(rendered.find("rank 0"), std::string::npos);
  EXPECT_NE(rendered.find("rank 2"), std::string::npos);
}

TEST(Heatmap, InvalidConfigRejected) {
  EXPECT_THROW(Heatmap(HeatmapConfig{0.0, 10}), std::invalid_argument);
  EXPECT_THROW(Heatmap(HeatmapConfig{1.0, 0}), std::invalid_argument);
  Heatmap h;
  EXPECT_THROW(h.add(0, IoOp::kRead, 1, 2.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace recup::darshan
