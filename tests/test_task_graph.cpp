// Unit tests for the task model: keys, prefixes, graph validation, and
// topological ordering.
#include <gtest/gtest.h>

#include "dtr/task.hpp"

namespace recup::dtr {
namespace {

TEST(TaskKey, ToStringFormats) {
  EXPECT_EQ((TaskKey{"getitem-24266c", 63}).to_string(),
            "('getitem-24266c', 63)");
  EXPECT_EQ((TaskKey{"scalar-task", -1}).to_string(), "scalar-task");
}

TEST(TaskKey, PrefixStripsHashToken) {
  EXPECT_EQ((TaskKey{"getitem-24266c", 0}).prefix(), "getitem");
  EXPECT_EQ((TaskKey{"read_parquet-fused-assign-24266c", 0}).prefix(),
            "read_parquet-fused-assign");
  // Non-hex tail is part of the name.
  EXPECT_EQ((TaskKey{"random_split_take", 0}).prefix(), "random_split_take");
  EXPECT_EQ((TaskKey{"no-hash-Z", 0}).prefix(), "no-hash-Z");
}

TEST(TaskKey, Ordering) {
  const TaskKey a{"a", 0};
  const TaskKey b{"a", 1};
  const TaskKey c{"b", 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (TaskKey{"a", 0}));
}

TEST(TaskGraph, AddAndLookup) {
  TaskGraph g("g");
  TaskSpec t;
  t.key = {"x-0aa", 1};
  g.add_task(t);
  EXPECT_TRUE(g.contains({"x-0aa", 1}));
  EXPECT_FALSE(g.contains({"x-0aa", 2}));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.task({"x-0aa", 1}).key.index, 1);
  EXPECT_THROW(g.task({"y", 0}), std::out_of_range);
  EXPECT_THROW(g.add_task(t), std::invalid_argument);  // duplicate
}

TEST(TaskGraph, ValidateDetectsMissingDependency) {
  TaskGraph g("g");
  TaskSpec t;
  t.key = {"a", 0};
  t.dependencies.push_back({"missing", 0});
  g.add_task(t);
  EXPECT_THROW(g.validate(), std::invalid_argument);
  // External keys satisfy the dependency.
  g.validate({TaskKey{"missing", 0}});
}

TEST(TaskGraph, ValidateDetectsCycle) {
  TaskGraph g("g");
  TaskSpec a;
  a.key = {"a", 0};
  a.dependencies.push_back({"b", 0});
  TaskSpec b;
  b.key = {"b", 0};
  b.dependencies.push_back({"a", 0});
  g.add_task(a);
  g.add_task(b);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraph, TopologicalOrderRespectsDependencies) {
  TaskGraph g("g");
  // Chain c -> b -> a plus independent d.
  TaskSpec a;
  a.key = {"a", 0};
  TaskSpec b;
  b.key = {"b", 0};
  b.dependencies.push_back(a.key);
  TaskSpec c;
  c.key = {"c", 0};
  c.dependencies.push_back(b.key);
  TaskSpec d;
  d.key = {"d", 0};
  g.add_task(c);
  g.add_task(a);
  g.add_task(d);
  g.add_task(b);

  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  const auto pos = [&](const TaskKey& k) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == k) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(a.key), pos(b.key));
  EXPECT_LT(pos(b.key), pos(c.key));
}

TEST(TaskGraph, SelfDependencyIsCycle) {
  TaskGraph g("g");
  TaskSpec a;
  a.key = {"a", 0};
  a.dependencies.push_back(a.key);
  g.add_task(a);
  EXPECT_THROW(g.topological_order(), std::invalid_argument);
}

TEST(TaskStates, NamesAreStable) {
  EXPECT_STREQ(to_string(SchedulerTaskState::kProcessing), "processing");
  EXPECT_STREQ(to_string(SchedulerTaskState::kMemory), "memory");
  EXPECT_STREQ(to_string(SchedulerTaskState::kQueued), "queued");
  EXPECT_STREQ(to_string(WorkerTaskState::kExecuting), "executing");
  EXPECT_STREQ(to_string(WorkerTaskState::kFetchingDeps), "fetching-deps");
}

}  // namespace
}  // namespace recup::dtr
