// Tests for the "fully online" future-work features: the Darshan-to-Mofka
// streaming bridge and the adaptive capture plugin.
#include <gtest/gtest.h>

#include <algorithm>

#include "darshan/report.hpp"
#include "dtr/adaptive.hpp"
#include "dtr/cluster.hpp"
#include "dtr/darshan_bridge.hpp"

namespace recup::dtr {
namespace {

ClusterConfig bridge_config() {
  ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = 21;
  config.enable_darshan_streaming = true;
  config.darshan_bridge.interval = 0.5;
  return config;
}

RunData run_io_workflow(Cluster& cluster) {
  cluster.vfs().register_file("/data/stream", 32ULL << 20);
  TaskGraph g("io");
  for (int i = 0; i < 24; ++i) {
    TaskSpec t;
    t.key = {"streamer-ab12", i};
    t.work.compute = 0.05;
    t.work.reads.push_back({"/data/stream",
                            static_cast<std::uint64_t>(i % 16) * (2 << 20),
                            1 << 20, false});
    t.work.writes.push_back({"/out/streamed",
                             static_cast<std::uint64_t>(i) * 4096, 4096,
                             true});
    g.add_task(t);
  }
  return cluster.run({g}, "bridge-test", 0);
}

TEST(DarshanBridge, StreamedRecordsMatchPostHocCollection) {
  Cluster cluster(bridge_config());
  const RunData run = run_io_workflow(cluster);
  ASSERT_NE(cluster.darshan_bridge(), nullptr);
  EXPECT_GT(cluster.darshan_bridge()->events_pushed(), 0u);
  EXPECT_GT(cluster.darshan_bridge()->snapshots_taken(), 1u);

  const auto streamed = read_darshan_topic(cluster.broker());

  // Totals through the streamed path equal the post-hoc logs.
  darshan::Report direct(run.darshan_logs);
  darshan::Report online(streamed);
  EXPECT_EQ(online.totals().reads, direct.totals().reads);
  EXPECT_EQ(online.totals().writes, direct.totals().writes);
  EXPECT_EQ(online.totals().bytes_read, direct.totals().bytes_read);
  EXPECT_EQ(online.totals().bytes_written, direct.totals().bytes_written);
  EXPECT_EQ(online.distinct_files(), direct.distinct_files());

  // DXT segments survive with their thread ids (the join key).
  std::size_t direct_segments = 0;
  for (const auto& log : run.darshan_logs) {
    for (const auto& rec : log.dxt) direct_segments += rec.segments.size();
  }
  std::size_t online_segments = 0;
  for (const auto& log : streamed) {
    for (const auto& rec : log.dxt) {
      online_segments += rec.segments.size();
      for (const auto& seg : rec.segments) {
        EXPECT_NE(seg.thread_id, 0u);
      }
    }
  }
  EXPECT_EQ(online_segments, direct_segments);
}

TEST(DarshanBridge, DisabledByDefault) {
  ClusterConfig config = bridge_config();
  config.enable_darshan_streaming = false;
  Cluster cluster(config);
  run_io_workflow(cluster);
  EXPECT_EQ(cluster.darshan_bridge(), nullptr);
  EXPECT_FALSE(cluster.broker().topic_exists("darshan_records"));
}

// --- Adaptive capture ---------------------------------------------------------

class CountingPlugin final : public WorkerPlugin {
 public:
  void on_transition(const TransitionRecord&) override { ++transitions; }
  void on_task_done(const TaskRecord&) override { ++tasks; }
  void on_incoming_transfer(const CommRecord&) override { ++comms; }
  void on_warning(const WarningRecord&) override { ++warnings; }

  int transitions = 0;
  int tasks = 0;
  int comms = 0;
  int warnings = 0;
};

TransitionRecord transition_at(TimePoint t) {
  TransitionRecord r;
  r.key = {"x-aaaa", 0};
  r.time = t;
  return r;
}

TEST(AdaptiveCapture, ForwardsEverythingUnderBudget) {
  CountingPlugin inner;
  AdaptiveCaptureConfig config;
  config.transitions_per_window = 100;
  AdaptiveCapturePlugin adaptive(inner, config);
  for (int i = 0; i < 50; ++i) {
    adaptive.on_transition(transition_at(0.01 * i));
  }
  EXPECT_EQ(inner.transitions, 50);
  EXPECT_EQ(adaptive.sampled_out(), 0u);
  EXPECT_FALSE(adaptive.throttling());
}

TEST(AdaptiveCapture, ThrottlesBursts) {
  CountingPlugin inner;
  AdaptiveCaptureConfig config;
  config.transitions_per_window = 100;
  config.sample_stride = 10;
  AdaptiveCapturePlugin adaptive(inner, config);
  for (int i = 0; i < 1000; ++i) {
    adaptive.on_transition(transition_at(0.0005 * i));  // all in one window
  }
  EXPECT_TRUE(adaptive.throttling());
  // First 100 pass, then ~1 in 10 of the remaining 900.
  EXPECT_NEAR(inner.transitions, 190, 15);
  EXPECT_GT(adaptive.sampled_out(), 700u);
}

TEST(AdaptiveCapture, WindowRollRestoresFullCapture) {
  CountingPlugin inner;
  AdaptiveCaptureConfig config;
  config.transitions_per_window = 10;
  config.window = 1.0;
  AdaptiveCapturePlugin adaptive(inner, config);
  for (int i = 0; i < 100; ++i) {
    adaptive.on_transition(transition_at(0.001 * i));
  }
  EXPECT_TRUE(adaptive.throttling());
  adaptive.on_transition(transition_at(2.0));  // new window
  EXPECT_FALSE(adaptive.throttling());
}

TEST(AdaptiveCapture, WarningForcesFullFidelity) {
  CountingPlugin inner;
  AdaptiveCaptureConfig config;
  config.transitions_per_window = 10;
  config.full_fidelity_after_warning = 100.0;
  AdaptiveCapturePlugin adaptive(inner, config);

  WarningRecord warning;
  warning.kind = "event_loop_unresponsive";
  warning.time = 0.0;
  adaptive.on_warning(warning);

  for (int i = 0; i < 500; ++i) {
    adaptive.on_transition(transition_at(0.001 * i));
  }
  // Over budget but inside the full-fidelity window: nothing sampled out.
  EXPECT_EQ(inner.transitions, 500);
  EXPECT_EQ(adaptive.sampled_out(), 0u);
}

TEST(AdaptiveCapture, NeverSamplesCompletionsOrWarnings) {
  CountingPlugin inner;
  AdaptiveCaptureConfig config;
  config.transitions_per_window = 1;
  AdaptiveCapturePlugin adaptive(inner, config);
  for (int i = 0; i < 50; ++i) {
    adaptive.on_transition(transition_at(0.001 * i));
    TaskRecord task;
    task.key = {"x-aaaa", i};
    adaptive.on_task_done(task);
    CommRecord comm;
    adaptive.on_incoming_transfer(comm);
  }
  EXPECT_EQ(inner.tasks, 50);
  EXPECT_EQ(inner.comms, 50);
  EXPECT_LT(inner.transitions, 50);
}

}  // namespace
}  // namespace recup::dtr
