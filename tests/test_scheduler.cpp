// Scheduler tests: state-machine invariants, locality-aware placement,
// queueing under saturation, retries, and work stealing.
#include <gtest/gtest.h>

#include <map>

#include "dtr_fixture.hpp"

namespace recup::dtr {
namespace {

using testing::MiniCluster;
using testing::diamond_graph;
using testing::independent_graph;

TEST(Scheduler, RunsDiamondToCompletion) {
  MiniCluster mini;
  EXPECT_TRUE(mini.run_graph(diamond_graph()));
  EXPECT_EQ(mini.scheduler.tasks_in_memory(), 4u);
  EXPECT_EQ(mini.scheduler.task_records().size(), 4u);
  EXPECT_EQ(mini.scheduler.erred_tasks(), 0u);
}

TEST(Scheduler, EveryTaskReachesMemoryExactlyOnce) {
  MiniCluster mini;
  mini.run_graph(independent_graph(50));
  std::map<std::string, int> memory_transitions;
  for (const auto& t : mini.scheduler.transitions()) {
    if (t.to_state == "memory") ++memory_transitions[t.key.to_string()];
  }
  EXPECT_EQ(memory_transitions.size(), 50u);
  for (const auto& [key, count] : memory_transitions) {
    EXPECT_EQ(count, 1) << key;
  }
}

TEST(Scheduler, TransitionsFormValidChains) {
  MiniCluster mini;
  mini.run_graph(diamond_graph());
  // Scheduler-side transitions for each task: released->waiting ->
  // (queued ->)? processing -> memory, with matching from/to chaining.
  std::map<std::string, std::string> last_state;
  for (const auto& t : mini.scheduler.transitions()) {
    const std::string key = t.key.to_string();
    if (last_state.count(key)) {
      EXPECT_EQ(last_state[key], t.from_state)
          << "broken chain for " << key << " at stimulus " << t.stimulus;
    } else {
      EXPECT_EQ(t.from_state, "released");
    }
    last_state[key] = t.to_state;
  }
  for (const auto& [key, state] : last_state) {
    EXPECT_EQ(state, "memory") << key;
  }
}

TEST(Scheduler, DependentWaitsForDependency) {
  MiniCluster mini;
  mini.run_graph(diamond_graph(/*compute=*/0.05));
  const auto& records = mini.scheduler.task_records();
  std::map<std::string, const TaskRecord*> by_key;
  for (const auto& r : records) by_key[r.key.to_string()] = &r;
  const auto* source = by_key.at("('source-abc123', 0)");
  const auto* sink = by_key.at("('sink-abc123', 0)");
  EXPECT_GE(sink->start_time, source->end_time);
}

TEST(Scheduler, SaturationQueuesTasks) {
  // 4 workers x 2 threads, saturation factor 2 => capacity 16 in flight;
  // 200 independent tasks must pass through the queued state.
  MiniCluster mini;
  mini.run_graph(independent_graph(200, 0.05));
  bool saw_queued = false;
  for (const auto& t : mini.scheduler.transitions()) {
    if (t.to_state == "queued") saw_queued = true;
    if (t.stimulus == "queue-pop") {
      EXPECT_EQ(t.to_state, "processing");
    }
  }
  EXPECT_TRUE(saw_queued);
  EXPECT_EQ(mini.scheduler.tasks_in_memory(), 200u);
}

TEST(Scheduler, LocalityPrefersDataHolder) {
  // With a large dependency, the dependent should land on the worker that
  // holds the data (no transfer) in the common case.
  MiniCluster mini;
  TaskGraph g("locality");
  TaskSpec big;
  big.key = {"producer-aaa", 0};
  big.work.compute = 0.01;
  big.work.output_bytes = 512ULL << 20;  // 512 MiB: expensive to move
  g.add_task(big);
  TaskSpec consumer;
  consumer.key = {"consumer-bbb", 0};
  consumer.dependencies.push_back(big.key);
  consumer.work.compute = 0.01;
  consumer.work.output_bytes = 1024;
  g.add_task(consumer);
  mini.run_graph(g);

  const auto& records = mini.scheduler.task_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].worker, records[1].worker);
  // And no transfers happened.
  for (const auto& w : mini.workers) {
    EXPECT_TRUE(w->incoming_transfers().empty());
  }
}

TEST(Scheduler, RetriesFailedTasksUntilSuccessOrCap) {
  MiniCluster mini;
  TaskGraph g("flaky");
  TaskSpec t;
  t.key = {"flaky-f00", 0};
  t.work.compute = 0.001;
  t.work.output_bytes = 10;
  t.work.failure_probability = 0.5;
  g.add_task(t);
  const bool done = mini.run_graph(g);
  EXPECT_TRUE(done);
  // Either it eventually succeeded (memory) or exhausted retries (erred).
  const bool in_memory = mini.scheduler.in_memory(t.key);
  if (!in_memory) {
    EXPECT_EQ(mini.scheduler.erred_tasks(), 1u);
  }
  bool saw_retry = false;
  for (const auto& tr : mini.scheduler.transitions()) {
    if (tr.stimulus == "retry") saw_retry = true;
  }
  // With p=0.5 the first attempt fails half the time; not guaranteed, so
  // only check consistency: a retry implies an earlier erred transition.
  if (saw_retry) {
    bool saw_erred = false;
    for (const auto& tr : mini.scheduler.transitions()) {
      if (tr.to_state == "erred") saw_erred = true;
    }
    EXPECT_TRUE(saw_erred);
  }
}

TEST(Scheduler, AlwaysFailingTaskErrsTerminally) {
  MiniCluster mini;
  TaskGraph g("doomed");
  TaskSpec t;
  t.key = {"doomed-d00", 0};
  t.work.compute = 0.001;
  t.work.failure_probability = 1.0;
  g.add_task(t);
  EXPECT_TRUE(mini.run_graph(g));  // graph completes via the erred path
  EXPECT_EQ(mini.scheduler.erred_tasks(), 1u);
  EXPECT_FALSE(mini.scheduler.in_memory(t.key));
}

TEST(Scheduler, WorkStealingMovesBacklog) {
  // Imbalance recipe: a single 256 MiB result pins most dependents to its
  // holder (locality), a high saturation factor lets the backlog build on
  // that worker, and once other workers drain — and hold fetched replicas,
  // making the steal's transfer cost zero — idle thieves steal the backlog.
  SchedulerConfig sched;
  sched.work_stealing = true;
  sched.work_stealing_interval = 0.05;
  sched.saturation_factor = 100.0;  // dispatch everything immediately
  MiniCluster mini(2, 2, 2, WorkerConfig{}, sched);
  TaskGraph g("imbalanced");
  TaskSpec source;
  source.key = {"src-a11", 0};
  source.work.compute = 0.001;
  source.work.output_bytes = 256ULL << 20;
  g.add_task(source);
  for (int i = 0; i < 24; ++i) {
    TaskSpec t;
    t.key = {"dep-b22", i};
    t.dependencies.push_back(source.key);
    t.work.compute = 1.0;
    t.work.output_bytes = 512;
    g.add_task(t);
  }
  EXPECT_TRUE(mini.run_graph(g));
  EXPECT_FALSE(mini.scheduler.steals().empty());
  // Stolen tasks are marked in their records.
  bool any_stolen_record = false;
  for (const auto& r : mini.scheduler.task_records()) {
    if (r.stolen) any_stolen_record = true;
  }
  EXPECT_TRUE(any_stolen_record);
  // Work ended up spread across multiple workers.
  std::set<WorkerId> used;
  for (const auto& r : mini.scheduler.task_records()) used.insert(r.worker);
  EXPECT_GT(used.size(), 1u);
}

TEST(Scheduler, StealingCanBeDisabled) {
  SchedulerConfig sched;
  sched.work_stealing = false;
  MiniCluster mini(2, 2, 2, WorkerConfig{}, sched);
  TaskGraph g("imbalanced");
  TaskSpec source;
  source.key = {"src-a11", 0};
  source.work.compute = 0.001;
  source.work.output_bytes = 1024;
  g.add_task(source);
  for (int i = 0; i < 100; ++i) {
    TaskSpec t;
    t.key = {"dep-b22", i};
    t.dependencies.push_back(source.key);
    t.work.compute = 0.05;
    g.add_task(t);
  }
  EXPECT_TRUE(mini.run_graph(g));
  EXPECT_TRUE(mini.scheduler.steals().empty());
}

TEST(Scheduler, PriorityTasksRunFirst) {
  // One worker, one lane: execution order is fully observable. Low-priority
  // value tasks must run before the default-priority bulk even though they
  // sort later by key.
  MiniCluster mini(1, 1, 1);
  TaskGraph g("prio");
  for (int i = 0; i < 10; ++i) {
    TaskSpec t;
    t.key = {"bulk-aa00", i};
    t.work.compute = 0.01;
    g.add_task(t);
  }
  for (int i = 0; i < 3; ++i) {
    TaskSpec t;
    t.key = {"zzz-reader-bb11", i};  // sorts after "bulk" by key
    t.priority = -1;
    t.work.compute = 0.01;
    g.add_task(t);
  }
  EXPECT_TRUE(mini.run_graph(g));
  const auto& records = mini.scheduler.task_records();
  ASSERT_EQ(records.size(), 13u);
  // The three readers are among the earliest starters.
  std::vector<std::pair<double, std::string>> by_start;
  for (const auto& r : records) {
    by_start.emplace_back(r.start_time, r.key.group);
  }
  std::sort(by_start.begin(), by_start.end());
  int readers_in_first_three = 0;
  for (int i = 0; i < 3; ++i) {
    if (by_start[static_cast<std::size_t>(i)].second == "zzz-reader-bb11") {
      ++readers_in_first_three;
    }
  }
  EXPECT_EQ(readers_in_first_three, 3);
}

TEST(Scheduler, ResubmittingSameKeyThrows) {
  MiniCluster mini;
  mini.run_graph(independent_graph(1));
  EXPECT_THROW(mini.scheduler.submit_graph(independent_graph(1), nullptr),
               std::invalid_argument);
}

TEST(Scheduler, ReleasableKeysAreForgottenAndFreed) {
  MiniCluster mini(1, 1, 2);
  TaskGraph g("release");
  TaskSpec producer;
  producer.key = {"intermediate-aa00", 0};
  producer.work.compute = 0.01;
  producer.work.output_bytes = 10 << 20;
  producer.work.releasable = true;
  g.add_task(producer);
  TaskSpec keeper;
  keeper.key = {"kept-bb11", 0};
  keeper.work.compute = 0.01;
  keeper.work.output_bytes = 5 << 20;
  // not releasable: stays in memory
  g.add_task(keeper);
  TaskSpec consumer;
  consumer.key = {"consumer-cc22", 0};
  consumer.dependencies.push_back(producer.key);
  consumer.work.compute = 0.01;
  consumer.work.output_bytes = 1024;
  g.add_task(consumer);
  EXPECT_TRUE(mini.run_graph(g));

  // The intermediate was dropped from worker memory; the rest remain.
  bool intermediate_held = false;
  bool keeper_held = false;
  for (const auto& w : mini.workers) {
    intermediate_held |= w->has_data(producer.key);
    keeper_held |= w->has_data(keeper.key);
  }
  EXPECT_FALSE(intermediate_held);
  EXPECT_TRUE(keeper_held);
  EXPECT_FALSE(mini.scheduler.in_memory(producer.key));
  EXPECT_TRUE(mini.scheduler.in_memory(keeper.key));

  // Transitions show the release chain.
  bool released = false;
  bool forgotten = false;
  for (const auto& tr : mini.scheduler.transitions()) {
    if (tr.key == producer.key && tr.to_state == "released") released = true;
    if (tr.key == producer.key && tr.to_state == "forgotten") {
      forgotten = true;
    }
  }
  EXPECT_TRUE(released);
  EXPECT_TRUE(forgotten);

  // Depending on the forgotten key from a later graph is an error.
  TaskGraph g2("late");
  TaskSpec late;
  late.key = {"late-dd33", 0};
  late.dependencies.push_back(producer.key);
  g2.add_task(late);
  EXPECT_THROW(mini.scheduler.submit_graph(g2, nullptr),
               std::invalid_argument);
}

TEST(Scheduler, ReleasableLeafIsKeptUntilItGainsDependents) {
  // A releasable task with no dependents yet must NOT be released at
  // completion — a later graph may still consume it.
  MiniCluster mini(1, 1, 2);
  TaskGraph g("leaf");
  TaskSpec leaf;
  leaf.key = {"leaf-aa00", 0};
  leaf.work.compute = 0.01;
  leaf.work.output_bytes = 1 << 20;
  leaf.work.releasable = true;
  g.add_task(leaf);
  EXPECT_TRUE(mini.run_graph(g));
  EXPECT_TRUE(mini.scheduler.in_memory(leaf.key));

  TaskGraph g2("late");
  TaskSpec late;
  late.key = {"late-bb11", 0};
  late.dependencies.push_back(leaf.key);
  late.work.compute = 0.01;
  g2.add_task(late);
  bool done = false;
  mini.scheduler.submit_graph(g2, [&](const std::string&) { done = true; });
  mini.engine.run();
  EXPECT_TRUE(done);
  // Now consumed: released.
  EXPECT_FALSE(mini.scheduler.in_memory(leaf.key));
}

TEST(Scheduler, CrossGraphDependenciesUsePersistedResults) {
  MiniCluster mini;
  TaskGraph g1("g1");
  TaskSpec a;
  a.key = {"stage1-aa1", 0};
  a.work.compute = 0.01;
  a.work.output_bytes = 2048;
  g1.add_task(a);
  EXPECT_TRUE(mini.run_graph(g1));

  TaskGraph g2("g2");
  TaskSpec b;
  b.key = {"stage2-bb2", 0};
  b.dependencies.push_back(a.key);  // external: lives in distributed memory
  b.work.compute = 0.01;
  g2.add_task(b);
  bool done = false;
  mini.scheduler.submit_graph(g2, [&](const std::string&) { done = true; });
  mini.engine.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(mini.scheduler.in_memory(b.key));
}

TEST(Scheduler, CommRecordsMatchRemoteDependencies) {
  MiniCluster mini;
  mini.run_graph(diamond_graph(0.01, 8 << 20));
  // Total transfers == number of dep fetches recorded by workers; each has
  // positive duration and consistent endpoints.
  for (const auto& w : mini.workers) {
    for (const auto& c : w->incoming_transfers()) {
      EXPECT_EQ(c.destination, w->id());
      EXPECT_GT(c.end, c.start);
      EXPECT_GT(c.bytes, 0u);
      EXPECT_NE(c.source, c.destination);
    }
  }
}

}  // namespace
}  // namespace recup::dtr
