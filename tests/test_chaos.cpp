// Chaos tests: deterministic fault injection (recup::chaos) and the
// delivery guarantees of the streaming provenance pipeline.
//
// The headline oracle: a full workload -> Mofka -> LiveIngestor pipeline
// whose transport is attacked by a randomized FaultPlan (drops, duplicates,
// reorders, delays, transient errors, partition outages) must produce
// byte-identical PERFRECUP views to the same run over a fault-free
// transport — at-least-once delivery plus sequence dedup plus idempotent
// publication equals exactly-once effects. A deliberately lossy plan
// (retries disabled) must demonstrably fail that oracle, proving it can
// detect loss. Every failing case is replayable from (seed, plan).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault.hpp"
#include "dtr/cluster.hpp"
#include "dtr/mofka_plugins.hpp"
#include "mochi/bedrock.hpp"
#include "mofka/broker.hpp"
#include "mofka/consumer.hpp"
#include "mofka/producer.hpp"
#include "query/catalog.hpp"
#include "query/ingest.hpp"

namespace recup {
namespace {

using query::LiveIngestor;
using query::StoreCatalog;
using query::ViewId;

// ---------------------------------------------------------------------------
// Pipeline harness: run a small workflow on a Cluster (optionally under a
// FaultPlan), ingest its Mofka topics into a fresh catalog, and fingerprint
// every view.

std::vector<dtr::TaskGraph> workload() {
  dtr::TaskGraph g1("produce");
  for (int i = 0; i < 12; ++i) {
    dtr::TaskSpec t;
    t.key = {"produce-ca11", i};
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 20;
    g1.add_task(t);
  }
  dtr::TaskGraph g2("consume");
  for (int i = 0; i < 12; ++i) {
    dtr::TaskSpec t;
    t.key = {"consume-fe55", i};
    t.dependencies.push_back({"produce-ca11", i});
    t.work.compute = 0.02;
    t.work.output_bytes = 1 << 10;
    g2.add_task(t);
  }
  std::vector<dtr::TaskGraph> graphs;
  graphs.push_back(std::move(g1));
  graphs.push_back(std::move(g2));
  return graphs;
}

std::string fingerprint(const analysis::DataFrame& frame) {
  std::string out;
  for (const auto& name : frame.column_names()) {
    out += name;
    out += ',';
  }
  out += '\n';
  for (std::size_t row = 0; row < frame.rows(); ++row) {
    for (std::size_t c = 0; c < frame.width(); ++c) {
      out += frame.col(c).display(row);
      out += '|';
    }
    out += '\n';
  }
  return out;
}

struct PipelineResult {
  std::size_t direct_tasks = 0;
  std::size_t direct_records = 0;  ///< transitions + tasks + comms + warnings
  std::map<std::string, std::string> views;
  std::size_t ingested_rows = 0;
  std::uint64_t faults = 0;
  std::map<std::string, std::uint64_t> fault_counts;
};

PipelineResult run_pipeline(std::uint64_t cluster_seed,
                            const chaos::FaultPlan& plan,
                            std::size_t max_retries = 16,
                            std::size_t batch_size = 32,
                            dtr::SchedulerConfig topology = {}) {
  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = cluster_seed;
  config.enable_gpuprof = false;
  config.fault_plan = plan;
  config.producer.batch_size = batch_size;
  config.producer.max_retries = max_retries;
  config.scheduler = topology;  // stealing/heartbeat knobs re-overridden
                                // from wms by the cluster

  dtr::Cluster cluster(config);
  const dtr::RunData direct = cluster.run(workload(), "chaos", 0);

  StoreCatalog catalog;
  LiveIngestor ingestor(cluster.broker(), catalog);
  ingestor.publish(direct.meta);

  PipelineResult result;
  result.direct_tasks = direct.tasks.size();
  result.direct_records = direct.transitions.size() + direct.tasks.size() +
                          direct.comms.size() + direct.warnings.size();
  const StoreCatalog::Snapshot snap = catalog.snapshot();
  const prov::RunId id{"chaos", 0};
  for (const ViewId view : {ViewId::kTasks, ViewId::kTransitions,
                            ViewId::kComms, ViewId::kWarnings,
                            ViewId::kSteals}) {
    const auto frame = snap.frame(view, id);
    result.views[query::view_name(view)] = fingerprint(*frame);
    result.ingested_rows += frame->rows();
  }
  if (cluster.fault_injector()) {
    result.faults = cluster.fault_injector()->faults_injected();
    result.fault_counts = cluster.fault_injector()->counts();
  }
  return result;
}

// ---------------------------------------------------------------------------
// The oracle, over ten fixed seeds: randomized transport faults must not
// change any view by a single byte.

class ChaosOracle : public ::testing::TestWithParam<int> {};

TEST_P(ChaosOracle, ViewsIdenticalUnderTransportFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const chaos::FaultPlan plan =
      chaos::FaultPlan::randomized_transport(1000 + seed, 0.06);

  const PipelineResult baseline = run_pipeline(seed, chaos::FaultPlan{});
  const PipelineResult faulty = run_pipeline(seed, plan);

  // The plan actually attacked the transport...
  EXPECT_GT(faulty.faults, 0u) << plan.describe();
  EXPECT_EQ(baseline.faults, 0u);
  // ...the workflow itself was unperturbed...
  EXPECT_EQ(faulty.direct_tasks, baseline.direct_tasks);
  EXPECT_EQ(faulty.direct_records, baseline.direct_records);
  // ...and every view survived byte-identical.
  ASSERT_EQ(faulty.views.size(), baseline.views.size());
  for (const auto& [name, expected] : baseline.views) {
    const auto it = faulty.views.find(name);
    ASSERT_NE(it, faulty.views.end()) << name;
    EXPECT_EQ(it->second, expected)
        << "view '" << name << "' diverged under " << plan.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosOracle, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Scheduler-topology equivalence oracle (DESIGN.md §11): with
// foreman_window == 0 the batched/sharded/hierarchical scheduler must be a
// pure throughput refactor — every derived view and the full provenance
// transition log stay byte-identical to the flat single-shard topology,
// with and without transport faults in flight.

dtr::SchedulerConfig sharded_hierarchical_topology() {
  dtr::SchedulerConfig topology;
  topology.shards = 4;
  topology.foremen = 2;
  // window stays 0.0: foremen relay synchronously, batching cannot reorder.
  return topology;
}

class SchedulerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerEquivalence, ShardedHierarchicalViewsAreByteIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());

  const PipelineResult flat = run_pipeline(seed, chaos::FaultPlan{});
  const PipelineResult sharded =
      run_pipeline(seed, chaos::FaultPlan{}, /*max_retries=*/16,
                   /*batch_size=*/32, sharded_hierarchical_topology());

  EXPECT_EQ(sharded.direct_tasks, flat.direct_tasks);
  EXPECT_EQ(sharded.direct_records, flat.direct_records);
  EXPECT_EQ(sharded.ingested_rows, flat.ingested_rows);
  ASSERT_EQ(sharded.views.size(), flat.views.size());
  for (const auto& [name, expected] : flat.views) {
    const auto it = sharded.views.find(name);
    ASSERT_NE(it, sharded.views.end()) << name;
    EXPECT_EQ(it->second, expected)
        << "view '" << name
        << "' diverged between flat and sharded/hierarchical topologies";
  }
}

TEST_P(SchedulerEquivalence, EquivalenceHoldsUnderTransportFaults) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const chaos::FaultPlan plan =
      chaos::FaultPlan::randomized_transport(1000 + seed, 0.06);

  const PipelineResult flat = run_pipeline(seed, plan);
  const PipelineResult sharded =
      run_pipeline(seed, plan, /*max_retries=*/16,
                   /*batch_size=*/32, sharded_hierarchical_topology());

  // Same chaos actually hit both runs...
  EXPECT_GT(flat.faults, 0u) << plan.describe();
  EXPECT_GT(sharded.faults, 0u) << plan.describe();
  // ...and the topologies still agree byte-for-byte.
  ASSERT_EQ(sharded.views.size(), flat.views.size());
  for (const auto& [name, expected] : flat.views) {
    const auto it = sharded.views.find(name);
    ASSERT_NE(it, sharded.views.end()) << name;
    EXPECT_EQ(it->second, expected)
        << "view '" << name << "' diverged under " << plan.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence, ::testing::Range(1, 11));

// A deliberately lossy configuration (drops injected, retries disabled)
// must fail the oracle: this proves the oracle can detect loss, i.e. the
// passing runs above are meaningful.
TEST(ChaosOracle, LossyPlanFailsTheOracle) {
  chaos::FaultPlan lossy;
  lossy.seed = 77;
  lossy.sites[chaos::sites::kMofkaPush].drop = 0.5;

  const PipelineResult baseline = run_pipeline(3, chaos::FaultPlan{});
  const PipelineResult dropped =
      run_pipeline(3, lossy, /*max_retries=*/0, /*batch_size=*/16);

  EXPECT_GT(dropped.faults, 0u);
  // Without retries, dropped batches are gone: strictly fewer rows arrive
  // and at least one view diverges from the fault-free baseline.
  EXPECT_LT(dropped.ingested_rows, baseline.ingested_rows);
  bool any_diverged = false;
  for (const auto& [name, expected] : baseline.views) {
    if (dropped.views.at(name) != expected) any_diverged = true;
  }
  EXPECT_TRUE(any_diverged);
}

// Replaying the same (cluster seed, plan) reproduces the exact same fault
// sequence and the exact same views — failing runs are debuggable offline.
TEST(ChaosOracle, ReplayFromSeedAndPlanIsDeterministic) {
  const chaos::FaultPlan plan = chaos::FaultPlan::randomized_transport(99, 0.1);
  const PipelineResult first = run_pipeline(5, plan);
  const PipelineResult second = run_pipeline(5, plan);

  EXPECT_GT(first.faults, 0u);
  EXPECT_EQ(second.faults, first.faults);
  EXPECT_EQ(second.fault_counts, first.fault_counts);
  EXPECT_EQ(second.views, first.views);
}

// ---------------------------------------------------------------------------
// FaultPlan / FaultInjector unit behaviour.

TEST(FaultPlan, JsonRoundTripReplaysIdenticalDecisions) {
  const chaos::FaultPlan plan =
      chaos::FaultPlan::randomized_transport(123, 0.25);
  const chaos::FaultPlan reloaded = chaos::FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(reloaded.seed, plan.seed);
  ASSERT_EQ(reloaded.sites.size(), plan.sites.size());

  chaos::FaultInjector a(plan);
  chaos::FaultInjector b(reloaded);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t partition = static_cast<std::uint32_t>(i % 3);
    for (const char* site :
         {chaos::sites::kMofkaPush, chaos::sites::kMofkaConsumerPull,
          chaos::sites::kMofkaProducerFlush}) {
      const chaos::FaultDecision da = a.decide(site, partition);
      const chaos::FaultDecision db = b.decide(site, partition);
      EXPECT_EQ(da.action, db.action);
      EXPECT_EQ(da.delay, db.delay);
    }
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(FaultPlan, ScheduledFaultsFireOnExactHits) {
  chaos::FaultPlan plan;
  plan.seed = 1;
  chaos::SiteSpec& spec = plan.sites["unit.site"];
  spec.schedule.push_back({3, chaos::FaultAction::kDrop});
  spec.schedule.push_back({5, chaos::FaultAction::kTransientError});

  chaos::FaultInjector injector(plan);
  std::vector<chaos::FaultAction> seen;
  for (int i = 0; i < 7; ++i) seen.push_back(injector.decide("unit.site").action);
  const std::vector<chaos::FaultAction> expected = {
      chaos::FaultAction::kNone,           chaos::FaultAction::kNone,
      chaos::FaultAction::kDrop,           chaos::FaultAction::kNone,
      chaos::FaultAction::kTransientError, chaos::FaultAction::kNone,
      chaos::FaultAction::kNone};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(injector.faults_injected(), 2u);
  EXPECT_EQ(injector.hits("unit.site"), 7u);
}

TEST(FaultPlan, PartitionOutageWindowAndIsolation) {
  chaos::FaultPlan plan;
  plan.seed = 9;
  chaos::SiteSpec& spec = plan.sites["part.site"];
  spec.schedule.push_back({2, chaos::FaultAction::kPartitionUnavailable});
  spec.unavailable_hits = 3;

  chaos::FaultInjector injector(plan);
  std::vector<chaos::FaultAction> p0;
  for (int i = 0; i < 7; ++i) p0.push_back(injector.decide("part.site", 0).action);
  // Hit 2 opens the outage; hits 3..5 fall inside the window; hit 6 recovers.
  const auto kUnavailable = chaos::FaultAction::kPartitionUnavailable;
  const std::vector<chaos::FaultAction> expected = {
      chaos::FaultAction::kNone, kUnavailable, kUnavailable,
      kUnavailable,              kUnavailable, chaos::FaultAction::kNone,
      chaos::FaultAction::kNone};
  EXPECT_EQ(p0, expected);
  // The outage is scoped to partition 0: partition 1 keeps its own hit
  // counter and schedule, so only its own 2nd hit faults.
  EXPECT_EQ(injector.decide("part.site", 1).action, chaos::FaultAction::kNone);
  EXPECT_EQ(injector.decide("part.site", 1).action, kUnavailable);
}

TEST(FaultPlan, DescribeAndActionNamesRoundTrip) {
  for (const chaos::FaultAction action :
       {chaos::FaultAction::kNone, chaos::FaultAction::kDrop,
        chaos::FaultAction::kDuplicate, chaos::FaultAction::kReorder,
        chaos::FaultAction::kDelay, chaos::FaultAction::kTransientError,
        chaos::FaultAction::kPartitionUnavailable,
        chaos::FaultAction::kThreadKill}) {
    EXPECT_EQ(chaos::action_from_string(chaos::to_string(action)), action);
  }
  EXPECT_THROW(chaos::action_from_string("no_such_action"),
               std::invalid_argument);
  const chaos::FaultPlan plan = chaos::FaultPlan::randomized_transport(7);
  EXPECT_NE(plan.describe().find("seed=7"), std::string::npos);
  EXPECT_NE(plan.describe().find(chaos::sites::kMofkaPush), std::string::npos);
}

// ---------------------------------------------------------------------------
// Producer / broker delivery semantics under injected faults.

struct MofkaRig {
  MofkaRig() : broker(kv, blobs) {}

  void install(chaos::FaultPlan plan) {
    injector = std::make_shared<chaos::FaultInjector>(std::move(plan));
    broker.set_fault_injector(injector);
  }

  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker broker;
  std::shared_ptr<chaos::FaultInjector> injector;
};

json::Value numbered(int i) {
  json::Object o;
  o["i"] = static_cast<std::int64_t>(i);
  return json::Value(std::move(o));
}

TEST(ChaosDelivery, RetriesDeliverEveryEventExactlyOnce) {
  MofkaRig rig;
  rig.broker.create_topic("t", {2, nullptr, nullptr});
  chaos::FaultPlan plan;
  plan.seed = 4242;
  chaos::SiteSpec& push = plan.sites[chaos::sites::kMofkaPush];
  push.drop = 0.2;
  push.duplicate = 0.2;
  push.transient_error = 0.2;
  rig.install(plan);

  mofka::ProducerConfig config;
  config.batch_size = 8;
  config.background_flush = false;
  config.max_retries = 32;
  mofka::Producer producer(rig.broker, "t", config);
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) producer.push(numbered(i));
  producer.flush();

  // Exactly-once storage despite drops and lost acks.
  EXPECT_EQ(rig.broker.partition_size("t", 0) + rig.broker.partition_size("t", 1),
            static_cast<mofka::EventId>(kEvents));
  const mofka::ProducerStats stats = producer.stats();
  EXPECT_EQ(stats.pushed, static_cast<std::uint64_t>(kEvents));
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.events_failed, 0u);
  // Lost acks forced re-sends the broker absorbed. The producer only sees
  // the duplicates acked on a retry that itself succeeded, so its count is
  // a lower bound on the broker's (a re-sent batch can fault again after
  // the broker already absorbed its duplicates).
  EXPECT_GT(rig.broker.topic_stats("t").duplicates_absorbed, 0u);
  EXPECT_GT(stats.duplicates_acked, 0u);
  EXPECT_LE(stats.duplicates_acked,
            rig.broker.topic_stats("t").duplicates_absorbed);

  // Each payload arrived exactly once.
  mofka::Consumer consumer(rig.broker, "t", "verify");
  std::multiset<std::int64_t> payloads;
  for (const mofka::Event& event : consumer.pull_all()) {
    payloads.insert(event.metadata.at("i").as_int());
  }
  ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(payloads.count(i), 1u) << "event " << i;
  }
}

TEST(ChaosDelivery, NonTransientErrorsAreNotRetried) {
  MofkaRig rig;
  mofka::TopicConfig topic;
  topic.validator = [](const json::Value& metadata) {
    if (!metadata.contains("ok")) throw mofka::MofkaError("rejected");
  };
  rig.broker.create_topic("strict", topic);

  mofka::ProducerConfig config;
  config.batch_size = 4;
  config.background_flush = false;
  mofka::Producer producer(rig.broker, "strict", config);
  auto future = producer.push(numbered(0));  // lacks "ok"
  producer.flush();
  EXPECT_THROW(future.get(), mofka::MofkaError);
  EXPECT_EQ(producer.stats().retries, 0u);
  EXPECT_EQ(producer.stats().events_failed, 1u);
}

TEST(ChaosDelivery, ConsumerDedupFiltersInjectedRedeliveries) {
  MofkaRig rig;
  rig.broker.create_topic("dup", {});
  {
    mofka::ProducerConfig config;
    config.batch_size = 16;
    config.background_flush = false;
    mofka::Producer producer(rig.broker, "dup", config);
    for (int i = 0; i < 150; ++i) producer.push(numbered(i));
  }  // destructor flushes

  chaos::FaultPlan plan;
  plan.seed = 31337;
  plan.sites[chaos::sites::kMofkaConsumerPull].duplicate = 0.3;
  rig.install(plan);

  // With dedup (the default) the application sees each event exactly once.
  mofka::Consumer clean(rig.broker, "dup", "clean");
  const std::vector<mofka::Event> events = clean.pull_all();
  ASSERT_EQ(events.size(), 150u);
  std::set<mofka::EventId> offsets;
  for (const mofka::Event& event : events) offsets.insert(event.id);
  EXPECT_EQ(offsets.size(), 150u);
  EXPECT_GT(clean.stats().duplicates_dropped, 0u);

  // With dedup disabled the raw at-least-once stream leaks through.
  mofka::ConsumerConfig raw_config;
  raw_config.dedup = false;
  mofka::Consumer raw(rig.broker, "dup", "raw", raw_config);
  const std::vector<mofka::Event> raw_events = raw.pull_all();
  EXPECT_GT(raw_events.size(), 150u);
  EXPECT_EQ(raw.stats().redeliveries, raw_events.size() - 150u);
}

TEST(ChaosDelivery, BackpressureBoundsInFlightEvents) {
  MofkaRig rig;
  rig.broker.create_topic("bp", {});
  mofka::ProducerConfig config;
  config.batch_size = 1024;  // never size-triggered
  config.background_flush = false;
  config.max_in_flight = 32;
  mofka::Producer producer(rig.broker, "bp", config);
  for (int i = 0; i < 100; ++i) producer.push(numbered(i));
  producer.flush();
  EXPECT_EQ(rig.broker.partition_size("bp", 0), 100u);
  EXPECT_GT(producer.stats().backpressure_flushes, 0u);
}

// ---------------------------------------------------------------------------
// The flush/teardown barrier: flush() must wait for batches that were
// already in flight on the background thread, and the destructor must
// deliver everything still buffered. Regression tests for the teardown race
// where the destructor could return while the background flush was still
// appending.

TEST(ChaosDelivery, FlushWaitsForInFlightBackgroundBatch) {
  MofkaRig rig;
  rig.broker.create_topic("barrier", {});
  chaos::FaultPlan plan;
  plan.seed = 11;
  chaos::SiteSpec& push = plan.sites[chaos::sites::kMofkaPush];
  push.delay = 1.0;  // every append sleeps
  push.delay_min = std::chrono::microseconds(20000);
  push.delay_max = std::chrono::microseconds(20000);
  rig.install(plan);

  mofka::ProducerConfig config;
  config.batch_size = 1024;  // only the timer flushes
  config.flush_interval = std::chrono::milliseconds(1);
  config.background_flush = true;
  mofka::Producer producer(rig.broker, "barrier", config);
  for (int i = 0; i < 8; ++i) producer.push(numbered(i));
  // Wait (bounded) until the background thread picked the batch up and
  // entered the injected 20 ms append delay — a fixed sleep would race its
  // wakeup on a loaded machine...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (producer.stats().timer_triggered_flushes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...then flush() must not return until that in-flight batch landed.
  producer.flush();
  EXPECT_EQ(rig.broker.partition_size("barrier", 0), 8u);
  EXPECT_GT(producer.stats().timer_triggered_flushes, 0u);
}

TEST(ChaosDelivery, DestructorDeliversBufferedEvents) {
  MofkaRig rig;
  rig.broker.create_topic("dtor", {});
  {
    mofka::ProducerConfig config;
    config.batch_size = 1024;
    config.background_flush = false;
    mofka::Producer producer(rig.broker, "dtor", config);
    for (int i = 0; i < 5; ++i) producer.push(numbered(i));
    // No flush: the destructor owes us delivery.
  }
  EXPECT_EQ(rig.broker.partition_size("dtor", 0), 5u);
}

TEST(ChaosDelivery, BackgroundThreadDeathDoesNotLoseEvents) {
  MofkaRig rig;
  rig.broker.create_topic("killed", {});
  chaos::FaultPlan plan;
  plan.seed = 13;
  plan.sites[chaos::sites::kMofkaProducerFlush].schedule.push_back(
      {1, chaos::FaultAction::kThreadKill});
  rig.install(plan);

  mofka::ProducerConfig config;
  config.batch_size = 1024;
  config.flush_interval = std::chrono::milliseconds(1);
  config.background_flush = true;
  mofka::Producer producer(rig.broker, "killed", config);
  for (int i = 0; i < 6; ++i) producer.push(numbered(i));
  // Wait (bounded) for the background thread's first flush attempt — the
  // scheduled fault kills it there. A fixed sleep would race the thread's
  // wakeup on a loaded machine.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rig.injector->hits(chaos::sites::kMofkaProducerFlush) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The background thread died on that attempt; the foreground flush
  // barrier still delivers everything.
  producer.flush();
  EXPECT_EQ(rig.broker.partition_size("killed", 0), 6u);
  EXPECT_GE(rig.injector->hits(chaos::sites::kMofkaProducerFlush), 1u);
}

// ---------------------------------------------------------------------------
// Ingestor crash recovery: consumed-but-unpublished events survive a crash
// (cursors only move on publish), and re-publishing after cursor loss never
// double-publishes a run.

dtr::RunData produce_synthetic_run(mofka::Broker& broker,
                                   const std::string& workflow, int n) {
  dtr::RunData run;
  run.meta.workflow = workflow;
  run.meta.run_index = 0;
  for (int i = 0; i < n; ++i) {
    dtr::TaskRecord t;
    t.key = {"job-" + workflow, i};
    t.graph = "g0";
    t.prefix = "ingest";
    t.worker = static_cast<dtr::WorkerId>(i % 2);
    t.start_time = i;
    t.end_time = i + 0.5;
    run.tasks.push_back(t);
  }
  dtr::WarningRecord w;
  w.kind = "gc_collection";
  w.location = "worker-0";
  w.time = 0.25;
  run.warnings.push_back(w);

  mofka::ProducerConfig config;
  config.batch_size = 8;
  config.background_flush = false;
  mofka::Producer tasks(broker, "wms_tasks", config);
  mofka::Producer warnings(broker, "wms_warnings", config);
  for (const auto& r : run.tasks) tasks.push(dtr::to_json(r));
  for (const auto& r : run.warnings) warnings.push(dtr::to_json(r));
  tasks.flush();
  warnings.flush();
  return run;
}

TEST(ChaosIngest, CrashBeforePublishLosesNothing) {
  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker broker(kv, blobs);
  dtr::create_wms_topics(broker);
  const dtr::RunData run = produce_synthetic_run(broker, "crashy", 12);

  StoreCatalog catalog;
  {
    LiveIngestor doomed(broker, catalog);
    EXPECT_GT(doomed.poll(), 0u);
    // Crash: destroyed with pending events, before publish — no cursors
    // were committed, so nothing is lost.
  }
  LiveIngestor survivor(broker, catalog);
  survivor.publish(run.meta);

  const StoreCatalog::Snapshot snap = catalog.snapshot();
  const auto frame = snap.frame(ViewId::kTasks, {"crashy", 0});
  EXPECT_EQ(frame->rows(), run.tasks.size());
  EXPECT_EQ(snap.frame(ViewId::kWarnings, {"crashy", 0})->rows(),
            run.warnings.size());
}

TEST(ChaosIngest, CursorLossCannotDoublePublish) {
  mochi::KeyValueStore kv;
  mochi::BlobStore blobs;
  mofka::Broker broker(kv, blobs);
  dtr::create_wms_topics(broker);
  const dtr::RunData run = produce_synthetic_run(broker, "twice", 10);

  StoreCatalog catalog;
  LiveIngestor first(broker, catalog);
  const query::Epoch epoch = first.publish(run.meta);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(first.stats().runs_published, 1u);

  // A recovering ingestor whose cursors were lost (different group) re-reads
  // the topics from offset zero and re-publishes the same run id: the
  // catalog's idempotent add_run absorbs it without bumping the epoch.
  LiveIngestor recovered(broker, catalog, "recup_query_ingest_recovered");
  const query::Epoch after = recovered.publish(run.meta);
  EXPECT_EQ(after, 1u);
  EXPECT_EQ(recovered.stats().runs_published, 0u);
  {
    // Scoped: a live Snapshot holds a reader lock, and publish's add_run
    // takes the writer lock — holding one across a publish on the same
    // thread would deadlock by design.
    const StoreCatalog::Snapshot snap = catalog.snapshot();
    EXPECT_EQ(snap.runs(std::nullopt, std::nullopt).size(), 1u);
    EXPECT_EQ(snap.frame(ViewId::kTasks, {"twice", 0})->rows(),
              run.tasks.size());
  }

  // Same-group re-publish with no new events is equally a no-op.
  const query::Epoch again = first.publish(run.meta);
  EXPECT_EQ(again, 1u);
}

// ---------------------------------------------------------------------------
// Worker thread-kill faults: the chaos plan can kill workers mid-run; SSG
// detects the deaths and the scheduler recovers, so the workflow completes
// (or dead-letters) — and everything remains replayable from (seed, plan).

// This exact (plan seed, cluster seed) is also a regression test: before the
// scheduler learned to recompute in-memory results whose replicas all died
// before a dependent graph was submitted (and to revalidate queued tasks in
// drain_queue), this combination threw "dispatching task with unmet
// dependency" out of Cluster::run.
TEST(ChaosWorker, ThreadKillFaultsAreRecoveredByTheScheduler) {
  chaos::FaultPlan plan;
  plan.seed = 606;
  plan.sites[chaos::sites::kDtrWorker].thread_kill = 0.02;

  dtr::ClusterConfig config;
  config.job.nodes = 2;
  config.job.workers_per_node = 2;
  config.job.threads_per_worker = 2;
  config.seed = 21;
  config.enable_gpuprof = false;
  config.fault_plan = plan;

  dtr::Cluster cluster(config);
  const dtr::RunData run = cluster.run(workload(), "killer", 0);

  // At least one worker was killed by the injector (deterministic for this
  // seed/plan), and at least one survived to finish the workflow.
  std::size_t dead = 0;
  for (std::size_t i = 0; i < cluster.worker_count(); ++i) {
    if (!cluster.scheduler().worker_alive(static_cast<dtr::WorkerId>(i))) {
      ++dead;
    }
  }
  EXPECT_GT(dead, 0u);
  EXPECT_LT(dead, cluster.worker_count());
  ASSERT_TRUE(cluster.fault_injector());
  const auto counts = cluster.fault_injector()->counts();
  const auto kills = counts.find("thread_kill");
  ASSERT_NE(kills, counts.end());
  EXPECT_GE(kills->second, dead);

  // Every task either produced a completion record or was dead-lettered
  // with a warning row. Recomputed tasks append additional records, so the
  // record count may exceed the 24 submitted tasks — coverage is judged on
  // distinct keys.
  std::set<std::string> completed;
  for (const auto& record : run.tasks) completed.insert(record.key.to_string());
  std::vector<std::string> dead_letters;
  for (const auto& w : run.warnings) {
    if (w.kind == "dead_letter") dead_letters.push_back(w.message);
  }
  for (const auto& graph : workload()) {
    for (const auto& [key, spec] : graph.tasks()) {
      const std::string name = key.to_string();
      const bool done = completed.count(name) != 0;
      const bool lettered =
          std::any_of(dead_letters.begin(), dead_letters.end(),
                      [&name](const std::string& message) {
                        return message.find(name) != std::string::npos;
                      });
      EXPECT_TRUE(done || lettered) << "task " << name
                                    << " neither completed nor dead-lettered";
    }
  }
  EXPECT_GE(run.tasks.size(), 24u);
}

}  // namespace
}  // namespace recup
