// State-machine conformance & equivalence suite for the batched / sharded /
// hierarchical scheduler (DESIGN.md §11). Randomized DAGs and event
// interleavings (task failures, worker deaths) are driven through every
// intake topology, and three invariant families are checked on the recorded
// transition log:
//
//   1. Legality — each task's transitions form an unbroken chain of edges
//      the Dask state machine allows, starting from "released".
//   2. Causality — a task never enters "processing" before every
//      dependency has reached "memory".
//   3. Termination — every submitted task ends in exactly one terminal
//      state (memory, erred, or forgotten after release).
//
// For foreman_window == 0 the batched and hierarchical paths must be
// provenance *byte-identical* to the legacy direct-callback path; the
// aggregation / autonomy modes (window > 0) are conformance-checked only.
//
// The *Concurrency suites at the bottom hammer the two thread-facing
// structures (SchedulerIntake, ShardedTaskMap) with real threads; they are
// the payload of the TSan stage in tools/run_checks.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dtr/foreman.hpp"
#include "dtr/intake.hpp"
#include "dtr/shard.hpp"
#include "dtr_fixture.hpp"

namespace recup::dtr {
namespace {

using testing::MiniCluster;
using testing::independent_graph;

// ---------------------------------------------------------------------------
// Random DAG + fault interleaving generator (deterministic per seed).
// ---------------------------------------------------------------------------

struct ChaosScript {
  TaskGraph graph{"sm"};
  /// (virtual time, worker id) kill events; at most workers-1 victims.
  std::vector<std::pair<double, WorkerId>> kills;
};

ChaosScript make_script(std::uint32_t seed, std::size_t total_workers) {
  std::mt19937 rng(seed);
  ChaosScript script;
  script.graph = TaskGraph("sm-" + std::to_string(seed));

  const std::size_t n_tasks = 40 + rng() % 80;
  const std::size_t n_groups = 2 + rng() % 5;
  std::vector<TaskKey> keys;
  keys.reserve(n_tasks);
  for (std::size_t i = 0; i < n_tasks; ++i) {
    TaskSpec t;
    t.key = {"sm" + std::to_string(rng() % n_groups) + "-s" +
                 std::to_string(seed % 1000),
             static_cast<std::int64_t>(i)};
    t.work.compute = 0.001 + (rng() % 100) * 0.0004;
    t.work.output_bytes = 1024 + rng() % (1 << 20);
    if (rng() % 8 == 0) t.work.failure_probability = 0.3;
    // Up to 3 dependencies on earlier tasks (keeps the graph acyclic).
    if (!keys.empty()) {
      const std::size_t n_deps = rng() % 4;
      std::set<std::size_t> picked;
      for (std::size_t d = 0; d < n_deps; ++d) {
        picked.insert(rng() % keys.size());
      }
      for (const std::size_t p : picked) t.dependencies.push_back(keys[p]);
    }
    keys.push_back(t.key);
    script.graph.add_task(t);
  }

  // Kill up to half the workers at random points early in the run so
  // re-dispatch / lost-data recovery paths interleave with normal progress.
  const std::size_t n_kills = rng() % (total_workers / 2 + 1);
  std::set<WorkerId> victims;
  while (victims.size() < n_kills) {
    victims.insert(static_cast<WorkerId>(rng() % total_workers));
  }
  for (const WorkerId w : victims) {
    script.kills.emplace_back(0.01 + (rng() % 100) * 0.002, w);
  }
  return script;
}

/// Runs one script under one scheduler topology and returns the cluster
/// (alive so its transition log can be inspected).
std::unique_ptr<MiniCluster> run_script(const ChaosScript& script,
                                        SchedulerConfig config) {
  auto mini = std::make_unique<MiniCluster>(
      /*nodes=*/2, /*workers_per_node=*/2, /*nthreads=*/2, WorkerConfig{},
      config);
  for (const auto& [when, victim] : script.kills) {
    MiniCluster* m = mini.get();
    mini->engine.schedule_at(when, [m, victim = victim] {
      if (!m->workers[victim]->alive()) return;
      m->workers[victim]->kill();
      m->scheduler.on_worker_failed(victim);
    });
  }
  mini->run_graph(script.graph);
  return mini;
}

// ---------------------------------------------------------------------------
// Invariant checkers.
// ---------------------------------------------------------------------------

/// Edges of the scheduler-side task state machine (DESIGN.md §4/§11).
bool legal_edge(const std::string& from, const std::string& to) {
  static const std::set<std::pair<std::string, std::string>> kEdges = {
      {"released", "waiting"},     // update-graph / scheduler-restart
      {"waiting", "processing"},   // dispatch
      {"waiting", "queued"},       // saturation
      {"waiting", "no-worker"},    // no live worker
      {"queued", "processing"},    // queue-pop
      {"queued", "waiting"},       // lost-dependency / worker-failed
      {"no-worker", "processing"}, // capacity returned
      {"no-worker", "waiting"},    // lost-dependency
      {"processing", "memory"},    // task-finished
      {"processing", "erred"},     // task-erred / dead-letter / unrecoverable
      {"processing", "processing"}, // steal (reassignment)
      {"processing", "waiting"},   // worker-failed requeue
      {"erred", "waiting"},        // retry
      {"memory", "released"},      // release-key / lost-data
      {"released", "waiting"},     // recompute
      {"released", "forgotten"},   // forget-key
  };
  return kEdges.count({from, to}) != 0;
}

void check_conformance(const MiniCluster& mini, const TaskGraph& graph,
                       const std::string& label) {
  std::map<std::string, std::string> state;       // key -> current state
  std::map<std::string, int> memory_entries;      // key -> times reached memory
  std::map<std::string, std::vector<std::string>> deps;
  for (const auto& [task_key, spec] : graph.tasks()) {
    std::vector<std::string>& d = deps[task_key.to_string()];
    for (const auto& dep : spec.dependencies) d.push_back(dep.to_string());
  }

  for (const auto& tr : mini.scheduler.transitions()) {
    const std::string key = tr.key.to_string();
    // 1. Legality: chained states over allowed edges.
    if (state.count(key)) {
      EXPECT_EQ(state[key], tr.from_state)
          << label << ": broken chain for " << key << " at " << tr.stimulus;
    } else {
      EXPECT_EQ(tr.from_state, "released")
          << label << ": " << key << " did not start from released";
    }
    EXPECT_TRUE(legal_edge(tr.from_state, tr.to_state))
        << label << ": illegal edge " << tr.from_state << " -> "
        << tr.to_state << " (" << tr.stimulus << ") for " << key;
    state[key] = tr.to_state;

    // 2. Causality: dispatch implies every dependency reached memory first.
    if (tr.to_state == "processing" && tr.stimulus != "steal") {
      for (const std::string& dep : deps[key]) {
        EXPECT_GE(memory_entries[dep], 1)
            << label << ": " << key << " dispatched at t=" << tr.time
            << " before dependency " << dep << " reached memory";
      }
    }
    if (tr.to_state == "memory") ++memory_entries[key];
  }

  // 3. Termination: every submitted task ends in exactly one terminal state.
  EXPECT_EQ(state.size(), graph.tasks().size()) << label;
  for (const auto& [task_key, spec] : graph.tasks()) {
    const std::string key = task_key.to_string();
    ASSERT_TRUE(state.count(key)) << label << ": " << key << " never moved";
    const std::string& final_state = state[key];
    EXPECT_TRUE(final_state == "memory" || final_state == "erred" ||
                final_state == "forgotten")
        << label << ": " << key << " ended in non-terminal " << final_state;
  }
}

/// Canonical one-line rendering of a transition for byte-equality checks.
std::string render(const TransitionRecord& tr) {
  char time_buf[32];
  std::snprintf(time_buf, sizeof(time_buf), "%.17g", tr.time);
  return tr.key.to_string() + "|" + tr.graph + "|" + tr.from_state + "|" +
         tr.to_state + "|" + tr.stimulus + "|" + tr.location + "|" + time_buf;
}

std::vector<std::string> render_all(const MiniCluster& mini) {
  std::vector<std::string> out;
  out.reserve(mini.scheduler.transitions().size());
  for (const auto& tr : mini.scheduler.transitions()) out.push_back(render(tr));
  return out;
}

SchedulerConfig legacy_config() {
  SchedulerConfig c;
  c.legacy_intake = true;
  return c;
}

SchedulerConfig batched_config() {
  SchedulerConfig c;
  c.shards = 3;
  return c;
}

SchedulerConfig hierarchical_config() {
  SchedulerConfig c;
  c.shards = 3;
  c.foremen = 2;  // window stays 0: synchronous relays, byte-identical
  return c;
}

SchedulerConfig windowed_config() {
  SchedulerConfig c;
  c.shards = 2;
  c.foremen = 2;
  c.foreman_window = 0.005;  // aggregation shifts timing: conformance only
  c.foreman_autonomy = true;
  return c;
}

// ---------------------------------------------------------------------------
// Conformance over random DAGs and interleavings, all topologies.
// ---------------------------------------------------------------------------

class StateMachineConformance : public ::testing::TestWithParam<int> {};

TEST_P(StateMachineConformance, AllTopologiesSatisfyInvariants) {
  const ChaosScript script = make_script(7000 + GetParam(), /*workers=*/4);
  struct Case {
    const char* label;
    SchedulerConfig config;
  };
  const std::vector<Case> cases = {
      {"legacy", legacy_config()},
      {"batched", batched_config()},
      {"hierarchical", hierarchical_config()},
      {"windowed", windowed_config()},
  };
  for (const Case& c : cases) {
    const auto mini = run_script(script, c.config);
    check_conformance(*mini, script.graph, c.label);
  }
}

TEST_P(StateMachineConformance, Window0TopologiesAreByteIdentical) {
  const ChaosScript script = make_script(8000 + GetParam(), /*workers=*/4);
  const auto flat = run_script(script, legacy_config());
  const auto batched = run_script(script, batched_config());
  const auto hier = run_script(script, hierarchical_config());

  const std::vector<std::string> want = render_all(*flat);
  EXPECT_EQ(want, render_all(*batched)) << "batched diverged from legacy";
  EXPECT_EQ(want, render_all(*hier)) << "hierarchical diverged from legacy";
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateMachineConformance,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Directed topology tests.
// ---------------------------------------------------------------------------

TEST(StateMachine, ForemanTierFormsExpectedPools) {
  SchedulerConfig config;
  config.foremen = 2;
  MiniCluster mini(2, 2, 2, WorkerConfig{}, config);
  ASSERT_EQ(mini.scheduler.foremen().size(), 2u);
  EXPECT_EQ(mini.scheduler.foremen()[0]->pool().size(), 2u);
  EXPECT_EQ(mini.scheduler.foremen()[1]->pool().size(), 2u);
  // Contiguous pools: pool order equals global worker order.
  EXPECT_EQ(mini.scheduler.foremen()[0]->pool()[0]->id(), 0u);
  EXPECT_EQ(mini.scheduler.foremen()[1]->pool()[0]->id(), 2u);
}

TEST(StateMachine, WindowedForemenCoalesceReports) {
  SchedulerConfig config = windowed_config();
  MiniCluster mini(2, 2, 2, WorkerConfig{}, config);
  ASSERT_TRUE(mini.run_graph(independent_graph(60, 0.002)));
  EXPECT_EQ(mini.scheduler.tasks_in_memory(), 60u);
  std::uint64_t flushes = 0;
  std::uint64_t forwarded = 0;
  for (const auto& foreman : mini.scheduler.foremen()) {
    flushes += foreman->batches_flushed();
    forwarded += foreman->events_forwarded();
  }
  EXPECT_GT(forwarded, 0u);
  // Aggregation means strictly fewer flushes than events forwarded.
  EXPECT_LT(flushes, forwarded);
  // Intake saw multi-event batches (the whole point of the window).
  EXPECT_GT(mini.scheduler.intake_stats().max_batch, 1u);
}

TEST(StateMachine, ForemenAbsorbPoolHeartbeats) {
  SchedulerConfig config;
  config.foremen = 2;
  MiniCluster mini(2, 2, 2, WorkerConfig{}, config);
  mini.scheduler.start_lease_loop();
  // Pool heartbeats terminate at the foreman; the root sees foreman beats.
  bool done = false;
  mini.scheduler.submit_graph(independent_graph(8, 0.002),
                              [&](const std::string&) {
                                done = true;
                                mini.scheduler.stop();
                              });
  mini.engine.run_until(2.0);
  EXPECT_TRUE(done);
  std::uint64_t absorbed = 0;
  for (const auto& foreman : mini.scheduler.foremen()) {
    absorbed += foreman->heartbeats_absorbed();
  }
  // Workers in MiniCluster do not run heartbeat loops, but lease sweeps do;
  // what matters here is that the run stayed healthy with zero expirations.
  EXPECT_EQ(mini.scheduler.lease_expirations(), 0u);
  (void)absorbed;
}

// ---------------------------------------------------------------------------
// Lease-expiry boundary semantics (SchedulerConfig::lease_expiry).
// ---------------------------------------------------------------------------

TEST(LeaseBoundary, ExpiryIsStrictlyGreaterThanMissesTimesInterval) {
  SchedulerConfig config;
  config.heartbeat_interval = 0.5;
  config.lease_misses = 4.0;
  EXPECT_DOUBLE_EQ(config.lease_expiry(), 2.0);
  // Fractional budgets are meaningful (2.5 beats), not truncated.
  config.lease_misses = 2.5;
  EXPECT_DOUBLE_EQ(config.lease_expiry(), 1.25);
}

TEST(LeaseBoundary, SilentWorkerSurvivesExactlyTheBoundary) {
  // heartbeat_interval=0.5, lease_misses=4 => expiry budget 2.0s. The lease
  // round at t=2.0 sees silence of exactly lease_misses intervals — the
  // lease must still be valid (strictly-greater comparison). The round at
  // t=2.5 sees 2.5s > 2.0s and expires it.
  SchedulerConfig config;
  config.heartbeat_interval = 0.5;
  config.lease_misses = 4.0;
  config.work_stealing = false;
  MiniCluster mini(2, 2, 2, WorkerConfig{}, config);
  mini.scheduler.start_lease_loop();  // workers never heartbeat: silent

  std::uint64_t expirations_at_boundary = 42;
  // Sample just after the t=2.0 round ran (same-instant events fire in
  // schedule order, so sample at 2.1 to be unambiguous).
  mini.engine.schedule_at(2.1, [&] {
    expirations_at_boundary = mini.scheduler.lease_expirations();
  });
  mini.engine.schedule_at(3.1, [&] { mini.scheduler.stop(); });
  mini.engine.run_until(3.2);

  EXPECT_EQ(expirations_at_boundary, 0u)
      << "lease expired at exactly lease_misses intervals of silence";
  // After the boundary every silent worker's lease expired.
  EXPECT_EQ(mini.scheduler.lease_expirations(), 4u);
}

TEST(LeaseBoundary, HeartbeatRenewsTheLease) {
  SchedulerConfig config;
  config.heartbeat_interval = 0.5;
  config.lease_misses = 4.0;
  config.work_stealing = false;
  MiniCluster mini(2, 2, 2, WorkerConfig{}, config);
  mini.scheduler.start_lease_loop();
  // Keep worker 0 renewed; the other three stay silent and expire.
  for (double t = 0.4; t < 4.0; t += 0.4) {
    mini.engine.schedule_at(t, [&] { mini.scheduler.heartbeat(0); });
  }
  mini.engine.schedule_at(4.0, [&] { mini.scheduler.stop(); });
  mini.engine.run_until(4.1);
  EXPECT_EQ(mini.scheduler.lease_expirations(), 3u);
  EXPECT_TRUE(mini.scheduler.worker_alive(0));
  EXPECT_FALSE(mini.scheduler.worker_alive(1));
}

// ---------------------------------------------------------------------------
// Thread hammers (the TSan stage's payload in tools/run_checks.sh).
// ---------------------------------------------------------------------------

TEST(SchedulerIntakeConcurrency, ConcurrentPushersPreservePerProducerOrder) {
  SchedulerIntake intake;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&intake, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        IntakeEvent event;
        event.kind = IntakeKind::kHeartbeat;
        event.worker = static_cast<WorkerId>(p);
        event.key = {"producer-" + std::to_string(p),
                     static_cast<std::int64_t>(i)};
        intake.push(std::move(event));
      }
    });
  }
  std::vector<IntakeEvent> drained;
  std::vector<IntakeEvent> batch;
  while (drained.size() <
         static_cast<std::size_t>(kProducers) * kPerProducer) {
    batch.clear();
    if (intake.drain(256, batch) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (auto& event : batch) drained.push_back(std::move(event));
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(intake.empty());

  const SchedulerIntake::Stats stats = intake.stats();
  EXPECT_EQ(stats.pushed, static_cast<std::uint64_t>(kProducers) *
                              kPerProducer);
  EXPECT_EQ(stats.drained, stats.pushed);
  EXPECT_LE(stats.max_batch, 256u);

  // FIFO per producer: each producer's sequence numbers arrive monotonic.
  std::map<WorkerId, std::int64_t> last_seq;
  for (const IntakeEvent& event : drained) {
    auto [it, inserted] = last_seq.try_emplace(event.worker, -1);
    EXPECT_LT(it->second, event.key.index)
        << "producer " << event.worker << " reordered";
    it->second = event.key.index;
  }
}

TEST(ShardedTaskMapConcurrency, ConcurrentEmplaceAndLookupAcrossShards) {
  ShardedTaskMap map(8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      const std::string group = "grp" + std::to_string(t) + "-abc123";
      for (int i = 0; i < kPerThread; ++i) {
        const TaskKey key{group, i};
        auto [info, inserted] = map.try_emplace(key);
        info->retries = static_cast<std::uint32_t>(t);
        // Interleave lookups of earlier keys from this thread's group.
        if (i > 0) {
          TaskInfo* earlier = map.find({group, i / 2});
          if (earlier != nullptr) {
            EXPECT_EQ(earlier->retries, static_cast<std::uint32_t>(t));
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(map.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::size_t counted = 0;
  map.for_each([&](const TaskKey&, TaskInfo&) { ++counted; });
  EXPECT_EQ(counted, map.size());

  // for_each_ordered yields the global key order (what checkpoints and
  // ordered sweeps rely on for byte-identical provenance).
  TaskKey prev{"", -1};
  bool first = true;
  std::size_t ordered = 0;
  map.for_each_ordered([&](const TaskKey& key, TaskInfo&) {
    if (!first) {
      EXPECT_LT(prev, key);
    }
    prev = key;
    first = false;
    ++ordered;
  });
  EXPECT_EQ(ordered, map.size());
}

}  // namespace
}  // namespace recup::dtr
