// Unit tests for the discrete-event engine and resources: ordering,
// cancellation, determinism, and FIFO contention semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace recup::sim {
namespace {

TEST(Engine, RunsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, NestedScheduling) {
  Engine engine;
  std::vector<double> times;
  engine.schedule_after(1.0, [&] {
    times.push_back(engine.now());
    engine.schedule_after(0.5, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Engine, RejectsPastAndNegative) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(engine.schedule_after(-0.1, [] {}), std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  EventHandle handle = engine.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, HandleNotPendingAfterFire) {
  Engine engine;
  EventHandle handle = engine.schedule_at(1.0, [] {});
  engine.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // safe no-op
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] { ++count; });
  engine.schedule_at(2.0, [&] { ++count; });
  engine.schedule_at(3.0, [&] { ++count; });
  engine.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, StopHaltsLoop) {
  Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] {
    ++count;
    engine.stop();
  });
  engine.schedule_at(2.0, [&] { ++count; });
  engine.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(Resource, ServesUpToCapacityConcurrently) {
  Engine engine;
  Resource resource(engine, 2);
  std::vector<double> ends;
  for (int i = 0; i < 4; ++i) {
    resource.request(1.0, [&](TimePoint, TimePoint end) {
      ends.push_back(end);
    });
  }
  engine.run();
  ASSERT_EQ(ends.size(), 4u);
  // Two at t=1, two queued until t=2.
  EXPECT_DOUBLE_EQ(ends[0], 1.0);
  EXPECT_DOUBLE_EQ(ends[1], 1.0);
  EXPECT_DOUBLE_EQ(ends[2], 2.0);
  EXPECT_DOUBLE_EQ(ends[3], 2.0);
  EXPECT_EQ(resource.contended_requests(), 2u);
  EXPECT_DOUBLE_EQ(resource.total_queue_delay(), 2.0);
}

TEST(Resource, FifoOrder) {
  Engine engine;
  Resource resource(engine, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    resource.request(1.0, [&, i](TimePoint, TimePoint) {
      order.push_back(i);
    });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Resource, StartTimeReflectsQueueing) {
  Engine engine;
  Resource resource(engine, 1);
  TimePoint second_start = -1.0;
  resource.request(2.0, [](TimePoint, TimePoint) {});
  resource.request(1.0, [&](TimePoint start, TimePoint) {
    second_start = start;
  });
  engine.run();
  EXPECT_DOUBLE_EQ(second_start, 2.0);
}

TEST(Resource, RejectsInvalidArguments) {
  Engine engine;
  EXPECT_THROW(Resource(engine, 0), std::invalid_argument);
  Resource resource(engine, 1);
  EXPECT_THROW(resource.request(-1.0, nullptr), std::invalid_argument);
}

TEST(Engine, DeterministicAcrossIdenticalPrograms) {
  const auto run_program = [] {
    Engine engine;
    std::vector<double> trace;
    for (int i = 0; i < 50; ++i) {
      engine.schedule_after(0.1 * i, [&engine, &trace] {
        trace.push_back(engine.now());
        engine.schedule_after(0.05, [&engine, &trace] {
          trace.push_back(engine.now());
        });
      });
    }
    engine.run();
    return trace;
  };
  EXPECT_EQ(run_program(), run_program());
}

}  // namespace
}  // namespace recup::sim
