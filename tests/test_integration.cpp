// End-to-end integration tests: execute the paper's workflows through the
// full instrumented stack and check the properties the evaluation section
// reports (Table I shapes, Figure 4 phases, Figure 6 category ranking,
// Figure 7 warning clustering, Figure 8 lineage completeness).
#include <gtest/gtest.h>

#include "analysis/figures.hpp"
#include "analysis/readers.hpp"
#include "analysis/views.hpp"
#include "common/stats.hpp"
#include "prov/lineage.hpp"
#include "workloads/image_processing.hpp"
#include "workloads/registry.hpp"
#include "workloads/resnet152.hpp"
#include "workloads/xgboost.hpp"

namespace recup {
namespace {

using workloads::execute;

class ImageProcessingRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new dtr::RunData(
        execute(workloads::make_image_processing(42), 0));
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  static dtr::RunData* run_;
};
dtr::RunData* ImageProcessingRun::run_ = nullptr;

TEST_F(ImageProcessingRun, Table1Characteristics) {
  EXPECT_EQ(run_->graph_count, 3u);
  EXPECT_EQ(run_->tasks.size(), 5440u);
  const analysis::PhaseBreakdown p = analysis::phase_breakdown(*run_);
  // Table I: 5274-5287 I/O operations; allow the band to breathe.
  EXPECT_GT(p.io_ops, 5100u);
  EXPECT_LT(p.io_ops, 5450u);
  EXPECT_GT(p.comm_count, 0u);
  // Distinct *input* files: 151 images (plus scratch intermediates).
  std::set<std::string> inputs;
  for (const auto& log : run_->darshan_logs) {
    for (const auto& rec : log.posix) {
      if (rec.file_path.rfind("/data/bcss/", 0) == 0) {
        inputs.insert(rec.file_path);
      }
    }
  }
  EXPECT_EQ(inputs.size(), 151u);
}

TEST_F(ImageProcessingRun, Figure4ThreeReadPhases) {
  const auto phases = analysis::detect_read_phases(*run_, 5.0);
  // Three graphs executed in sequence -> three read bursts.
  EXPECT_EQ(phases.size(), 3u);
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_GT(phases[i].begin, phases[i - 1].end);
  }
}

TEST_F(ImageProcessingRun, Figure4WritesFollowEachReadPhase) {
  const auto phases = analysis::detect_read_phases(*run_, 5.0);
  ASSERT_EQ(phases.size(), 3u);
  // Each phase is followed by write activity before the next read phase.
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const double window_end =
        i + 1 < phases.size() ? phases[i + 1].begin : run_->meta.wall_end;
    bool wrote = false;
    for (const auto& log : run_->darshan_logs) {
      for (const auto& rec : log.dxt) {
        for (const auto& seg : rec.segments) {
          if (seg.op == darshan::IoOp::kWrite &&
              seg.start >= phases[i].begin && seg.start <= window_end) {
            wrote = true;
          }
        }
      }
    }
    EXPECT_TRUE(wrote) << "no writes after read phase " << i;
  }
}

TEST_F(ImageProcessingRun, DarshanNotTruncated) {
  for (const auto& log : run_->darshan_logs) {
    for (const auto& rec : log.dxt) {
      EXPECT_FALSE(rec.truncated);
    }
  }
}

TEST_F(ImageProcessingRun, EveryIoAttributesToATask) {
  const auto attributed = analysis::attribute_io(*run_);
  std::size_t unattributed = 0;
  for (const auto& io : attributed) {
    if (io.task_key.empty()) ++unattributed;
  }
  // No spilling in this workload: everything should attribute.
  EXPECT_EQ(unattributed, 0u);
}

class ResNetRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new dtr::RunData(execute(workloads::make_resnet152(42), 0));
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  static dtr::RunData* run_;
};
dtr::RunData* ResNetRun::run_ = nullptr;

TEST_F(ResNetRun, Table1Characteristics) {
  EXPECT_EQ(run_->graph_count, 1u);
  EXPECT_EQ(run_->tasks.size(), 8645u);
  std::set<std::string> inputs;
  for (const auto& log : run_->darshan_logs) {
    for (const auto& rec : log.posix) inputs.insert(rec.file_path);
  }
  // Paper: 3929 distinct files. POSIX module sees all of them even when DXT
  // truncates, but DXT record creation is budget-bound; POSIX counting here.
  EXPECT_EQ(inputs.size(), 3929u);
}

TEST_F(ResNetRun, DxtTruncationReproducesFootnote9) {
  const analysis::PhaseBreakdown p = analysis::phase_breakdown(*run_);
  // Recorded (truncated) DXT ops near the paper's 2057-2302 band.
  EXPECT_GT(p.io_ops, 1700u);
  EXPECT_LT(p.io_ops, 2700u);
  bool truncated = false;
  for (const auto& log : run_->darshan_logs) {
    for (const auto& rec : log.dxt) truncated = truncated || rec.truncated;
  }
  EXPECT_TRUE(truncated);
  // POSIX counters remain complete: far more ops than DXT kept.
  std::uint64_t posix_ops = 0;
  for (const auto& log : run_->darshan_logs) {
    for (const auto& rec : log.posix) posix_ops += rec.reads + rec.writes;
  }
  EXPECT_GT(posix_ops, p.io_ops);
}

TEST_F(ResNetRun, Figure5EarlyColdConnectionsAreSlow) {
  // Cold-connection transfers cluster near the start and are slower than
  // warm transfers of similar size (the Figure 5 observation).
  std::vector<double> cold_durations;
  std::vector<double> warm_durations;
  for (const auto& c : run_->comms) {
    if (c.bytes > 1 << 20) continue;  // compare small messages only
    (c.cold_connection ? cold_durations : warm_durations)
        .push_back(c.duration());
  }
  ASSERT_FALSE(cold_durations.empty());
  ASSERT_FALSE(warm_durations.empty());
  const SampleSummary cold = summarize(cold_durations);
  const SampleSummary warm = summarize(warm_durations);
  EXPECT_GT(cold.median, warm.median * 10);
  // Both inter- and intra-node communications appear.
  bool any_cross = false;
  bool any_local = false;
  for (const auto& c : run_->comms) {
    if (c.cross_node) any_cross = true;
    else any_local = true;
  }
  EXPECT_TRUE(any_cross);
  EXPECT_TRUE(any_local);
}

class XgboostRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    run_ = new dtr::RunData(execute(workloads::make_xgboost(42), 0));
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }
  static dtr::RunData* run_;
};
dtr::RunData* XgboostRun::run_ = nullptr;

TEST_F(XgboostRun, Table1Characteristics) {
  EXPECT_EQ(run_->graph_count, 74u);
  EXPECT_EQ(run_->tasks.size(), 10348u);
  std::set<std::string> inputs;
  for (const auto& log : run_->darshan_logs) {
    for (const auto& rec : log.posix) {
      if (rec.file_path.rfind("/data/nyctaxi/", 0) == 0) {
        inputs.insert(rec.file_path);
      }
    }
  }
  EXPECT_EQ(inputs.size(), 61u);
}

TEST_F(XgboostRun, Figure6ReadParquetIsLongestCategory) {
  const analysis::DataFrame summary =
      analysis::figure6_category_summary(*run_);
  ASSERT_GT(summary.rows(), 0u);
  EXPECT_EQ(summary.col("category").str(0), "read_parquet-fused-assign");
  // And its outputs exceed the recommended 128 MB.
  EXPECT_GT(summary.col("mean_size_mb").f64(0), 128.0);
}

TEST_F(XgboostRun, Figure7WarningsClusterEarly) {
  const analysis::WarningHistogram hist =
      analysis::figure7_histogram(*run_, 50.0);
  EXPECT_GT(hist.total_unresponsive, 0u);
  // The bulk of unresponsive warnings land in the first 500 s, during the
  // long read_parquet-fused-assign tasks.
  EXPECT_GT(hist.unresponsive_first_500s,
            hist.total_unresponsive * 6 / 10);
}

TEST_F(XgboostRun, SpillingProducesExtraIo) {
  bool spill_write = false;
  for (const auto& log : run_->darshan_logs) {
    for (const auto& rec : log.posix) {
      if (rec.file_path.rfind("/local/scratch/", 0) == 0 && rec.writes > 0) {
        spill_write = true;
      }
    }
  }
  EXPECT_TRUE(spill_write);
}

TEST_F(XgboostRun, Figure8LineageForGetitemTask) {
  const dtr::TaskKey key = [&] {
    for (const auto& t : run_->tasks) {
      if (t.prefix == "getitem__get_categories" && t.key.index == 42) {
        return t.key;
      }
    }
    return run_->tasks.front().key;
  }();
  const auto lineage = prov::task_lineage(*run_, key);
  ASSERT_TRUE(lineage.has_value());
  EXPECT_FALSE(lineage->at("states").as_array().empty());
  EXPECT_FALSE(lineage->at("dependencies").as_array().empty());
  EXPECT_TRUE(lineage->contains("execution"));
}

TEST(IntegrationMofka, StreamedRecordsMatchDirectCollection) {
  // Scaled-down XGBOOST exercising the Mofka path end to end.
  workloads::XgboostParams params;
  params.partitions = 6;
  params.boosting_rounds = 3;
  params.reducers = 2;
  params.read_parquet_compute = 5.0;
  workloads::Workload w = workloads::make_xgboost(42, params);

  dtr::ClusterConfig config = w.cluster;
  config.seed = 7;
  dtr::Cluster cluster(config);
  w.prepare(cluster.vfs());
  RngStream rng(7);
  auto graphs = w.build_graphs(rng);
  const dtr::RunData run = cluster.run(std::move(graphs), w.name, 0);

  const auto streamed = analysis::read_wms_topics(cluster.broker());
  EXPECT_EQ(streamed.tasks.size(), run.tasks.size());
  EXPECT_EQ(streamed.transitions.size(), run.transitions.size());
  EXPECT_EQ(streamed.warnings.size(), run.warnings.size());
  EXPECT_EQ(streamed.steals.size(), run.steals.size());
}

}  // namespace
}  // namespace recup
